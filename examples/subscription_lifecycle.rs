//! Subscription lifecycle: continuous queries come and go.
//!
//! The paper notes that continuous queries "usually remain registered over
//! long periods of time" — but they do end. This example registers the
//! paper's queries with stream sharing, then unregisters them one by one,
//! showing how the system retires derived streams once their last consumer
//! leaves (while streams still feeding other subscriptions keep flowing)
//! and releases the planner's resource charges.
//!
//! Run with: `cargo run --release --example subscription_lifecycle`

use data_stream_sharing::core::Strategy;
use data_stream_sharing::wxquery::queries;
use dss_rass::scenario::example_network;

fn active_flows(system: &data_stream_sharing::core::StreamGlobe) -> Vec<String> {
    system
        .deployment()
        .flows()
        .iter()
        .filter(|f| !f.retired)
        .map(|f| f.label.clone())
        .collect()
}

fn main() {
    let mut system = example_network();
    for (name, text, peer) in [
        ("Q1", queries::Q1, "P1"),
        ("Q2", queries::Q2, "P2"),
        ("Q3", queries::Q3, "P3"),
        ("Q4", queries::Q4, "P4"),
    ] {
        system
            .register_query(name, text, peer, Strategy::StreamSharing)
            .expect("registers");
    }
    println!("after registering Q1–Q4, active flows:");
    for f in active_flows(&system) {
        println!("  {f}");
    }

    // Q1 leaves — but Q2 still rides Q1's stream, so it must keep flowing.
    system.unregister_query("Q1").expect("Q1 unregisters");
    println!("\nafter unregistering Q1 (Q2 still shares its stream):");
    for f in active_flows(&system) {
        println!("  {f}");
    }

    // Q2 leaves — now Q1's stream has no consumers and is retired.
    system.unregister_query("Q2").expect("Q2 unregisters");
    println!("\nafter unregistering Q2 (Q1's stream retires transitively):");
    for f in active_flows(&system) {
        println!("  {f}");
    }

    system.unregister_query("Q3").expect("Q3 unregisters");
    system.unregister_query("Q4").expect("Q4 unregisters");
    println!("\nafter unregistering everything:");
    for f in active_flows(&system) {
        println!("  {f}");
    }
    println!("\nqueries registered: {}", system.query_count());

    // A fresh subscription now plans against the original stream again.
    let reg = system
        .register_query("Q2-again", queries::Q2, "P2", Strategy::StreamSharing)
        .expect("re-registers");
    println!("\nre-registered Q2:");
    print!("{}", reg.plan.describe(system.state()));
}
