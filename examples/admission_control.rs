//! Admission control under tight resource limits (the paper's rejection
//! experiment in Section 4).
//!
//! Caps every peer at 10 % of its CPU capacity and every connection at
//! 1 Mbit/s, then registers Scenario 2's 100 queries under each strategy,
//! counting how many must be rejected because no plan avoids overload.
//! The paper reports 47 (data shipping), 35 (query shipping), and 2
//! (stream sharing) rejections.
//!
//! Run with: `cargo run --release --example admission_control`

use data_stream_sharing::core::{AdmissionControl, Strategy};
use data_stream_sharing::rass::Scenario;

fn main() {
    let scenario = Scenario::scenario2(42);
    println!(
        "scenario 2 with caps: peer CPU at 10 %, connections at 1 Mbit/s; {} queries\n",
        scenario.queries.len()
    );

    for strategy in Strategy::ALL {
        let mut system = scenario.build_system();
        AdmissionControl::apply_caps(&mut system, 0.10, 1_000.0);
        let batch: Vec<(String, String, String)> = scenario
            .queries
            .iter()
            .map(|q| (q.id.clone(), q.text.clone(), q.peer.clone()))
            .collect();
        let report = AdmissionControl::register_batch(&mut system, &batch, strategy);
        println!(
            "{strategy:>15}: {} accepted, {} rejected",
            report.accepted_count(),
            report.rejected_count()
        );
        for (id, err) in &report.errored {
            eprintln!("  unexpected error for {id}: {err}");
        }
    }

    println!("\npaper (Section 4): data shipping rejected 47, query shipping 35, stream sharing 2");
}
