//! Peer failure under the live runtime: kill SP5 mid-run and watch the
//! system re-subscribe.
//!
//! The paper's example network routes Query 1's shared stream through
//! super-peer SP5 — the very peer Query 2 taps it at. This example runs
//! that deployment under the discrete-event live runtime, crashes SP5
//! ten seconds in, and shows how the affected queries are automatically
//! re-planned around the failure (preferring surviving shared streams),
//! plus what the outage cost: items lost in dead mailboxes, recovery time
//! until the first post-fault delivery, and per-query latency statistics.
//!
//! Run with: `cargo run --release --example peer_failure`

use data_stream_sharing::core::{Strategy, StreamGlobe};
use data_stream_sharing::network::runtime::{FaultScript, LiveConfig};
use data_stream_sharing::wxquery::queries;
use dss_rass::scenario::example_network;

fn print_active_flows(system: &StreamGlobe) {
    let topo = system.topology();
    for f in system.deployment().flows().iter().filter(|f| !f.retired) {
        let route: Vec<&str> = f
            .route
            .iter()
            .map(|&n| topo.peer(n).name.as_str())
            .collect();
        println!("  {:<28} via {}", f.label, route.join("→"));
    }
}

fn main() {
    let mut system = example_network();
    // Register the paper's queries with stream sharing. Q1 at P4 comes
    // first so its derived stream exists for the others to share; Q1 at P1
    // and Q2 at P2 both end up riding streams routed through SP5.
    for (name, text, peer) in [
        ("q_east", queries::Q1, "P4"),
        ("q1", queries::Q1, "P1"),
        ("q2", queries::Q2, "P2"),
    ] {
        system
            .register_query(name, text, peer, Strategy::StreamSharing)
            .expect("query registers");
    }
    println!("deployment before the fault:");
    print_active_flows(&system);

    // Crash SP5 at t = 10 s of a 30 s run.
    let sp5 = system.topology().expect_node("SP5");
    let faults = FaultScript::new().crash_peer(10.0, sp5);
    let cfg = LiveConfig {
        duration_s: 30.0,
        ..Default::default()
    };
    let outcome = system.run_live(cfg, &faults).expect("live run succeeds");

    for report in &outcome.failovers {
        println!(
            "\nat t={:.1}s peer {} crashed: {} flows retired",
            report.at_us as f64 / 1e6,
            system.topology().peer(report.peer).name,
            report.retired_flows.len(),
        );
        for reg in &report.replanned {
            println!("  re-planned {}", reg.query_id);
        }
        for (id, err) in &report.failed {
            println!("  FAILED to re-plan {id}: {err}");
        }
    }

    println!("\ndeployment after re-subscription (SP5 avoided):");
    print_active_flows(&system);

    println!("\n{}", outcome.metrics.report(system.topology()));
    println!(
        "intra-peer sharing saved {:.1} work units",
        outcome.metrics.shared_work_saved()
    );
}
