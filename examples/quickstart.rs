//! Quickstart: the paper's motivating example (Figures 1 and 2).
//!
//! Registers the four example queries of Sections 1–2 on the 8-super-peer
//! example network with the stream-sharing strategy, prints each resulting
//! evaluation plan, and shows the sharing the paper describes: Query 2
//! reuses Query 1's stream (duplicated at SP5), and Query 4 re-aggregates
//! Query 3's window partials.
//!
//! Run with: `cargo run --example quickstart`

use data_stream_sharing::prelude::*;
use data_stream_sharing::wxquery::queries;
use dss_network::SimConfig;

fn main() {
    let mut system = dss_rass::scenario::example_network();
    println!("network:\n{}", system.topology());

    let placements = [
        ("Q1", queries::Q1, "P1"),
        ("Q2", queries::Q2, "P2"),
        ("Q3", queries::Q3, "P3"),
        ("Q4", queries::Q4, "P4"),
    ];

    for (name, text, peer) in placements {
        let reg = system
            .register_query(name, text, peer, Strategy::StreamSharing)
            .unwrap_or_else(|e| panic!("{name} failed to register: {e}"));
        println!(
            "registered {name} at {peer} in {:?}{}:",
            reg.elapsed,
            if reg.reused_derived_stream {
                " (reusing a shared stream)"
            } else {
                ""
            }
        );
        print!("{}", reg.plan.describe(system.state()));
    }

    // Execute the deployment over the photon stream and show what arrives.
    let outcome = system.run_simulation(SimConfig::default());
    println!(
        "\nsimulation: {} bytes total network traffic",
        outcome.metrics.total_edge_bytes()
    );
    for (flow, outputs) in system
        .deployment()
        .flows()
        .iter()
        .zip(&outcome.flow_outputs)
    {
        if flow.label.ends_with("/result") {
            println!("  {} delivered {} items", flow.label, outputs.len());
            if let Some(first) = outputs.first() {
                println!("    first item: {}", dss_xml::writer::node_to_string(first));
            }
        }
    }
}
