//! Stream widening — the paper's "ongoing work" extension, implemented.
//!
//! Plain stream sharing can only reuse streams that already contain
//! everything a new subscription needs. The paper's conclusion sketches the
//! next step: "widen data streams … consider data streams for sharing that
//! initially do not contain all the necessary data for a new query but can
//! be altered to do so by changing some operators in the network."
//!
//! This example registers the paper's queries in the *unfavourable* order —
//! the narrow Query 2 first, the wide Query 1 second — and shows how
//! widening loosens Query 2's deployed stream in place (selection becomes
//! the predicate hull, projection the union of output sets), patches
//! Query 2's consumer with restore-operators, and lets Query 1 tap the
//! widened stream instead of pulling the original across the backbone.
//!
//! Run with: `cargo run --release --example stream_widening`

use data_stream_sharing::core::Strategy;
use data_stream_sharing::wxquery::queries;
use dss_network::SimConfig;
use dss_rass::scenario::example_network;

fn main() {
    for widening in [false, true] {
        let mut system = example_network();
        system.set_widening(widening);
        println!(
            "=== registration order Q2 (narrow) then Q1 (wide), widening {} ===",
            if widening { "ON" } else { "OFF" }
        );
        system
            .register_query("q2", queries::Q2, "P1", Strategy::StreamSharing)
            .expect("q2 registers");
        let reg1 = system
            .register_query("q1", queries::Q1, "P3", Strategy::StreamSharing)
            .expect("q1 registers");
        print!("Q1's plan:\n{}", reg1.plan.describe(system.state()));
        if let Some(widen) = &reg1.plan.parts[0].widen {
            println!(
                "  → widened flow {} to [{}], patched {} consumer(s)",
                system.deployment().flow(widen.flow).label,
                widen.widened,
                widen.child_patches.len()
            );
        }
        let sim = system.run_simulation(SimConfig::default());
        println!(
            "total network traffic: {} bytes",
            sim.metrics.total_edge_bytes()
        );
        // Show the delivered result counts stay correct.
        for (flow, outputs) in system.deployment().flows().iter().zip(&sim.flow_outputs) {
            if flow.label.ends_with("/result") {
                println!("  {} delivered {} items", flow.label, outputs.len());
            }
        }
        println!();
    }
    println!(
        "with widening, Q1 rides the loosened Q2 stream (its predicate hull is exactly\n\
         Q1's Vela region) instead of shipping a second stream across the backbone —\n\
         and Q2 keeps receiving byte-identical results through its restore operators."
    );
}
