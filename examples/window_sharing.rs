//! Window-aggregate sharing in isolation (the paper's Figure 5).
//!
//! Runs Query 3's fine-grained average-energy aggregate
//! (`|det_time diff 20 step 10|`), then derives Query 4's coarser windows
//! (`|det_time diff 60 step 40|`, filtered with `$a >= 1.3`) two ways:
//!
//! 1. directly from the raw photon stream, and
//! 2. by re-aggregating Query 3's shared partial results,
//!
//! and verifies both produce identical values while the shared variant
//! reads far fewer (and far smaller) items.
//!
//! Run with: `cargo run --example window_sharing`

use data_stream_sharing::engine::{AggItem, AggregateOp, ReAggregateOp, StreamOperatorExt};
use data_stream_sharing::wxquery::{compile_query, queries};
use data_stream_sharing::xml::writer::serialized_size;
use dss_rass::{GeneratorConfig, PhotonGenerator};

fn main() {
    let q3 = compile_query(queries::Q3).expect("Q3 compiles");
    let q4 = compile_query(queries::Q4).expect("Q4 compiles");
    let q3_agg = q3.aggregation.clone().expect("Q3 aggregates");
    let q4_agg = q4.aggregation.clone().expect("Q4 aggregates");
    println!("Q3 window: {}", q3_agg.window);
    println!(
        "Q4 window: {} (filter: {})",
        q4_agg.window, q4_agg.result_filter
    );
    assert!(
        q4_agg.window.shareable_from(&q3_agg.window),
        "Figure 5's conditions hold"
    );

    // ~1 000 time units over 5 000 photons.
    let cfg = GeneratorConfig {
        seed: 7,
        mean_time_increment: 0.2,
        ..GeneratorConfig::default()
    };
    let photons = PhotonGenerator::new(cfg).generate_items(5_000);
    let raw_bytes: usize = photons.iter().map(serialized_size).sum();

    // Selection shared by both queries (the Vela region).
    let select = |item: &dss_xml::Node| q3_agg.pre_selection.evaluate(item);

    // Path 1: Q4 directly over the raw stream.
    let mut direct_op = AggregateOp::new(q4_agg.clone());
    let mut direct = Vec::new();
    for item in photons.iter().filter(|i| select(i)) {
        direct.extend(direct_op.process_collect(item));
    }
    direct.extend(direct_op.flush_collect());

    // Path 2: Q3's aggregate, then re-aggregation to Q4's windows.
    let mut q3_op = AggregateOp::new(q3_agg.clone());
    let mut re_op = ReAggregateOp::new(q3_agg.clone(), q4_agg.clone());
    let mut q3_partials = Vec::new();
    let mut shared = Vec::new();
    for item in photons.iter().filter(|i| select(i)) {
        for partial in q3_op.process_collect(item) {
            q3_partials.push(partial.clone());
            shared.extend(re_op.process_collect(&partial));
        }
    }
    for partial in q3_op.flush_collect() {
        q3_partials.push(partial.clone());
        shared.extend(re_op.process_collect(&partial));
    }
    shared.extend(re_op.flush_collect());

    assert_eq!(
        direct, shared,
        "shared re-aggregation must equal direct aggregation"
    );

    let partial_bytes: usize = q3_partials.iter().map(serialized_size).sum();
    println!(
        "\nraw photon stream:      {} items, {} bytes",
        photons.len(),
        raw_bytes
    );
    println!(
        "Q3 partial aggregates:  {} items, {} bytes",
        q3_partials.len(),
        partial_bytes
    );
    println!(
        "Q4 result windows:      {} values (identical on both paths)",
        direct.len()
    );
    println!(
        "\nsharing Q3's stream lets Q4 read {:.1}x fewer bytes than the raw stream",
        raw_bytes as f64 / partial_bytes.max(1) as f64
    );

    println!("\nfirst Q4 windows (avg = sum/count computed at delivery):");
    for node in direct.iter().take(5) {
        let a = AggItem::from_node(node).expect("agg item");
        println!(
            "  window [{}, {}): count={} avg={}",
            a.start,
            a.start + a.size,
            a.count,
            a.avg_value(4)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
}
