//! A larger e-science workload: many astrophysicists subscribe to the same
//! survey stream.
//!
//! Builds the paper's Scenario 1 (8 super-peers, the `photons` stream, 25
//! template-generated WXQuery subscriptions), registers it under all three
//! strategies, and prints a side-by-side comparison of network traffic and
//! peer load — a miniature of the paper's Figure 6.
//!
//! Run with: `cargo run --release --example astro_observatory`

use data_stream_sharing::core::Strategy;
use data_stream_sharing::rass::Scenario;
use dss_network::SimConfig;

fn main() {
    let scenario = Scenario::scenario1(42);
    println!(
        "scenario 1: {} super-peers, {} stream(s), {} queries\n",
        scenario.topology.super_peers().len(),
        scenario.streams.len(),
        scenario.queries.len()
    );

    for strategy in Strategy::ALL {
        let outcome = scenario.run(strategy, false);
        assert!(outcome.errored.is_empty(), "{:?}", outcome.errored);
        let sim = outcome.simulate(SimConfig::default());
        let shared = outcome
            .registrations
            .iter()
            .filter(|r| r.reused_derived_stream)
            .count();

        println!("=== {strategy} ===");
        println!(
            "  {} queries registered, {} reusing previously generated streams",
            outcome.registrations.len(),
            shared
        );
        println!(
            "  total traffic: {:.2} MBit",
            sim.metrics.total_edge_bytes() as f64 * 8e-6
        );
        println!("  per-super-peer average CPU load (%):");
        let topo = outcome.system.topology();
        for sp in topo.super_peers() {
            println!(
                "    {:>4}: {:>7.3} %  ({:.2} MBit accumulated traffic)",
                topo.peer(sp).name,
                sim.metrics.node_load_pct(topo, sp),
                sim.metrics.node_acc_traffic_mbit(sp)
            );
        }
        println!();
    }

    println!(
        "expected shape (paper, Figure 6): data shipping moves the most bytes;\n\
         query shipping concentrates CPU load at the source super-peer SP4;\n\
         stream sharing transmits each needed stream once and spreads the load."
    );
}
