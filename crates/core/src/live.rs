//! Live execution with fault injection and automatic re-subscription.
//!
//! [`StreamGlobe::run_live`] drives the discrete-event runtime
//! (`dss_network::runtime`) over the system's current deployment while
//! replaying a scripted [`FaultScript`]. When a peer carrying flows
//! crashes, every query whose dataflow touched it is *re-subscribed*: its
//! flows are retired, and the query is re-planned from its stored WXQuery
//! text through the normal `Subscribe` machinery — which, because routing
//! skips down peers, automatically prefers surviving shared streams and
//! routes around the failure. The runtime keeps running throughout and
//! measures what the failure cost: items lost, duplicate deliveries, and
//! the time from the fault to each re-planned query's first delivery.
//!
//! Re-subscription preserves the query (text, subscriber, strategy) — not
//! the operator state: windowed aggregates of re-planned flows restart
//! empty, and widened streams a dead query had widened stay widened (their
//! extra width remains shareable slack; only a clean
//! [`StreamGlobe::unregister_query`] narrows back). The exception is
//! flows a widening re-plan patches *in place*: when the planner marked
//! the patch as a loss-free handoff (`WidenDelta::migrate`), the runtime
//! migrates the open window state across the in-place rebuild, so the
//! untouched owner query keeps delivering whole-stream-exact results.

use std::collections::BTreeMap;

use dss_network::runtime::{FaultKind, FaultScript, LiveConfig, LiveRuntime, RuntimeMetrics};
use dss_network::{FlowId, FlowInput, NodeId, SourceModel};
use dss_xml::Node;

use crate::system::{Installed, Registration, StreamGlobe, SystemError};

/// What one peer failure did to the registered queries.
#[derive(Debug)]
pub struct FailoverReport {
    /// The crashed peer.
    pub peer: NodeId,
    /// Fault time (µs on the runtime clock).
    pub at_us: u64,
    /// Flows retired because the dead peer processed or carried them
    /// (including transitive consumers), in id order.
    pub retired_flows: Vec<FlowId>,
    /// Queries re-planned successfully, in original registration order.
    pub replanned: Vec<Registration>,
    /// Queries that could not be re-planned: `(query id, error)`. They are
    /// no longer registered.
    pub failed: Vec<(String, String)>,
}

/// Result of a [`StreamGlobe::run_live`] run.
#[derive(Debug)]
pub struct LiveOutcome {
    /// Time-aware measurements (queues, latencies, losses, traffic).
    pub metrics: RuntimeMetrics,
    /// Event trace, empty unless [`LiveConfig::trace`] was set.
    pub trace: Vec<String>,
    /// One report per scripted peer crash.
    pub failovers: Vec<FailoverReport>,
    /// Per query: every delivered item with its origin timestamp, in
    /// delivery order. Empty unless [`LiveConfig::record_deliveries`].
    pub delivered_items: BTreeMap<String, Vec<(u64, Node)>>,
}

impl StreamGlobe {
    /// Delivery flow → query id for every current registration.
    fn delivery_map(&self) -> BTreeMap<FlowId, String> {
        self.registrations
            .iter()
            .map(|r| (r.delivery_flow, r.query_id.clone()))
            .collect()
    }

    /// Timed source models: each registered stream replays its items at
    /// its measured frequency.
    fn live_sources(&self) -> BTreeMap<String, SourceModel> {
        self.sources
            .iter()
            .map(|(name, info)| {
                let freq = self
                    .state
                    .stream_stats
                    .get(name)
                    .map(|s| s.frequency)
                    .unwrap_or(1.0);
                (
                    name.clone(),
                    SourceModel::from_frequency(info.items.clone(), freq),
                )
            })
            .collect()
    }

    /// Handles a peer crash at planning level: marks the peer down, retires
    /// every active flow it processed or carried (plus their transitive
    /// consumers), reverses their charges, and re-registers each affected
    /// query from its stored text. Because routing now skips the dead
    /// peer, the re-plans land on surviving streams and routes.
    pub fn replan_after_peer_failure(&mut self, peer: NodeId, at_us: u64) -> FailoverReport {
        self.state.topo.set_peer_up(peer, false);
        let n = self.state.deployment.len();
        // One ascending pass computes the affected closure: tap parents
        // always have smaller ids than their children.
        let mut affected = vec![false; n];
        for id in 0..n {
            let flow = self.state.deployment.flow(id);
            if flow.retired {
                continue;
            }
            affected[id] = flow.processing_node == peer
                || flow.route.contains(&peer)
                || matches!(flow.input, FlowInput::Tap { parent } if affected[parent]);
        }
        // Retire children before parents (descending ids).
        let mut retired_flows: Vec<FlowId> = Vec::new();
        for id in (0..n).rev() {
            if affected[id] {
                self.state.deployment.retire(id);
                self.state.uncharge_flow(id);
                retired_flows.push(id);
            }
        }
        retired_flows.reverse();
        // Pull the hit registrations out, keeping relative order.
        let mut keep = Vec::new();
        let mut hit: Vec<Installed> = Vec::new();
        for r in std::mem::take(&mut self.registrations) {
            if affected[r.delivery_flow] {
                hit.push(r);
            } else {
                keep.push(r);
            }
        }
        self.registrations = keep;
        let mut replanned = Vec::new();
        let mut failed = Vec::new();
        for r in hit {
            match self.register_query_opts(
                r.query_id.clone(),
                &r.text,
                &r.at_peer,
                r.strategy,
                false,
            ) {
                Ok(reg) => replanned.push(reg),
                Err(e) => failed.push((r.query_id, e.to_string())),
            }
        }
        FailoverReport {
            peer,
            at_us,
            retired_flows,
            replanned,
            failed,
        }
    }

    /// Runs the system under the discrete-event live runtime for
    /// `cfg.duration_s` simulated seconds, replaying `faults`. Peer
    /// crashes trigger automatic re-subscription of the affected queries
    /// (see [`Self::replan_after_peer_failure`]); recoveries and link
    /// events only flip reachability — already-replanned queries are not
    /// moved back.
    pub fn run_live(
        &mut self,
        cfg: LiveConfig,
        faults: &FaultScript,
    ) -> Result<LiveOutcome, SystemError> {
        let mut runtime = LiveRuntime::new(
            self.state.topo.clone(),
            &self.state.deployment,
            self.live_sources(),
            self.delivery_map(),
            cfg,
        )?;
        let mut failovers = Vec::new();
        for fault in faults.events() {
            if fault.at_us >= runtime.horizon_us() {
                break;
            }
            runtime.run_until(fault.at_us);
            runtime.apply_fault(fault);
            match fault.kind {
                FaultKind::PeerCrash(peer) => {
                    let report = self.replan_after_peer_failure(peer, fault.at_us);
                    runtime.sync_deployment(&self.state.deployment, self.delivery_map());
                    for reg in &report.replanned {
                        runtime.mark_query_recovering(&reg.query_id, fault.at_us);
                    }
                    failovers.push(report);
                }
                FaultKind::PeerRecover(peer) => self.state.topo.set_peer_up(peer, true),
                FaultKind::LinkDown(edge) => self.state.topo.set_edge_up(edge, false),
                FaultKind::LinkUp(edge) => self.state.topo.set_edge_up(edge, true),
            }
        }
        // Drain the remaining horizon before collecting recorded
        // deliveries — `finish` would otherwise run it after the take.
        runtime.run_until(runtime.horizon_us());
        let delivered_items = runtime.take_delivered_items();
        let (metrics, trace) = runtime.finish();
        Ok(LiveOutcome {
            metrics,
            trace,
            failovers,
            delivered_items,
        })
    }
}
