//! Book-keeping of the network's current estimated resource usage.
//!
//! The planner's cost function needs, per connection, the relative
//! bandwidth still available (`a_b(e)`) and, per peer, the relative load
//! still available (`a_l(v)`). Both are maintained incrementally as plans
//! are installed, using the same estimation formulas the planner itself
//! uses.

use std::collections::BTreeMap;

use dss_network::{Deployment, EdgeId, FlowId, NodeId, Topology};

use crate::cost::{CostParams, StreamEstimate};
use crate::stats::StreamStats;

/// Resource charges attributed to one deployed flow, recorded at install
/// time so they can be reversed when the flow is retired.
#[derive(Debug, Clone, Default)]
pub struct FlowCharge {
    /// Estimated kbps charged per connection.
    pub edge_kbps: Vec<(EdgeId, f64)>,
    /// Estimated work units per second charged per peer.
    pub node_work: Vec<(NodeId, f64)>,
}

/// Mutable network state shared by planning and installation.
#[derive(Debug)]
pub struct NetworkState {
    pub topo: Topology,
    pub deployment: Deployment,
    /// Statistics per *original* registered stream.
    pub stream_stats: BTreeMap<String, StreamStats>,
    /// Registered source flows per original stream name.
    pub source_flows: BTreeMap<String, FlowId>,
    /// Estimated size/frequency of every deployed flow's output.
    pub flow_estimates: Vec<StreamEstimate>,
    /// Charges recorded per flow (parallel to `flow_estimates`).
    pub flow_charges: Vec<FlowCharge>,
    /// Estimated bandwidth currently used per connection (kbps).
    pub edge_used_kbps: Vec<f64>,
    /// Estimated work currently executed per peer (work units per second).
    pub node_used_work: Vec<f64>,
    /// Cost-model parameters.
    pub params: CostParams,
}

impl NetworkState {
    /// Fresh state over a topology.
    pub fn new(topo: Topology, params: CostParams) -> NetworkState {
        let edges = topo.edge_count();
        let nodes = topo.peer_count();
        NetworkState {
            topo,
            deployment: Deployment::new(),
            stream_stats: BTreeMap::new(),
            source_flows: BTreeMap::new(),
            flow_estimates: Vec::new(),
            flow_charges: Vec::new(),
            edge_used_kbps: vec![0.0; edges],
            node_used_work: vec![0.0; nodes],
            params,
        }
    }

    /// Relative bandwidth still available on a connection (`a_b(e)`).
    /// May be negative when the connection is already overloaded.
    pub fn available_bandwidth_frac(&self, e: EdgeId) -> f64 {
        1.0 - self.edge_used_kbps[e] / self.topo.edge(e).bandwidth_kbps
    }

    /// Relative load still available on a peer (`a_l(v)`).
    pub fn available_load_frac(&self, v: NodeId) -> f64 {
        1.0 - self.node_used_work[v] / self.topo.peer(v).capacity
    }

    /// Estimated output of a deployed flow.
    pub fn flow_estimate(&self, f: FlowId) -> StreamEstimate {
        self.flow_estimates[f]
    }

    /// Statistics of an original stream.
    pub fn stats(&self, stream: &str) -> Option<&StreamStats> {
        self.stream_stats.get(stream)
    }

    /// Charges a stream's estimated rate to every connection on a route,
    /// attributing the charge to `flow` for later reversal.
    pub fn charge_route_for(&mut self, flow: usize, route: &[NodeId], est: StreamEstimate) {
        for w in route.windows(2) {
            let e = self
                .topo
                .edge_between(w[0], w[1])
                .expect("installed routes use existing connections");
            self.edge_used_kbps[e] += est.kbps();
            self.flow_charges[flow].edge_kbps.push((e, est.kbps()));
        }
    }

    /// Charges operator work (`Σ bload · pindex(v) · input-freq`) to a
    /// peer, attributing it to `flow`.
    pub fn charge_node_for(
        &mut self,
        flow: usize,
        v: NodeId,
        base_load_sum: f64,
        input_frequency: f64,
    ) {
        let work = base_load_sum * self.topo.peer(v).pindex * input_frequency;
        self.node_used_work[v] += work;
        self.flow_charges[flow].node_work.push((v, work));
    }

    /// Reverses one earlier [`charge_route_for`](Self::charge_route_for)
    /// with the same arguments (stream narrowing): subtracts the rate from
    /// every connection on the route and removes the matching recorded
    /// charge entries. Exact float equality is valid here because the
    /// reversal recomputes the identical expression that was stored.
    pub fn discharge_route_for(&mut self, flow: usize, route: &[NodeId], est: StreamEstimate) {
        for w in route.windows(2) {
            let e = self
                .topo
                .edge_between(w[0], w[1])
                .expect("installed routes use existing connections");
            self.edge_used_kbps[e] -= est.kbps();
            let charges = &mut self.flow_charges[flow].edge_kbps;
            if let Some(pos) = charges
                .iter()
                .position(|&(ce, ck)| ce == e && ck == est.kbps())
            {
                charges.remove(pos);
            }
        }
    }

    /// Reverses one earlier [`charge_node_for`](Self::charge_node_for)
    /// with the same arguments.
    pub fn discharge_node_for(
        &mut self,
        flow: usize,
        v: NodeId,
        base_load_sum: f64,
        input_frequency: f64,
    ) {
        let work = base_load_sum * self.topo.peer(v).pindex * input_frequency;
        self.node_used_work[v] -= work;
        let charges = &mut self.flow_charges[flow].node_work;
        if let Some(pos) = charges.iter().position(|&(cv, cw)| cv == v && cw == work) {
            charges.remove(pos);
        }
    }

    /// Reverses every charge attributed to `flow` (flow retirement).
    pub fn uncharge_flow(&mut self, flow: usize) {
        let charge = std::mem::take(&mut self.flow_charges[flow]);
        for (e, kbps) in charge.edge_kbps {
            self.edge_used_kbps[e] -= kbps;
        }
        for (v, work) in charge.node_work {
            self.node_used_work[v] -= work;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_network::grid_topology;

    #[test]
    fn availability_tracks_charges() {
        let topo = grid_topology(2, 2);
        let mut st = NetworkState::new(topo, CostParams::default());
        let e = 0;
        assert!((st.available_bandwidth_frac(e) - 1.0).abs() < 1e-12);
        let (a, b) = (st.topo.edge(e).a, st.topo.edge(e).b);
        let est = StreamEstimate {
            item_size: 12_500.0,
            frequency: 1.0,
        }; // 100 kbps
        st.flow_charges.push(FlowCharge::default());
        st.charge_route_for(0, &[a, b], est);
        // Default bandwidth is 100 Mbit/s ⇒ 0.1 % used.
        assert!((st.available_bandwidth_frac(e) - 0.999).abs() < 1e-9);

        assert!((st.available_load_frac(a) - 1.0).abs() < 1e-12);
        st.charge_node_for(0, a, 2.0, 100.0); // 200 units/s of 100k capacity
        assert!((st.available_load_frac(a) - 0.998).abs() < 1e-9);

        // Reversal restores full availability.
        st.uncharge_flow(0);
        assert!((st.available_bandwidth_frac(e) - 1.0).abs() < 1e-12);
        assert!((st.available_load_frac(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pindex_scales_node_charge() {
        let mut topo = grid_topology(2, 2);
        topo.peer_mut(0).pindex = 3.0;
        let mut st = NetworkState::new(topo, CostParams::default());
        st.flow_charges.push(FlowCharge::default());
        st.charge_node_for(0, 0, 1.0, 100.0);
        assert!((st.node_used_work[0] - 300.0).abs() < 1e-9);
    }
}
