//! Book-keeping of the network's current estimated resource usage.
//!
//! The planner's cost function needs, per connection, the relative
//! bandwidth still available (`a_b(e)`) and, per peer, the relative load
//! still available (`a_l(v)`). Both are maintained incrementally as plans
//! are installed, using the same estimation formulas the planner itself
//! uses.

use std::collections::BTreeMap;

use dss_network::{ops_mergeable, Deployment, EdgeId, FlowId, FlowOp, GroupKey, NodeId, Topology};

use crate::cost::{CostParams, StreamEstimate};
use crate::stats::StreamStats;

/// Resource charges attributed to one deployed flow, recorded at install
/// time so they can be reversed when the flow is retired.
#[derive(Debug, Clone, Default)]
pub struct FlowCharge {
    /// Estimated kbps charged per connection.
    pub edge_kbps: Vec<(EdgeId, f64)>,
    /// Estimated work units per second charged per peer.
    pub node_work: Vec<(NodeId, f64)>,
}

/// Estimate-level mirror of the runtime's intra-peer operator sharing:
/// a refcounted prefix trie per (peer, input stream) of the operator
/// charges installed there. A newly registered flow only pays for the
/// operators no earlier flow already runs — shared-prefix work is charged
/// once and split across sharers, keeping the planner's `u_l(v)` (and so
/// `a_l(v)`) consistent with what the fused executor actually does.
///
/// Scope: only the install-time operator charges of new flows route
/// through the book. Widening patch charges (and their narrow-back
/// reversals) stay on the exact-recompute [`FlowCharge`] paths — the book
/// releases exactly what it charged, never more, so both mechanisms
/// compose. A node's stored `work` is the estimate at creation time;
/// later sharers joining at a different estimated input frequency add
/// nothing (the instance already runs), which keeps release exact.
#[derive(Debug, Default)]
pub struct ShareBook {
    groups: Vec<BookGroup>,
    group_of: BTreeMap<(NodeId, GroupKey), usize>,
    paths: BTreeMap<FlowId, BookPath>,
}

#[derive(Debug)]
struct BookGroup {
    peer: NodeId,
    roots: Vec<usize>,
    /// Arena; pruned slots stay `None` (installs are rare — no free list).
    nodes: Vec<Option<BookNode>>,
}

#[derive(Debug)]
struct BookNode {
    op: FlowOp,
    /// Estimated work/s charged when this node was created.
    work: f64,
    sharers: usize,
    children: Vec<usize>,
}

#[derive(Debug)]
struct BookPath {
    group: usize,
    nodes: Vec<usize>,
}

impl ShareBook {
    /// Records `flow`'s operator chain at `peer` for input `key` and
    /// returns the newly charged work/s: `unit_work` summed over exactly
    /// the operators no existing sharer already runs (per
    /// [`ops_mergeable`]).
    ///
    /// # Panics
    /// Panics if `flow` already has a recorded chain.
    pub fn register(
        &mut self,
        flow: FlowId,
        peer: NodeId,
        key: GroupKey,
        ops: &[FlowOp],
        unit_work: impl Fn(&FlowOp) -> f64,
    ) -> f64 {
        assert!(
            !self.paths.contains_key(&flow),
            "flow {flow} has shared op charges recorded twice"
        );
        let group = match self.group_of.get(&(peer, key.clone())) {
            Some(&g) => g,
            None => {
                let g = self.groups.len();
                self.groups.push(BookGroup {
                    peer,
                    roots: Vec::new(),
                    nodes: Vec::new(),
                });
                self.group_of.insert((peer, key), g);
                g
            }
        };
        let g = &mut self.groups[group];
        fn node(nodes: &[Option<BookNode>], i: usize) -> &BookNode {
            nodes[i].as_ref().expect("live book node")
        }
        let mut added = 0.0;
        let mut path = Vec::with_capacity(ops.len());
        let mut parent: Option<usize> = None;
        for op in ops {
            let siblings = match parent {
                None => &g.roots,
                Some(p) => &node(&g.nodes, p).children,
            };
            let found = siblings
                .iter()
                .copied()
                .find(|&c| ops_mergeable(&node(&g.nodes, c).op, op));
            let idx = match found {
                Some(c) => {
                    g.nodes[c].as_mut().expect("live book node").sharers += 1;
                    c
                }
                None => {
                    let w = unit_work(op);
                    added += w;
                    let idx = g.nodes.len();
                    g.nodes.push(Some(BookNode {
                        op: op.clone(),
                        work: w,
                        sharers: 1,
                        children: Vec::new(),
                    }));
                    match parent {
                        None => g.roots.push(idx),
                        Some(p) => g.nodes[p]
                            .as_mut()
                            .expect("live book node")
                            .children
                            .push(idx),
                    }
                    idx
                }
            };
            path.push(idx);
            parent = Some(idx);
        }
        self.paths.insert(flow, BookPath { group, nodes: path });
        added
    }

    /// Drops `flow`'s recorded chain, returning the peer and the work/s
    /// freed by the operators it was the last sharer of. `None` when the
    /// flow never registered shared charges.
    pub fn retire(&mut self, flow: FlowId) -> Option<(NodeId, f64)> {
        let BookPath { group, nodes: path } = self.paths.remove(&flow)?;
        let g = &mut self.groups[group];
        for &idx in &path {
            g.nodes[idx].as_mut().expect("live book node").sharers -= 1;
        }
        let mut freed = 0.0;
        for i in (0..path.len()).rev() {
            let idx = path[i];
            let n = g.nodes[idx].as_ref().expect("live book node");
            if n.sharers > 0 {
                break;
            }
            freed += n.work;
            match i.checked_sub(1) {
                None => g.roots.retain(|&r| r != idx),
                Some(pi) => {
                    let p = path[pi];
                    g.nodes[p]
                        .as_mut()
                        .expect("live book node")
                        .children
                        .retain(|&c| c != idx);
                }
            }
            g.nodes[idx] = None;
        }
        Some((g.peer, freed))
    }

    /// `flow`'s fair share of the work it rides: each node's charge
    /// divided by its current sharer count.
    pub fn attributed_work(&self, flow: FlowId) -> f64 {
        let Some(p) = self.paths.get(&flow) else {
            return 0.0;
        };
        let g = &self.groups[p.group];
        p.nodes
            .iter()
            .map(|&i| {
                let n = g.nodes[i].as_ref().expect("live book node");
                n.work / n.sharers as f64
            })
            .sum()
    }
}

/// Mutable network state shared by planning and installation.
#[derive(Debug)]
pub struct NetworkState {
    pub topo: Topology,
    pub deployment: Deployment,
    /// Statistics per *original* registered stream.
    pub stream_stats: BTreeMap<String, StreamStats>,
    /// Registered source flows per original stream name.
    pub source_flows: BTreeMap<String, FlowId>,
    /// Estimated size/frequency of every deployed flow's output.
    pub flow_estimates: Vec<StreamEstimate>,
    /// Charges recorded per flow (parallel to `flow_estimates`).
    pub flow_charges: Vec<FlowCharge>,
    /// Estimated bandwidth currently used per connection (kbps).
    pub edge_used_kbps: Vec<f64>,
    /// Estimated work currently executed per peer (work units per second).
    pub node_used_work: Vec<f64>,
    /// Refcounted install-time operator charges (intra-peer sharing).
    pub share_book: ShareBook,
    /// Cost-model parameters.
    pub params: CostParams,
}

impl NetworkState {
    /// Fresh state over a topology.
    pub fn new(topo: Topology, params: CostParams) -> NetworkState {
        let edges = topo.edge_count();
        let nodes = topo.peer_count();
        NetworkState {
            topo,
            deployment: Deployment::new(),
            stream_stats: BTreeMap::new(),
            source_flows: BTreeMap::new(),
            flow_estimates: Vec::new(),
            flow_charges: Vec::new(),
            edge_used_kbps: vec![0.0; edges],
            node_used_work: vec![0.0; nodes],
            share_book: ShareBook::default(),
            params,
        }
    }

    /// Relative bandwidth still available on a connection (`a_b(e)`).
    /// May be negative when the connection is already overloaded.
    pub fn available_bandwidth_frac(&self, e: EdgeId) -> f64 {
        1.0 - self.edge_used_kbps[e] / self.topo.edge(e).bandwidth_kbps
    }

    /// Relative load still available on a peer (`a_l(v)`).
    pub fn available_load_frac(&self, v: NodeId) -> f64 {
        1.0 - self.node_used_work[v] / self.topo.peer(v).capacity
    }

    /// Estimated output of a deployed flow.
    pub fn flow_estimate(&self, f: FlowId) -> StreamEstimate {
        self.flow_estimates[f]
    }

    /// Statistics of an original stream.
    pub fn stats(&self, stream: &str) -> Option<&StreamStats> {
        self.stream_stats.get(stream)
    }

    /// Charges a stream's estimated rate to every connection on a route,
    /// attributing the charge to `flow` for later reversal.
    pub fn charge_route_for(&mut self, flow: usize, route: &[NodeId], est: StreamEstimate) {
        for w in route.windows(2) {
            let e = self
                .topo
                .edge_between(w[0], w[1])
                .expect("installed routes use existing connections");
            self.edge_used_kbps[e] += est.kbps();
            self.flow_charges[flow].edge_kbps.push((e, est.kbps()));
        }
    }

    /// Charges operator work (`Σ bload · pindex(v) · input-freq`) to a
    /// peer, attributing it to `flow`.
    pub fn charge_node_for(
        &mut self,
        flow: usize,
        v: NodeId,
        base_load_sum: f64,
        input_frequency: f64,
    ) {
        let work = base_load_sum * self.topo.peer(v).pindex * input_frequency;
        self.node_used_work[v] += work;
        self.flow_charges[flow].node_work.push((v, work));
    }

    /// Reverses one earlier [`charge_route_for`](Self::charge_route_for)
    /// with the same arguments (stream narrowing): subtracts the rate from
    /// every connection on the route and removes the matching recorded
    /// charge entries. Exact float equality is valid here because the
    /// reversal recomputes the identical expression that was stored.
    pub fn discharge_route_for(&mut self, flow: usize, route: &[NodeId], est: StreamEstimate) {
        for w in route.windows(2) {
            let e = self
                .topo
                .edge_between(w[0], w[1])
                .expect("installed routes use existing connections");
            self.edge_used_kbps[e] -= est.kbps();
            let charges = &mut self.flow_charges[flow].edge_kbps;
            if let Some(pos) = charges
                .iter()
                .position(|&(ce, ck)| ce == e && ck == est.kbps())
            {
                charges.remove(pos);
            }
        }
    }

    /// Reverses one earlier [`charge_node_for`](Self::charge_node_for)
    /// with the same arguments.
    pub fn discharge_node_for(
        &mut self,
        flow: usize,
        v: NodeId,
        base_load_sum: f64,
        input_frequency: f64,
    ) {
        let work = base_load_sum * self.topo.peer(v).pindex * input_frequency;
        self.node_used_work[v] -= work;
        let charges = &mut self.flow_charges[flow].node_work;
        if let Some(pos) = charges.iter().position(|&(cv, cw)| cv == v && cw == work) {
            charges.remove(pos);
        }
    }

    /// Charges `flow`'s operator chain at peer `v` through the sharing
    /// book: only operators not already run by a sharing sibling (same
    /// peer, same input `key`, mergeable prefix) add to `node_used_work`.
    pub fn charge_shared_ops_for(
        &mut self,
        flow: FlowId,
        v: NodeId,
        key: GroupKey,
        ops: &[FlowOp],
        input_frequency: f64,
    ) {
        if ops.is_empty() {
            return;
        }
        let pindex = self.topo.peer(v).pindex;
        let added = self.share_book.register(flow, v, key, ops, |op| {
            crate::plan::flow_op_base_load(op) * pindex * input_frequency
        });
        self.node_used_work[v] += added;
        // `added` below the chain's full load means a sharing sibling
        // already pays for the prefix — the ShareBook win the trace makes
        // visible per installation.
        dss_telemetry::event("sharebook_charge", || {
            let full: f64 = ops
                .iter()
                .map(|op| crate::plan::flow_op_base_load(op) * pindex * input_frequency)
                .sum();
            [
                (
                    "peer",
                    dss_telemetry::Value::from(self.topo.peer(v).name.as_str()),
                ),
                ("flow", (flow as u64).into()),
                ("ops", ops.len().into()),
                ("charged", added.into()),
                ("full_load", full.into()),
            ]
        });
        dss_telemetry::histogram_record(
            "plan.sharebook_charge",
            || vec![("peer", self.topo.peer(v).name.clone())],
            added,
        );
    }

    /// `flow`'s fair share of the shared operator work it rides.
    pub fn shared_attributed_work(&self, flow: FlowId) -> f64 {
        self.share_book.attributed_work(flow)
    }

    /// Reverses every charge attributed to `flow` (flow retirement),
    /// including its sharing-book entry: operators the flow was the last
    /// sharer of free their charge, shared ones stay paid for by the
    /// remaining sharers.
    pub fn uncharge_flow(&mut self, flow: usize) {
        let charge = std::mem::take(&mut self.flow_charges[flow]);
        for (e, kbps) in charge.edge_kbps {
            self.edge_used_kbps[e] -= kbps;
        }
        for (v, work) in charge.node_work {
            self.node_used_work[v] -= work;
        }
        if let Some((v, freed)) = self.share_book.retire(flow) {
            self.node_used_work[v] -= freed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_network::grid_topology;

    #[test]
    fn availability_tracks_charges() {
        let topo = grid_topology(2, 2);
        let mut st = NetworkState::new(topo, CostParams::default());
        let e = 0;
        assert!((st.available_bandwidth_frac(e) - 1.0).abs() < 1e-12);
        let (a, b) = (st.topo.edge(e).a, st.topo.edge(e).b);
        let est = StreamEstimate {
            item_size: 12_500.0,
            frequency: 1.0,
        }; // 100 kbps
        st.flow_charges.push(FlowCharge::default());
        st.charge_route_for(0, &[a, b], est);
        // Default bandwidth is 100 Mbit/s ⇒ 0.1 % used.
        assert!((st.available_bandwidth_frac(e) - 0.999).abs() < 1e-9);

        assert!((st.available_load_frac(a) - 1.0).abs() < 1e-12);
        st.charge_node_for(0, a, 2.0, 100.0); // 200 units/s of 100k capacity
        assert!((st.available_load_frac(a) - 0.998).abs() < 1e-9);

        // Reversal restores full availability.
        st.uncharge_flow(0);
        assert!((st.available_bandwidth_frac(e) - 1.0).abs() < 1e-12);
        assert!((st.available_load_frac(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_book_charges_prefix_once_and_frees_last_sharer() {
        use dss_properties::Operator;
        let udf = |name: &str| {
            FlowOp::Standard(Operator::Udf {
                name: name.into(),
                params: Vec::new(),
            })
        };
        let mut book = ShareBook::default();
        let unit = |_: &FlowOp| 10.0;
        // Flow 0 installs σ-like prefix [a, b]: both charged.
        let key = GroupKey::Tap(7);
        let added = book.register(0, 3, key.clone(), &[udf("a"), udf("b")], unit);
        assert!((added - 20.0).abs() < 1e-12);
        // Flow 1 shares [a] and adds [c]: only c is charged.
        let added = book.register(1, 3, key.clone(), &[udf("a"), udf("c")], unit);
        assert!((added - 10.0).abs() < 1e-12);
        // Fair split: flow 0 rides a (half) + b (alone).
        assert!((book.attributed_work(0) - 15.0).abs() < 1e-12);
        // Same ops at a different peer share nothing.
        let added = book.register(2, 4, key.clone(), &[udf("a")], unit);
        assert!((added - 10.0).abs() < 1e-12);
        // Retiring flow 0 frees b only; a stays paid for flow 1.
        let (peer, freed) = book.retire(0).unwrap();
        assert_eq!(peer, 3);
        assert!((freed - 10.0).abs() < 1e-12);
        assert!((book.attributed_work(1) - 20.0).abs() < 1e-12);
        // Retiring the last sharer frees the rest.
        let (_, freed) = book.retire(1).unwrap();
        assert!((freed - 20.0).abs() < 1e-12);
        assert!(book.retire(1).is_none(), "already retired");
    }

    #[test]
    fn uncharge_flow_releases_share_book_entry() {
        let topo = grid_topology(2, 2);
        let mut st = NetworkState::new(topo, CostParams::default());
        let ops = vec![FlowOp::Standard(dss_properties::Operator::Udf {
            name: "u".into(),
            params: Vec::new(),
        })];
        st.flow_charges.push(FlowCharge::default());
        st.flow_charges.push(FlowCharge::default());
        st.charge_shared_ops_for(0, 1, GroupKey::Source("s".into()), &ops, 100.0);
        let one_flow = st.node_used_work[1];
        assert!(one_flow > 0.0);
        // A second identical flow shares the whole chain: no extra charge.
        st.charge_shared_ops_for(1, 1, GroupKey::Source("s".into()), &ops, 100.0);
        assert_eq!(st.node_used_work[1], one_flow);
        st.uncharge_flow(0);
        assert_eq!(st.node_used_work[1], one_flow, "flow 1 still pays");
        st.uncharge_flow(1);
        assert!(st.node_used_work[1].abs() < 1e-12);
    }

    #[test]
    fn pindex_scales_node_charge() {
        let mut topo = grid_topology(2, 2);
        topo.peer_mut(0).pindex = 3.0;
        let mut st = NetworkState::new(topo, CostParams::default());
        st.flow_charges.push(FlowCharge::default());
        st.charge_node_for(0, 0, 1.0, 100.0);
        assert!((st.node_used_work[0] - 300.0).abs() < 1e-9);
    }
}
