//! The cost model (Section 3.2).
//!
//! The cost function `C` focuses on the additional network traffic and peer
//! load a new subscription causes:
//!
//! ```text
//! C(P) = γ   · Σ_{e ∈ E_P} [ u_b(e) + max(0, u_b(e) − a_b(e)) · e^(u_b(e) − a_b(e)) ]
//!      + (1−γ) · Σ_{v ∈ V_P} [ u_l(v) + max(0, u_l(v) − a_l(v)) · e^(u_l(v) − a_l(v)) ]
//! ```
//!
//! with `u_b(e)` the relative bandwidth the plan's *additional* streams use
//! on connection `e`, `u_l(v)` the relative computational load its
//! *additional* operators put on peer `v`, and `a_b` / `a_l` the currently
//! available relative bandwidth/load. Overload draws an exponential
//! penalty.

use dss_properties::{AggOp, Operator, WindowKind, WindowSpec};

use crate::stats::StreamStats;

/// Cost-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// γ ∈ [0, 1]: weight of network traffic vs. peer load.
    pub gamma: f64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams { gamma: 0.5 }
    }
}

/// Estimated size/frequency of a (possibly transformed) stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEstimate {
    /// Average serialized bytes of one item (`size(p)`).
    pub item_size: f64,
    /// Items per second (`freq(p)`).
    pub frequency: f64,
}

impl StreamEstimate {
    /// Estimated data rate in bytes per second.
    pub fn bytes_per_s(&self) -> f64 {
        self.item_size * self.frequency
    }

    /// Estimated data rate in kilobits per second.
    pub fn kbps(&self) -> f64 {
        self.bytes_per_s() * 8.0 / 1000.0
    }
}

/// Rough serialized size of one window-aggregate partial (`<agg>` item with
/// start/size/count plus the operator's value fields).
pub fn agg_item_size_estimate(op: AggOp) -> f64 {
    // <agg></agg> + <start>…</start> + <size>…</size> + <count>…</count>
    let base = 11.0 + 3.0 * 20.0;
    match op {
        AggOp::Count => base,
        AggOp::Sum => base + 22.0,
        AggOp::Min | AggOp::Max => base + 20.0,
        // avg travels as (sum, count); min/max fields absent.
        AggOp::Avg => base + 22.0,
    }
}

/// Base computational load `bload(o)` of a property-level operator, in the
/// same units the execution engine charges (see each operator's
/// `base_load`).
pub fn base_load(op: &Operator) -> f64 {
    match op {
        Operator::Selection(_) => 1.0,
        Operator::Projection(_) => 1.2,
        Operator::Aggregation(_) => 2.0,
        Operator::WindowOutput(_) => 1.5,
        Operator::Udf { .. } => 3.0,
    }
}

/// Estimates the stream produced by applying `chain` to a stream with the
/// given original statistics (`size(p)` and `freq(p)` of Section 3.2).
pub fn estimate_chain(stats: &StreamStats, chain: &[Operator]) -> StreamEstimate {
    let mut est = StreamEstimate {
        item_size: stats.item_size,
        frequency: stats.frequency,
    };
    for op in chain {
        match op {
            Operator::Selection(g) => {
                // Selections scale the frequency, not the item size.
                est.frequency *= stats.selectivity(g);
            }
            Operator::Projection(spec) => {
                // Projections scale the item size, not the frequency.
                est.item_size = est.item_size.min(stats.projected_size(&spec.output));
            }
            Operator::Aggregation(spec) => {
                est.item_size = agg_item_size_estimate(spec.op);
                est.frequency = window_output_frequency(stats, &spec.window, est.frequency);
                // A result filter further reduces the frequency; without
                // per-window value statistics we fall back to a fixed
                // factor per *distinct* condition — duplicated or implied
                // bounds collapse through the predicate graph's minimized
                // form instead of compounding as if independent.
                if !spec.result_filter.is_trivial() {
                    est.frequency *=
                        0.5f64.powi(spec.result_filter.distinct_condition_count() as i32);
                }
            }
            Operator::WindowOutput(spec) => {
                // "For item-based data windows … multiplying the window
                // size with the average size of the items contained in the
                // window and adding the sizes of the enclosing window tags.
                // For time-based data windows this works analogously except
                // that the average number of data items contained in the
                // window must be estimated" (Section 3.2).
                let items_per_window = match spec.window.kind() {
                    dss_properties::WindowKind::Count => spec.window.size().to_f64(),
                    dss_properties::WindowKind::Diff => {
                        let r = spec
                            .window
                            .reference()
                            .expect("diff windows carry a reference");
                        (spec.window.size().to_f64() / stats.avg_increment(r)).max(1.0)
                    }
                };
                // Window wrapper: <window>, <start>, <size>, <items> tags.
                let wrapper = 80.0;
                est.item_size = items_per_window * est.item_size + wrapper;
                est.frequency = window_output_frequency(stats, &spec.window, est.frequency);
            }
            Operator::Udf { .. } => {
                // Unknown semantics: assume size/frequency preserving.
            }
        }
    }
    est
}

/// Output frequency of a window aggregate (Section 3.2): one value per
/// window step.
///
/// * item-based windows: the input frequency divided by the step size µ
///   (`input_frequency` is the post-selection item rate — fewer items means
///   fewer window updates);
/// * value-based windows: the window advances with the *reference element*,
///   not with item counts, so the update rate is determined by the raw
///   stream's time axis: the average number of raw items read per update is
///   `µ / avg-increment(reference)`, and the update rate is the raw
///   frequency divided by that. A pre-selection thins window contents but
///   does not slow the reference clock.
pub fn window_output_frequency(
    stats: &StreamStats,
    window: &WindowSpec,
    input_frequency: f64,
) -> f64 {
    match window.kind() {
        WindowKind::Count => input_frequency / window.step().to_f64(),
        WindowKind::Diff => {
            let reference = window.reference().expect("diff windows carry a reference");
            let inc = stats.avg_increment(reference);
            let items_per_update = (window.step().to_f64() / inc).max(1.0);
            stats.frequency / items_per_update
        }
    }
}

/// One connection's contribution to the plan cost.
#[derive(Debug, Clone, Copy)]
pub struct EdgeUse {
    /// `u_b(e)`: relative bandwidth used by the plan's additional streams.
    pub used: f64,
    /// `a_b(e)`: relative bandwidth still available before the plan.
    pub available: f64,
}

/// One peer's contribution to the plan cost.
#[derive(Debug, Clone, Copy)]
pub struct NodeUse {
    /// `u_l(v)`: relative load of the plan's additional operators.
    pub used: f64,
    /// `a_l(v)`: relative load still available before the plan.
    pub available: f64,
}

fn penalized(used: f64, available: f64) -> f64 {
    let over = used - available;
    used + if over > 0.0 { over * over.exp() } else { 0.0 }
}

/// Evaluates the cost function `C` over a plan's affected connections and
/// peers.
pub fn plan_cost(params: &CostParams, edges: &[EdgeUse], nodes: &[NodeUse]) -> f64 {
    let (traffic, load) = plan_cost_split(params, edges, nodes);
    traffic + load
}

/// [`plan_cost`] split into its two weighted terms
/// `(γ·Σ penalized(u_b, a_b), (1−γ)·Σ penalized(u_l, a_l))`. Adding the
/// terms reproduces `plan_cost` bit-for-bit (same multiplications, same
/// final addition), so per-candidate breakdowns reported by the tracing
/// layer sum exactly to the plan's `C(P)`.
pub fn plan_cost_split(params: &CostParams, edges: &[EdgeUse], nodes: &[NodeUse]) -> (f64, f64) {
    let traffic: f64 = edges.iter().map(|e| penalized(e.used, e.available)).sum();
    let load: f64 = nodes.iter().map(|n| penalized(n.used, n.available)).sum();
    (params.gamma * traffic, (1.0 - params.gamma) * load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_properties::{AggregationSpec, ProjectionSpec, ResultFilter};
    use dss_xml::{Decimal, Node, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn stats() -> StreamStats {
        let sample: Vec<Node> = (0..100)
            .map(|i| {
                Node::elem(
                    "photon",
                    vec![
                        Node::leaf("en", format!("{}", 1.0 + (i % 10) as f64 / 10.0)),
                        Node::leaf("det_time", format!("{}", i * 3)),
                        Node::leaf("phc", format!("{i}")),
                    ],
                )
            })
            .collect();
        StreamStats::from_sample(&sample, 100.0)
    }

    #[test]
    fn selection_scales_frequency() {
        let s = stats();
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.45"))]);
        let est = estimate_chain(&s, &[Operator::Selection(g)]);
        assert!((est.frequency / s.frequency - 0.5).abs() < 0.05, "{est:?}");
        assert_eq!(est.item_size, s.item_size);
    }

    #[test]
    fn projection_scales_size() {
        let s = stats();
        let spec = ProjectionSpec::returning([p("en")]);
        let est = estimate_chain(&s, &[Operator::Projection(spec)]);
        assert!(est.item_size < s.item_size);
        assert_eq!(est.frequency, s.frequency);
    }

    #[test]
    fn aggregation_fixes_size_and_divides_frequency() {
        let s = stats();
        // diff window, step 30, avg det_time increment 3 ⇒ 10 items per
        // update ⇒ frequency /10.
        let spec = AggregationSpec {
            op: AggOp::Avg,
            element: p("en"),
            window: WindowSpec::diff(p("det_time"), d("60"), Some(d("30"))).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::none(),
        };
        let est = estimate_chain(&s, &[Operator::Aggregation(spec)]);
        assert!((est.frequency - 10.0).abs() < 0.5, "{est:?}");
        assert_eq!(est.item_size, agg_item_size_estimate(AggOp::Avg));

        // count window, step 10 ⇒ frequency /10.
        let spec = AggregationSpec {
            op: AggOp::Count,
            element: p("en"),
            window: WindowSpec::count(d("20"), Some(d("10"))).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::none(),
        };
        let est = estimate_chain(&s, &[Operator::Aggregation(spec)]);
        assert!((est.frequency - 10.0).abs() < 1e-9);
    }

    #[test]
    fn window_output_size_follows_paper_formula() {
        use dss_properties::WindowOutputSpec;
        let s = stats();
        // diff window Δ=30, avg det_time increment 3 ⇒ ~10 items per window.
        let spec = WindowOutputSpec {
            window: WindowSpec::diff(p("det_time"), d("30"), None).unwrap(),
            pre_selection: PredicateGraph::new(),
        };
        let est = estimate_chain(&s, &[Operator::WindowOutput(spec)]);
        let expected_items = 10.0;
        assert!(
            (est.item_size - (expected_items * s.item_size + 80.0)).abs() < s.item_size,
            "window item size {} vs expected ~{}",
            est.item_size,
            expected_items * s.item_size
        );
        // One window per step: frequency divided by items-per-step (10).
        assert!((est.frequency - s.frequency / 10.0).abs() < 1.0);

        // count windows: exactly Δ items.
        let spec = WindowOutputSpec {
            window: WindowSpec::count(d("20"), Some(d("5"))).unwrap(),
            pre_selection: PredicateGraph::new(),
        };
        let est = estimate_chain(&s, &[Operator::WindowOutput(spec)]);
        assert!((est.item_size - (20.0 * s.item_size + 80.0)).abs() < 1e-6);
        assert!((est.frequency - s.frequency / 5.0).abs() < 1e-9);
    }

    #[test]
    fn chain_composes() {
        let s = stats();
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.45"))]);
        let proj = ProjectionSpec::returning([p("en")]);
        let est = estimate_chain(&s, &[Operator::Selection(g), Operator::Projection(proj)]);
        assert!(est.frequency < s.frequency);
        assert!(est.item_size < s.item_size);
        assert!(est.bytes_per_s() < s.item_size * s.frequency);
        assert!(est.kbps() > 0.0);
    }

    /// Count-window estimate paths never consult the diff-window
    /// reference: a stream with no numeric leaves (hence no increment
    /// statistics at all) must estimate count-window chains without
    /// reaching the `expect("diff windows carry a reference")` sites.
    #[test]
    fn count_window_estimates_need_no_reference_stats() {
        let sample: Vec<Node> = (0..10)
            .map(|i| Node::elem("ev", vec![Node::leaf("tag", format!("t{i}"))]))
            .collect();
        let s = StreamStats::from_sample(&sample, 8.0);
        assert_eq!(
            window_output_frequency(&s, &WindowSpec::count(d("4"), Some(d("2"))).unwrap(), 8.0),
            4.0
        );
        let agg = AggregationSpec {
            op: AggOp::Avg,
            element: p("tag"),
            window: WindowSpec::count(d("4"), Some(d("2"))).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::single(CompOp::Ge, d("1.0")),
        };
        let est = estimate_chain(&s, &[Operator::Aggregation(agg)]);
        // freq/step, then halved once for the single filter condition.
        assert!((est.frequency - 8.0 / 2.0 * 0.5).abs() < 1e-9, "{est:?}");
        let wo = dss_properties::WindowOutputSpec {
            window: WindowSpec::count(d("4"), None).unwrap(),
            pre_selection: PredicateGraph::new(),
        };
        let est = estimate_chain(&s, &[Operator::WindowOutput(wo)]);
        assert!((est.item_size - (4.0 * s.item_size + 80.0)).abs() < 1e-6);
    }

    /// Diff windows carry a reference by construction (`WindowSpec::diff`
    /// requires one), and an *unobserved* reference path estimates through
    /// the increment fallback of 1.0 rather than panicking.
    #[test]
    fn diff_window_with_unobserved_reference_uses_increment_fallback() {
        let s = stats();
        let w = WindowSpec::diff(p("nosuch"), d("6"), Some(d("3"))).unwrap();
        let f = window_output_frequency(&s, &w, s.frequency);
        // Fallback increment 1.0 ⇒ 3 items per update ⇒ frequency / 3.
        assert!((f - s.frequency / 3.0).abs() < 1e-9, "{f}");
    }

    /// Duplicate or implied result-filter conditions collapse through the
    /// predicate graph's minimized form instead of compounding the 0.5
    /// factor as if they were independent.
    #[test]
    fn duplicate_result_filter_conditions_do_not_compound() {
        let s = stats();
        let with_filter = |filter: ResultFilter| {
            let agg = AggregationSpec {
                op: AggOp::Avg,
                element: p("en"),
                window: WindowSpec::count(d("10"), None).unwrap(),
                pre_selection: PredicateGraph::new(),
                result_filter: filter,
            };
            estimate_chain(&s, &[Operator::Aggregation(agg)]).frequency
        };
        let single = with_filter(ResultFilter::single(CompOp::Ge, d("1.3")));
        let duplicated = with_filter(ResultFilter {
            conditions: vec![(CompOp::Ge, d("1.3")), (CompOp::Ge, d("1.3"))],
        });
        let implied = with_filter(ResultFilter {
            conditions: vec![(CompOp::Ge, d("1.3")), (CompOp::Ge, d("1.0"))],
        });
        assert_eq!(
            single, duplicated,
            "duplicate condition must not halve again"
        );
        assert_eq!(single, implied, "implied condition must not halve again");
        // Genuinely independent bounds still compound.
        let two_sided = with_filter(ResultFilter {
            conditions: vec![(CompOp::Ge, d("1.3")), (CompOp::Le, d("1.6"))],
        });
        assert!((two_sided - single * 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_without_overload_is_linear() {
        let params = CostParams { gamma: 0.5 };
        let c = plan_cost(
            &params,
            &[EdgeUse {
                used: 0.2,
                available: 0.9,
            }],
            &[NodeUse {
                used: 0.1,
                available: 0.8,
            }],
        );
        assert!((c - (0.5 * 0.2 + 0.5 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn overload_draws_exponential_penalty() {
        let params = CostParams { gamma: 1.0 };
        let fine = plan_cost(
            &params,
            &[EdgeUse {
                used: 0.5,
                available: 0.6,
            }],
            &[],
        );
        let over = plan_cost(
            &params,
            &[EdgeUse {
                used: 0.9,
                available: 0.6,
            }],
            &[],
        );
        assert!(over > fine);
        // Penalty term: 0.3 · e^0.3 added on top of u_b.
        assert!((over - (0.9 + 0.3 * 0.3f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn gamma_weights_components() {
        let edges = [EdgeUse {
            used: 1.0,
            available: 1.0,
        }];
        let nodes = [NodeUse {
            used: 0.5,
            available: 1.0,
        }];
        let traffic_only = plan_cost(&CostParams { gamma: 1.0 }, &edges, &nodes);
        let load_only = plan_cost(&CostParams { gamma: 0.0 }, &edges, &nodes);
        assert!((traffic_only - 1.0).abs() < 1e-12);
        assert!((load_only - 0.5).abs() < 1e-12);
    }

    #[test]
    fn agg_item_sizes_are_plausible() {
        // Compare the estimate with an actual serialized partial.
        let mut item = dss_engine::AggItem::empty(d("1200"), d("60"));
        item.add_value(d("1.3"));
        item.add_value(d("2.7"));
        let actual = dss_xml::writer::serialized_size(&item.to_node()) as f64;
        let est = agg_item_size_estimate(AggOp::Avg);
        assert!(
            (actual - est).abs() / actual < 0.8,
            "est {est} vs actual {actual}"
        );
    }
}
