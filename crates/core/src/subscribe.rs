//! The `Subscribe` algorithm (Algorithm 1).
//!
//! For each input stream of a newly registered continuous query the
//! algorithm performs a breadth-first search over the network graph,
//! starting at the super-peer where the original input stream is
//! registered. At every visited peer it inspects the data streams available
//! there that are variants of the input, matches their properties against
//! the subscription's (Algorithm 2), generates a candidate plan for every
//! match, and keeps the cheapest according to the cost function `C`.
//! Non-matching streams do not extend the search frontier — only the target
//! nodes of matched streams are enqueued — which prunes the traversal to
//! the relevant part of the network.

use std::collections::VecDeque;
use std::fmt;

use dss_network::{FlowId, NodeId};
use dss_properties::{explain_match_input_properties, match_input_properties, QueryLens};
use dss_telemetry::Value;
use dss_wxquery::CompiledQuery;

use crate::plan::{
    assemble_plan, generate_plan_part, generate_plan_part_cached, generate_widening_part, Plan,
    PlanPart,
};
use crate::state::NetworkState;

/// Frontier discipline of the search. The paper uses FIFO (breadth-first)
/// and notes that LIFO (depth-first) "would be equally possible".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOrder {
    #[default]
    Bfs,
    Dfs,
}

/// Errors raised during subscription planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeError {
    /// The query references a stream that is not registered ("provided that
    /// q refers to existing inputs").
    UnknownStream(String),
    /// Admission control: every candidate plan would overload a peer or a
    /// connection.
    Overload,
    /// The stream exists but cannot currently be planned: its source flow
    /// is retired, or no route survives the current peer/link failures.
    Unreachable(String),
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::UnknownStream(s) => {
                write!(f, "query references unregistered stream {s:?}")
            }
            SubscribeError::Overload => {
                write!(f, "no evaluation plan avoids overloading the network")
            }
            SubscribeError::Unreachable(s) => {
                write!(f, "stream {s:?} is unreachable in the current network")
            }
        }
    }
}

impl std::error::Error for SubscribeError {}

/// Statistics of one `Subscribe` run (used by the evaluation section's
/// registration-time analysis and by the benches).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Peers dequeued from `L_V`.
    pub nodes_visited: usize,
    /// Candidate streams whose properties were matched.
    pub candidates_matched: usize,
    /// Successful matches.
    pub matches: usize,
    /// Candidate plans generated.
    pub plans_generated: usize,
}

/// Runs Algorithm 1 for a compiled query to be answered at super-peer
/// `v_q`, delivering to `subscriber`.
///
/// With `require_feasible`, candidate plans that would overload the network
/// lose against feasible ones regardless of cost, and planning fails with
/// [`SubscribeError::Overload`] when no feasible plan exists (the paper's
/// admission-control experiment).
pub fn subscribe(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    order: SearchOrder,
    require_feasible: bool,
) -> Result<(Plan, SearchStats), SubscribeError> {
    subscribe_with(
        state,
        query,
        v_q,
        subscriber,
        order,
        require_feasible,
        false,
    )
}

/// [`subscribe`] with stream *widening* enabled: when a candidate stream
/// does not match, the search additionally considers loosening that
/// stream's operators (predicate hull / projection union) so it covers both
/// its current consumers and the new subscription — the paper's ongoing
/// work ("widen data streams … by changing some operators in the network").
#[allow(clippy::too_many_arguments)]
pub fn subscribe_with(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    order: SearchOrder,
    require_feasible: bool,
    widening: bool,
) -> Result<(Plan, SearchStats), SubscribeError> {
    search(
        state,
        query,
        v_q,
        subscriber,
        order,
        require_feasible,
        widening,
        CandidateSource::Indexed,
    )
}

/// [`subscribe_with`], but enumerating candidate streams by scanning the
/// full flow table at every visited peer — the pre-index reference search.
/// Kept as the differential oracle for the catalog: for any deployment and
/// query it must produce the same matches, the same number of generated
/// plans, and a byte-identical winning plan as the indexed search (whose
/// candidate counts may only be *smaller*).
#[allow(clippy::too_many_arguments)]
pub fn subscribe_full_scan(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    order: SearchOrder,
    require_feasible: bool,
    widening: bool,
) -> Result<(Plan, SearchStats), SubscribeError> {
    search(
        state,
        query,
        v_q,
        subscriber,
        order,
        require_feasible,
        widening,
        CandidateSource::FullScan,
    )
}

/// How the search enumerates candidate streams at a visited peer.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CandidateSource {
    /// The deployment's stream catalog: per-peer per-stream buckets with
    /// signature/bound/window pre-filters (sublinear in installed flows).
    Indexed,
    /// Scan every installed flow (linear in all registrations ever made).
    FullScan,
}

#[allow(clippy::too_many_arguments)]
fn search(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    order: SearchOrder,
    require_feasible: bool,
    widening: bool,
    source: CandidateSource,
) -> Result<(Plan, SearchStats), SubscribeError> {
    let mut stats = SearchStats::default();
    let mut parts: Vec<PlanPart> = Vec::new();
    // Memoized shortest routes to v_q, shared across this search's input
    // streams (the route from a tap peer to v_q does not depend on the
    // stream). `None` = not yet computed; `Some(None)` = unreachable.
    let mut route_memo: Vec<Option<Option<Vec<NodeId>>>> = vec![None; state.topo.peer_count()];
    // Scratch candidate buffer, reused across peers and inputs.
    let mut scratch: Vec<FlowId> = Vec::new();

    // Line 2: iterate over the properties of all input data streams of q.
    for wanted in query.properties.inputs() {
        let stream = wanted.stream();
        // Lines 3–6: initialization. The initial plan reuses the original
        // registered stream at the super-peer it is registered at.
        let &source_flow = state
            .source_flows
            .get(stream)
            .ok_or_else(|| SubscribeError::UnknownStream(stream.to_string()))?;
        if state.deployment.flow(source_flow).retired {
            return Err(SubscribeError::Unreachable(stream.to_string()));
        }
        let v_b = state.deployment.flow(source_flow).target_node();
        // One trace span per input stream's graph search. Every recording
        // call below is a no-op branch unless tracing is enabled.
        let _search_span = dss_telemetry::span("subscribe_input", || {
            [
                ("stream", Value::from(stream)),
                ("v_b", state.topo.peer(v_b).name.as_str().into()),
                ("v_q", state.topo.peer(v_q).name.as_str().into()),
            ]
        });
        let mut best = generate_plan_part(state, wanted, source_flow, v_b, v_q)
            .ok_or_else(|| SubscribeError::Unreachable(stream.to_string()))?;
        stats.plans_generated += 1;
        dss_telemetry::event("candidate", || {
            [
                (
                    "flow",
                    state.deployment.flow(source_flow).label.as_str().into(),
                ),
                ("peer", state.topo.peer(v_b).name.as_str().into()),
                ("outcome", Value::from("initial")),
                ("cost", best.cost.into()),
                ("traffic", best.traffic.into()),
                ("load", best.load.into()),
                ("feasible", best.feasible.into()),
            ]
        });
        // Fixed per search: the subscription's own chain estimate.
        let wanted_estimate = best.estimate;
        // Pre-digested match pre-filters for the indexed lookup. Widening
        // must see some *non-matching* variants too — but only the
        // widenable (selection/projection-only) ones can ever yield a
        // widening plan, so the indexed path unions the lens-matched
        // candidates with the catalog's widenable-chain index instead of
        // enumerating every variant.
        let lens = match source {
            CandidateSource::Indexed => Some(QueryLens::of(wanted)),
            CandidateSource::FullScan => None,
        };
        // Per-chain lens verdicts, memoized across every peer this input's
        // search visits (a chain flowing past many peers is judged once).
        let mut verdicts = dss_network::LensVerdicts::default();
        // Full-match results per interned chain: flows with the same chain
        // id carry byte-identical input properties, so MatchProperties is
        // a pure function of the chain and need only run once per chain.
        let mut match_memo: Vec<Option<bool>> = Vec::new();

        let mut marked = vec![false; state.topo.peer_count()];
        let mut queued = vec![false; state.topo.peer_count()];
        let mut frontier: VecDeque<NodeId> = VecDeque::new();
        frontier.push_back(v_b);
        queued[v_b] = true;

        // Lines 7–25: the pruned graph search.
        while let Some(v) = match order {
            SearchOrder::Bfs => frontier.pop_front(),
            SearchOrder::Dfs => frontier.pop_back(),
        } {
            if marked[v] {
                continue;
            }
            marked[v] = true;
            stats.nodes_visited += 1;
            dss_telemetry::event("visit", || {
                [("peer", Value::from(state.topo.peer(v).name.as_str()))]
            });
            // Fixed per tap node (and per v_q, hence memoized across the
            // whole search): the transport route to v_q.
            let route_to_vq = route_memo[v]
                .get_or_insert_with(|| dss_network::shortest_path(&state.topo, v, v_q))
                .as_deref();
            // Lines 9–11: streams available at v that are variants of the
            // input stream.
            let flow_ids: &[FlowId] = match source {
                CandidateSource::Indexed => {
                    let lens = lens.as_ref().expect("indexed search builds a lens");
                    state
                        .deployment
                        .candidates_into(v, stream, lens, &mut verdicts, &mut scratch);
                    if widening {
                        // Sorted-dedup union: a widenable chain may also be
                        // a lens match (both lists are ascending and short).
                        scratch.extend_from_slice(state.deployment.widenable_at(v, stream));
                        scratch.sort_unstable();
                        scratch.dedup();
                    }
                    &scratch
                }
                CandidateSource::FullScan => {
                    scratch.clear();
                    scratch.extend((0..state.deployment.len()).filter(|&i| {
                        let f = state.deployment.flow(i);
                        !f.retired && f.properties.is_some() && f.available_at(v)
                    }));
                    &scratch
                }
            };
            for &flow_id in flow_ids {
                let flow = state.deployment.flow(flow_id);
                let Some(candidate) = flow.properties.as_ref().and_then(|p| p.input_for(stream))
                else {
                    continue;
                };
                stats.candidates_matched += 1;
                // Line 14: MatchProperties (memoized per distinct chain on
                // the indexed path; the full-scan reference stays direct).
                let matched = match source {
                    CandidateSource::Indexed => match state.deployment.chain_of(flow_id, stream) {
                        Some(cid) => {
                            if match_memo.len() <= cid {
                                match_memo.resize(cid + 1, None);
                            }
                            *match_memo[cid]
                                .get_or_insert_with(|| match_input_properties(candidate, wanted))
                        }
                        None => match_input_properties(candidate, wanted),
                    },
                    CandidateSource::FullScan => match_input_properties(candidate, wanted),
                };
                if !matched {
                    // The losing check is only diagnosed when someone is
                    // recording: the hot path keeps the boolean match.
                    dss_telemetry::event("candidate", || {
                        let reason = match explain_match_input_properties(candidate, wanted) {
                            Err(failure) => failure.check_name(),
                            Ok(()) => "MatchProperties",
                        };
                        [
                            ("flow", Value::from(flow.label.as_str())),
                            ("peer", state.topo.peer(v).name.as_str().into()),
                            ("outcome", Value::from("rejected")),
                            ("reason", reason.into()),
                        ]
                    });
                    // Widening extension: a non-matching stream may still be
                    // usable after loosening its operators in place.
                    if widening {
                        if let Some(plan) =
                            generate_widening_part(state, wanted, flow_id, v, v_q, route_to_vq)
                        {
                            // A widenable stream can be tapped anywhere on
                            // its route, so the route's peers join the
                            // frontier just like a matched stream's.
                            for &n in &flow.route {
                                if !marked[n] && !queued[n] {
                                    frontier.push_back(n);
                                    queued[n] = true;
                                }
                            }
                            stats.plans_generated += 1;
                            let better = if require_feasible && plan.feasible != best.feasible {
                                plan.feasible
                            } else {
                                plan.cost < best.cost
                            };
                            dss_telemetry::event("candidate", || {
                                [
                                    ("flow", Value::from(flow.label.as_str())),
                                    ("peer", state.topo.peer(v).name.as_str().into()),
                                    ("outcome", Value::from("widened")),
                                    ("cost", plan.cost.into()),
                                    ("traffic", plan.traffic.into()),
                                    ("load", plan.load.into()),
                                    ("feasible", plan.feasible.into()),
                                    ("chosen", better.into()),
                                ]
                            });
                            if better {
                                best = plan;
                            }
                        }
                    }
                    continue;
                }
                stats.matches += 1;
                // Lines 15–18 extend the frontier with the matched stream's
                // target node `getTNode(p)`. We additionally enqueue every
                // peer on the stream's route: the stream is available (and
                // can be duplicated) at each of them, and the paper's own
                // motivating example reuses Query 1's stream at SP5 —
                // mid-route, not at its target SP1. This matches the
                // paper's remark that the search only follows connections
                // carrying (matching) streams.
                for &n in &flow.route {
                    if !marked[n] && !queued[n] {
                        frontier.push_back(n);
                        queued[n] = true;
                    }
                }
                // Lines 19–22: generate and compare a plan reusing the
                // stream at v.
                let Some(plan) = generate_plan_part_cached(
                    state,
                    wanted,
                    flow_id,
                    v,
                    v_q,
                    Some(wanted_estimate),
                    route_to_vq,
                ) else {
                    continue;
                };
                stats.plans_generated += 1;
                let better = if require_feasible && plan.feasible != best.feasible {
                    plan.feasible
                } else {
                    plan.cost < best.cost
                };
                dss_telemetry::event("candidate", || {
                    [
                        ("flow", Value::from(flow.label.as_str())),
                        ("peer", state.topo.peer(v).name.as_str().into()),
                        ("outcome", Value::from("matched")),
                        ("cost", plan.cost.into()),
                        ("traffic", plan.traffic.into()),
                        ("load", plan.load.into()),
                        ("feasible", plan.feasible.into()),
                        ("chosen", better.into()),
                    ]
                });
                if better {
                    best = plan;
                }
            }
        }
        dss_telemetry::event("best", || {
            [
                (
                    "flow",
                    Value::from(state.deployment.flow(best.tap_flow).label.as_str()),
                ),
                ("peer", state.topo.peer(best.tap_node).name.as_str().into()),
                ("cost", best.cost.into()),
                ("traffic", best.traffic.into()),
                ("load", best.load.into()),
                ("feasible", best.feasible.into()),
            ]
        });
        parts.push(best);
    }

    let plan = assemble_plan(state, query, parts, Vec::new(), v_q, subscriber);
    if require_feasible && !plan.feasible {
        return Err(SubscribeError::Overload);
    }
    Ok((plan, stats))
}
