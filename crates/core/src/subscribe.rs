//! The `Subscribe` algorithm (Algorithm 1).
//!
//! For each input stream of a newly registered continuous query the
//! algorithm performs a breadth-first search over the network graph,
//! starting at the super-peer where the original input stream is
//! registered. At every visited peer it inspects the data streams available
//! there that are variants of the input, matches their properties against
//! the subscription's (Algorithm 2), generates a candidate plan for every
//! match, and keeps the cheapest according to the cost function `C`.
//! Non-matching streams do not extend the search frontier — only the target
//! nodes of matched streams are enqueued — which prunes the traversal to
//! the relevant part of the network.

use std::collections::VecDeque;
use std::fmt;

use dss_network::NodeId;
use dss_properties::{explain_match_input_properties, match_input_properties};
use dss_telemetry::Value;
use dss_wxquery::CompiledQuery;

use crate::plan::{
    assemble_plan, generate_plan_part, generate_plan_part_cached, generate_widening_part, Plan,
    PlanPart,
};
use crate::state::NetworkState;

/// Frontier discipline of the search. The paper uses FIFO (breadth-first)
/// and notes that LIFO (depth-first) "would be equally possible".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOrder {
    #[default]
    Bfs,
    Dfs,
}

/// Errors raised during subscription planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeError {
    /// The query references a stream that is not registered ("provided that
    /// q refers to existing inputs").
    UnknownStream(String),
    /// Admission control: every candidate plan would overload a peer or a
    /// connection.
    Overload,
    /// The stream exists but cannot currently be planned: its source flow
    /// is retired, or no route survives the current peer/link failures.
    Unreachable(String),
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::UnknownStream(s) => {
                write!(f, "query references unregistered stream {s:?}")
            }
            SubscribeError::Overload => {
                write!(f, "no evaluation plan avoids overloading the network")
            }
            SubscribeError::Unreachable(s) => {
                write!(f, "stream {s:?} is unreachable in the current network")
            }
        }
    }
}

impl std::error::Error for SubscribeError {}

/// Statistics of one `Subscribe` run (used by the evaluation section's
/// registration-time analysis and by the benches).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Peers dequeued from `L_V`.
    pub nodes_visited: usize,
    /// Candidate streams whose properties were matched.
    pub candidates_matched: usize,
    /// Successful matches.
    pub matches: usize,
    /// Candidate plans generated.
    pub plans_generated: usize,
}

/// Runs Algorithm 1 for a compiled query to be answered at super-peer
/// `v_q`, delivering to `subscriber`.
///
/// With `require_feasible`, candidate plans that would overload the network
/// lose against feasible ones regardless of cost, and planning fails with
/// [`SubscribeError::Overload`] when no feasible plan exists (the paper's
/// admission-control experiment).
pub fn subscribe(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    order: SearchOrder,
    require_feasible: bool,
) -> Result<(Plan, SearchStats), SubscribeError> {
    subscribe_with(
        state,
        query,
        v_q,
        subscriber,
        order,
        require_feasible,
        false,
    )
}

/// [`subscribe`] with stream *widening* enabled: when a candidate stream
/// does not match, the search additionally considers loosening that
/// stream's operators (predicate hull / projection union) so it covers both
/// its current consumers and the new subscription — the paper's ongoing
/// work ("widen data streams … by changing some operators in the network").
#[allow(clippy::too_many_arguments)]
pub fn subscribe_with(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    order: SearchOrder,
    require_feasible: bool,
    widening: bool,
) -> Result<(Plan, SearchStats), SubscribeError> {
    let mut stats = SearchStats::default();
    let mut parts: Vec<PlanPart> = Vec::new();

    // Line 2: iterate over the properties of all input data streams of q.
    for wanted in query.properties.inputs() {
        let stream = wanted.stream();
        // Lines 3–6: initialization. The initial plan reuses the original
        // registered stream at the super-peer it is registered at.
        let &source_flow = state
            .source_flows
            .get(stream)
            .ok_or_else(|| SubscribeError::UnknownStream(stream.to_string()))?;
        if state.deployment.flow(source_flow).retired {
            return Err(SubscribeError::Unreachable(stream.to_string()));
        }
        let v_b = state.deployment.flow(source_flow).target_node();
        // One trace span per input stream's graph search. Every recording
        // call below is a no-op branch unless tracing is enabled.
        let _search_span = dss_telemetry::span("subscribe_input", || {
            [
                ("stream", Value::from(stream)),
                ("v_b", state.topo.peer(v_b).name.as_str().into()),
                ("v_q", state.topo.peer(v_q).name.as_str().into()),
            ]
        });
        let mut best = generate_plan_part(state, wanted, source_flow, v_b, v_q)
            .ok_or_else(|| SubscribeError::Unreachable(stream.to_string()))?;
        stats.plans_generated += 1;
        dss_telemetry::event("candidate", || {
            [
                (
                    "flow",
                    state.deployment.flow(source_flow).label.as_str().into(),
                ),
                ("peer", state.topo.peer(v_b).name.as_str().into()),
                ("outcome", Value::from("initial")),
                ("cost", best.cost.into()),
                ("traffic", best.traffic.into()),
                ("load", best.load.into()),
                ("feasible", best.feasible.into()),
            ]
        });
        // Fixed per search: the subscription's own chain estimate.
        let wanted_estimate = best.estimate;

        let mut marked = vec![false; state.topo.peer_count()];
        let mut queued = vec![false; state.topo.peer_count()];
        let mut frontier: VecDeque<NodeId> = VecDeque::new();
        frontier.push_back(v_b);
        queued[v_b] = true;

        // Lines 7–25: the pruned graph search.
        while let Some(v) = match order {
            SearchOrder::Bfs => frontier.pop_front(),
            SearchOrder::Dfs => frontier.pop_back(),
        } {
            if marked[v] {
                continue;
            }
            marked[v] = true;
            stats.nodes_visited += 1;
            dss_telemetry::event("visit", || {
                [("peer", Value::from(state.topo.peer(v).name.as_str()))]
            });
            // Fixed per tap node: the transport route to v_q.
            let route_to_vq = dss_network::shortest_path(&state.topo, v, v_q);
            // Lines 9–11: streams available at v that are variants of the
            // input stream.
            for flow_id in state.deployment.shareable_at(v) {
                let flow = state.deployment.flow(flow_id);
                let Some(candidate) = flow.properties.as_ref().and_then(|p| p.input_for(stream))
                else {
                    continue;
                };
                stats.candidates_matched += 1;
                // Line 14: MatchProperties.
                if !match_input_properties(candidate, wanted) {
                    // The losing check is only diagnosed when someone is
                    // recording: the hot path keeps the boolean match.
                    dss_telemetry::event("candidate", || {
                        let reason = match explain_match_input_properties(candidate, wanted) {
                            Err(failure) => failure.check_name(),
                            Ok(()) => "MatchProperties",
                        };
                        [
                            ("flow", Value::from(flow.label.as_str())),
                            ("peer", state.topo.peer(v).name.as_str().into()),
                            ("outcome", Value::from("rejected")),
                            ("reason", reason.into()),
                        ]
                    });
                    // Widening extension: a non-matching stream may still be
                    // usable after loosening its operators in place.
                    if widening {
                        if let Some(plan) = generate_widening_part(state, wanted, flow_id, v, v_q) {
                            // A widenable stream can be tapped anywhere on
                            // its route, so the route's peers join the
                            // frontier just like a matched stream's.
                            for &n in &flow.route {
                                if !marked[n] && !queued[n] {
                                    frontier.push_back(n);
                                    queued[n] = true;
                                }
                            }
                            stats.plans_generated += 1;
                            let better = if require_feasible && plan.feasible != best.feasible {
                                plan.feasible
                            } else {
                                plan.cost < best.cost
                            };
                            dss_telemetry::event("candidate", || {
                                [
                                    ("flow", Value::from(flow.label.as_str())),
                                    ("peer", state.topo.peer(v).name.as_str().into()),
                                    ("outcome", Value::from("widened")),
                                    ("cost", plan.cost.into()),
                                    ("traffic", plan.traffic.into()),
                                    ("load", plan.load.into()),
                                    ("feasible", plan.feasible.into()),
                                    ("chosen", better.into()),
                                ]
                            });
                            if better {
                                best = plan;
                            }
                        }
                    }
                    continue;
                }
                stats.matches += 1;
                // Lines 15–18 extend the frontier with the matched stream's
                // target node `getTNode(p)`. We additionally enqueue every
                // peer on the stream's route: the stream is available (and
                // can be duplicated) at each of them, and the paper's own
                // motivating example reuses Query 1's stream at SP5 —
                // mid-route, not at its target SP1. This matches the
                // paper's remark that the search only follows connections
                // carrying (matching) streams.
                for &n in &flow.route {
                    if !marked[n] && !queued[n] {
                        frontier.push_back(n);
                        queued[n] = true;
                    }
                }
                // Lines 19–22: generate and compare a plan reusing the
                // stream at v.
                let Some(plan) = generate_plan_part_cached(
                    state,
                    wanted,
                    flow_id,
                    v,
                    v_q,
                    Some(wanted_estimate),
                    route_to_vq.as_deref(),
                ) else {
                    continue;
                };
                stats.plans_generated += 1;
                let better = if require_feasible && plan.feasible != best.feasible {
                    plan.feasible
                } else {
                    plan.cost < best.cost
                };
                dss_telemetry::event("candidate", || {
                    [
                        ("flow", Value::from(flow.label.as_str())),
                        ("peer", state.topo.peer(v).name.as_str().into()),
                        ("outcome", Value::from("matched")),
                        ("cost", plan.cost.into()),
                        ("traffic", plan.traffic.into()),
                        ("load", plan.load.into()),
                        ("feasible", plan.feasible.into()),
                        ("chosen", better.into()),
                    ]
                });
                if better {
                    best = plan;
                }
            }
        }
        dss_telemetry::event("best", || {
            [
                (
                    "flow",
                    Value::from(state.deployment.flow(best.tap_flow).label.as_str()),
                ),
                ("peer", state.topo.peer(best.tap_node).name.as_str().into()),
                ("cost", best.cost.into()),
                ("traffic", best.traffic.into()),
                ("load", best.load.into()),
                ("feasible", best.feasible.into()),
            ]
        });
        parts.push(best);
    }

    let plan = assemble_plan(state, query, parts, Vec::new(), v_q, subscriber);
    if require_feasible && !plan.feasible {
        return Err(SubscribeError::Overload);
    }
    Ok((plan, stats))
}
