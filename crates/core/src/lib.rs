//! Data stream sharing — the paper's core contribution.
//!
//! This crate implements Section 3 of "Data Stream Sharing" (Kuntschke &
//! Kemper, EDBT 2006):
//!
//! * [`stats`] — the statistics catalog (element occurrences/sizes, value
//!   ranges, reference-element increments) behind selectivity and
//!   size/frequency estimation,
//! * [`cost`] — the cost model: `size(p)`, `freq(p)`, `u_b(e)`, `u_l(v)`,
//!   and the γ-weighted, exponentially-penalized plan cost `C(P)`,
//! * [`plan`] — evaluation plans and `generatePlan`,
//! * [`subscribe`] — Algorithm 1, the pruned breadth-first search for
//!   shareable streams,
//! * [`strategy`] — data shipping, query shipping, and stream sharing,
//! * [`admission`] — capacity-capped registration (the paper's rejection
//!   experiment),
//! * [`system`] — the `StreamGlobe` façade tying registration, planning,
//!   installation, and simulation together, and
//! * [`live`] — live execution under the discrete-event runtime with
//!   fault injection and automatic re-subscription after peer failures.

pub mod admission;
pub mod cost;
pub mod live;
pub mod plan;
pub mod state;
pub mod stats;
pub mod strategy;
pub mod subscribe;
pub mod system;

pub use admission::{AdmissionControl, AdmissionReport};
pub use cost::{CostParams, StreamEstimate};
pub use live::{FailoverReport, LiveOutcome};
pub use plan::{Plan, PlanPart, WidenDelta};
pub use state::NetworkState;
pub use stats::StreamStats;
pub use strategy::{plan_query, Strategy};
pub use subscribe::{
    subscribe, subscribe_full_scan, subscribe_with, SearchOrder, SearchStats, SubscribeError,
};
pub use system::{Registration, StreamGlobe, SystemError};

#[cfg(test)]
mod tests {
    use super::*;
    use dss_network::example_topology;
    use dss_wxquery::queries;
    use dss_xml::Node;

    /// A small deterministic photon sample inside/outside the Vela region.
    fn photons(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| {
                // Co-prime periods so every sub-region (Vela, RX J0852.0-4622)
                // receives photons.
                let ra = 100.0 + (i % 79) as f64; // 100..178; Vela = [120,138]
                let dec = -55.0 + (i % 23) as f64; // -55..-33; Vela = [-49,-40]
                let en = 0.5 + (i % 30) as f64 / 10.0; // 0.5..3.4
                Node::elem(
                    "photon",
                    vec![
                        Node::leaf("phc", i.to_string()),
                        Node::elem(
                            "coord",
                            vec![
                                Node::elem(
                                    "cel",
                                    vec![
                                        Node::leaf("ra", format!("{ra:.1}")),
                                        Node::leaf("dec", format!("{dec:.1}")),
                                    ],
                                ),
                                Node::elem(
                                    "det",
                                    vec![
                                        Node::leaf("dx", ((i * 7) % 512).to_string()),
                                        Node::leaf("dy", ((i * 13) % 512).to_string()),
                                    ],
                                ),
                            ],
                        ),
                        Node::leaf("en", format!("{en:.1}")),
                        Node::leaf("det_time", (i * 2).to_string()),
                    ],
                )
            })
            .collect()
    }

    fn system_with_photons() -> StreamGlobe {
        let mut sys = StreamGlobe::new(example_topology());
        sys.register_stream("photons", "P0", photons(400), 100.0)
            .unwrap();
        sys
    }

    #[test]
    fn stream_registration_creates_source_flow() {
        let sys = system_with_photons();
        assert_eq!(sys.deployment().len(), 1);
        let flow = sys.deployment().flow(0);
        assert_eq!(flow.label, "photons@SP4");
        assert_eq!(
            flow.target_node(),
            sys.topology().expect_node("SP4"),
            "the stream is registered at SP4"
        );
    }

    #[test]
    fn duplicate_stream_rejected() {
        let mut sys = system_with_photons();
        let err = sys
            .register_stream("photons", "P0", photons(10), 1.0)
            .unwrap_err();
        assert!(matches!(err, SystemError::DuplicateStream(_)));
    }

    #[test]
    fn q1_stream_sharing_pushes_into_network() {
        let mut sys = system_with_photons();
        let reg = sys
            .register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        // The motivating example: Q1's operators run at SP4 (the source's
        // super-peer) and the *filtered* stream travels to SP1.
        let part = &reg.plan.parts[0];
        assert_eq!(part.tap_node, sys.topology().expect_node("SP4"));
        assert!(!part.ops.is_empty());
        let names: Vec<&str> = part
            .route
            .iter()
            .map(|&n| sys.topology().peer(n).name.as_str())
            .collect();
        assert_eq!(names, vec!["SP4", "SP0", "SP5", "SP1"]);
        // Delivery continues to the thin peer.
        assert_eq!(
            reg.plan.deliver_route.last().copied(),
            Some(sys.topology().expect_node("P1"))
        );
        assert!(!reg.reused_derived_stream);
    }

    #[test]
    fn q2_reuses_q1_result_stream() {
        let mut sys = system_with_photons();
        sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        let reg2 = sys
            .register_query("q2", queries::Q2, "P2", Strategy::StreamSharing)
            .unwrap();
        // Q2 must tap q1's stream (cheaper than pulling the full photons
        // stream from SP4) — the paper duplicates it at SP5.
        assert!(
            reg2.reused_derived_stream,
            "q2 should reuse q1's derived stream"
        );
        let part = &reg2.plan.parts[0];
        let tapped = sys.deployment().flow(part.tap_flow).label.clone();
        assert_eq!(tapped, "q1/photons");
        assert_eq!(
            sys.topology().peer(part.tap_node).name,
            "SP5",
            "duplication happens at SP5 as in Figure 2"
        );
    }

    #[test]
    fn q4_reuses_q3_aggregates_via_reaggregation() {
        let mut sys = system_with_photons();
        sys.register_query("q3", queries::Q3, "P3", Strategy::StreamSharing)
            .unwrap();
        let reg4 = sys
            .register_query("q4", queries::Q4, "P4", Strategy::StreamSharing)
            .unwrap();
        assert!(
            reg4.reused_derived_stream,
            "q4 should reuse q3's aggregate stream"
        );
        let part = &reg4.plan.parts[0];
        assert!(
            part.ops
                .iter()
                .any(|op| matches!(op, dss_network::FlowOp::ReAggregate { .. })),
            "q4 installs a re-aggregation, got {:?}",
            part.ops
        );
    }

    #[test]
    fn window_contents_queries_share_via_rewindowing() {
        let fine = r#"<photons>{ for $w in stream("photons")/photons/photon
            [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0]
            |det_time diff 20 step 10|
            return <wnd>{ $w }</wnd> }</photons>"#;
        let coarse = r#"<photons>{ for $w in stream("photons")/photons/photon
            [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0]
            |det_time diff 60 step 40|
            return <wnd>{ $w }</wnd> }</photons>"#;
        let mut sys = system_with_photons();
        sys.register_query("wfine", fine, "P3", Strategy::StreamSharing)
            .unwrap();
        let reg = sys
            .register_query("wcoarse", coarse, "P4", Strategy::StreamSharing)
            .unwrap();
        assert!(
            reg.reused_derived_stream,
            "coarse windows should reuse the fine stream"
        );
        assert!(
            reg.plan.parts[0]
                .ops
                .iter()
                .any(|op| matches!(op, dss_network::FlowOp::ReWindow { .. })),
            "expected a re-windowing operator, got {:?}",
            reg.plan.parts[0].ops
        );
        // And the delivered results equal the unshared computation.
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        let shared = sim.flow_outputs[reg.delivery_flow].clone();
        let mut solo = system_with_photons();
        let solo_reg = solo
            .register_query("wcoarse", coarse, "P4", Strategy::DataShipping)
            .unwrap();
        let solo_sim = solo.run_simulation(dss_network::SimConfig::default());
        assert!(!shared.is_empty());
        assert_eq!(shared, solo_sim.flow_outputs[solo_reg.delivery_flow]);
    }

    #[test]
    fn window_contents_results_wrap_items() {
        let q = r#"<photons>{ for $w in stream("photons")/photons/photon
            [en >= 1.3] |det_time diff 50| return <wnd>{ $w }</wnd> }</photons>"#;
        let mut sys = system_with_photons();
        let reg = sys
            .register_query("w", q, "P1", Strategy::StreamSharing)
            .unwrap();
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        let results = &sim.flow_outputs[reg.delivery_flow];
        assert!(!results.is_empty());
        for w in results {
            assert_eq!(w.name(), "wnd");
            assert!(!w.children().is_empty());
            for item in w.children() {
                assert_eq!(item.name(), "photon");
                let en = item.child("en").unwrap().decimal_value().unwrap();
                assert!(en >= "1.3".parse().unwrap());
            }
        }
    }

    #[test]
    fn identical_query_reuses_stream_without_new_operators() {
        let mut sys = system_with_photons();
        sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        let again = sys
            .register_query("q1b", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        let part = &again.plan.parts[0];
        assert!(
            part.ops.is_empty(),
            "identical query needs no new operators"
        );
        assert_eq!(part.route.len(), 1, "stream already arrives at SP1");
    }

    #[test]
    fn widening_lets_q1_reuse_q2_stream() {
        // Reversed registration order: Q2's narrow stream cannot serve Q1,
        // so plain sharing pulls the original stream from SP4. With
        // widening, Q2's stream is loosened in place (its hull is exactly
        // Q1's predicate, its projection union Q1's output set) and Q1 taps
        // the widened stream.
        let mut sys = system_with_photons();
        sys.set_widening(true);
        sys.register_query("q2", queries::Q2, "P2", Strategy::StreamSharing)
            .unwrap();
        let reg1 = sys
            .register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        assert!(
            reg1.reused_derived_stream,
            "q1 should reuse q2's widened stream"
        );
        let part = &reg1.plan.parts[0];
        assert!(part.widen.is_some(), "expected a widening plan part");
        let widened_flow = part.widen.as_ref().unwrap().flow;
        assert!(
            sys.deployment()
                .flow(widened_flow)
                .label
                .contains("+widened"),
            "flow should be marked widened: {}",
            sys.deployment().flow(widened_flow).label
        );

        // Results must be identical to the unshared computation for BOTH
        // queries — q2's consumers were patched with restore-operators.
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        let mut solo = system_with_photons();
        let s2 = solo
            .register_query("q2", queries::Q2, "P2", Strategy::DataShipping)
            .unwrap();
        let s1 = solo
            .register_query("q1", queries::Q1, "P1", Strategy::DataShipping)
            .unwrap();
        let solo_sim = solo.run_simulation(dss_network::SimConfig::default());
        // q2 delivery flow in the widened system is flow index from its reg;
        // we saved only reg1 — find q2's delivery by label.
        let q2_delivery = sys
            .deployment()
            .flows()
            .iter()
            .position(|f| f.label == "q2/result")
            .expect("q2 delivery flow");
        assert!(!sim.flow_outputs[q2_delivery].is_empty());
        assert_eq!(
            sim.flow_outputs[q2_delivery], solo_sim.flow_outputs[s2.delivery_flow],
            "widening must not change q2's delivered results"
        );
        assert_eq!(
            sim.flow_outputs[reg1.delivery_flow], solo_sim.flow_outputs[s1.delivery_flow],
            "q1's results over the widened stream must equal the unshared run"
        );
    }

    #[test]
    fn widening_disabled_by_default() {
        let mut sys = system_with_photons();
        sys.register_query("q2", queries::Q2, "P2", Strategy::StreamSharing)
            .unwrap();
        let reg1 = sys
            .register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        assert!(reg1.plan.parts[0].widen.is_none());
    }

    #[test]
    fn widening_reduces_traffic_when_consumers_are_colocated() {
        // Q2's stream already flows SP4→…→SP1 (subscriber P1). A later Q1
        // at the adjacent P3 then only needs the widening delta on that
        // route plus one extra hop — cheaper than pulling the original
        // stream across the backbone.
        let run = |widening: bool| {
            let mut sys = system_with_photons();
            sys.set_widening(widening);
            sys.register_query("q2", queries::Q2, "P1", Strategy::StreamSharing)
                .unwrap();
            let reg1 = sys
                .register_query("q1", queries::Q1, "P3", Strategy::StreamSharing)
                .unwrap();
            let total = sys
                .run_simulation(dss_network::SimConfig::default())
                .metrics
                .total_edge_bytes();
            (total, reg1.plan.parts[0].widen.is_some())
        };
        let (without, widened_off) = run(false);
        let (with, widened_on) = run(true);
        assert!(!widened_off);
        assert!(
            widened_on,
            "the planner should choose the widening plan here"
        );
        assert!(
            with < without,
            "widening should cut traffic: {with} (widened) vs {without} (plain)"
        );
    }

    #[test]
    fn strategies_produce_different_plans() {
        let mut ds = system_with_photons();
        let ds_reg = ds
            .register_query("q2", queries::Q2, "P2", Strategy::DataShipping)
            .unwrap();
        // Data shipping ships the raw stream and evaluates at the target.
        assert!(ds_reg.plan.parts[0].ops.is_empty());
        assert!(ds_reg.plan.post_ops.len() > 1);

        let mut qs = system_with_photons();
        let qs_reg = qs
            .register_query("q2", queries::Q2, "P2", Strategy::QueryShipping)
            .unwrap();
        // Query shipping evaluates at the source's super-peer.
        assert!(!qs_reg.plan.parts[0].ops.is_empty());
        assert_eq!(
            qs_reg.plan.parts[0].tap_node,
            qs.topology().expect_node("SP4")
        );
        // The shipped stream is smaller than the raw stream.
        assert!(
            qs_reg.plan.parts[0].estimate.bytes_per_s()
                < ds_reg.plan.parts[0].estimate.bytes_per_s()
        );
    }

    #[test]
    fn simulation_traffic_ordering_matches_paper() {
        // Register Q1+Q2 under each strategy and compare total traffic:
        // data shipping ≫ query shipping > stream sharing.
        let mut totals = Vec::new();
        for strategy in Strategy::ALL {
            let mut sys = system_with_photons();
            sys.register_query("q1", queries::Q1, "P1", strategy)
                .unwrap();
            sys.register_query("q2", queries::Q2, "P2", strategy)
                .unwrap();
            let out = sys.run_simulation(dss_network::SimConfig::default());
            totals.push(out.metrics.total_edge_bytes());
        }
        let (ds, qs, ss) = (totals[0], totals[1], totals[2]);
        assert!(
            ds > qs,
            "data shipping {ds} should exceed query shipping {qs}"
        );
        assert!(
            qs > ss,
            "query shipping {qs} should exceed stream sharing {ss}"
        );
    }

    #[test]
    fn shared_results_equal_unshared_results() {
        // The delivered result items must be identical whether or not
        // sharing is used.
        let run = |strategy: Strategy| {
            let mut sys = system_with_photons();
            let r1 = sys
                .register_query("q1", queries::Q1, "P1", strategy)
                .unwrap();
            let r2 = sys
                .register_query("q2", queries::Q2, "P2", strategy)
                .unwrap();
            let r3 = sys
                .register_query("q3", queries::Q3, "P3", strategy)
                .unwrap();
            let r4 = sys
                .register_query("q4", queries::Q4, "P4", strategy)
                .unwrap();
            let out = sys.run_simulation(dss_network::SimConfig::default());
            [r1, r2, r3, r4].map(|r| out.flow_outputs[r.delivery_flow].clone())
        };
        let shared = run(Strategy::StreamSharing);
        let unshared = run(Strategy::DataShipping);
        for (i, (s, u)) in shared.iter().zip(&unshared).enumerate() {
            assert!(!u.is_empty(), "query {} delivered nothing", i + 1);
            assert_eq!(s, u, "query {} results differ between strategies", i + 1);
        }
    }

    #[test]
    fn unknown_stream_and_peer_errors() {
        let mut sys = system_with_photons();
        let err = sys
            .register_query(
                "qx",
                r#"<r>{ for $p in stream("ghost")/g/i return <x>{ $p/v }</x> }</r>"#,
                "P1",
                Strategy::StreamSharing,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SystemError::Subscribe(SubscribeError::UnknownStream(_))
        ));
        let err = sys
            .register_query("qy", queries::Q1, "P99", Strategy::StreamSharing)
            .unwrap_err();
        assert!(matches!(err, SystemError::UnknownPeer(_)));
    }

    #[test]
    fn admission_rejects_under_tight_caps() {
        let mut sys = system_with_photons();
        // Tiny bandwidth: the raw stream rate exceeds it, so data shipping
        // of the full stream becomes infeasible.
        AdmissionControl::apply_caps(&mut sys, 1.0, 1.0);
        let err = sys
            .register_query_opts("q1", queries::Q1, "P1", Strategy::DataShipping, true)
            .unwrap_err();
        assert!(matches!(
            err,
            SystemError::Subscribe(SubscribeError::Overload)
        ));
    }

    #[test]
    fn admission_report_counts() {
        let mut sys = system_with_photons();
        AdmissionControl::apply_caps(&mut sys, 1.0, 1.0);
        let batch = vec![
            ("q1".to_string(), queries::Q1.to_string(), "P1".to_string()),
            ("q2".to_string(), queries::Q2.to_string(), "P2".to_string()),
        ];
        let report = AdmissionControl::register_batch(&mut sys, &batch, Strategy::DataShipping);
        assert_eq!(report.rejected_count(), 2);
        assert_eq!(report.accepted_count(), 0);
        assert!(report.errored.is_empty());
    }

    #[test]
    fn registration_reports_elapsed_time() {
        let mut sys = system_with_photons();
        let reg = sys
            .register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        // Sanity only: the measurement exists and is small.
        assert!(reg.elapsed.as_secs() < 5);
        assert_eq!(sys.query_count(), 1);
    }

    #[test]
    fn subscribe_search_stats() {
        let mut sys = system_with_photons();
        sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        let compiled = dss_wxquery::compile_query(queries::Q2).unwrap();
        let v_q = sys.topology().expect_node("SP7");
        let (plan, stats) = subscribe(
            sys.state(),
            &compiled,
            v_q,
            sys.topology().expect_node("P2"),
            SearchOrder::Bfs,
            false,
        )
        .unwrap();
        assert!(stats.nodes_visited >= 2);
        assert!(stats.matches >= 1);
        assert!(stats.plans_generated >= 2);
        assert!(plan.total_cost >= 0.0);
        // The DFS variant finds a plan too.
        let (plan_dfs, _) = subscribe(
            sys.state(),
            &compiled,
            v_q,
            sys.topology().expect_node("P2"),
            SearchOrder::Dfs,
            false,
        )
        .unwrap();
        assert_eq!(plan.parts[0].tap_flow, plan_dfs.parts[0].tap_flow);
    }

    #[test]
    fn unregister_retires_flows_and_releases_charges() {
        let mut sys = system_with_photons();
        let baseline_edge: Vec<f64> = sys.state().edge_used_kbps.clone();
        let baseline_node: Vec<f64> = sys.state().node_used_work.clone();
        sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        sys.unregister_query("q1").unwrap();
        assert_eq!(sys.query_count(), 0);
        // All derived flows retired; only the source flow remains active.
        let active: Vec<&str> = sys
            .deployment()
            .flows()
            .iter()
            .filter(|f| !f.retired)
            .map(|f| f.label.as_str())
            .collect();
        assert_eq!(active, vec!["photons@SP4"]);
        // Charges fully reversed.
        for (a, b) in sys.state().edge_used_kbps.iter().zip(&baseline_edge) {
            assert!((a - b).abs() < 1e-9, "edge charge not reversed: {a} vs {b}");
        }
        for (a, b) in sys.state().node_used_work.iter().zip(&baseline_node) {
            assert!((a - b).abs() < 1e-9, "node charge not reversed: {a} vs {b}");
        }
        // Retired streams no longer carry traffic in the simulator.
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        assert_eq!(
            sim.metrics.total_edge_bytes(),
            {
                let fresh = system_with_photons();
                fresh
                    .run_simulation(dss_network::SimConfig::default())
                    .metrics
                    .total_edge_bytes()
            },
            "a fully unregistered system must match a fresh one"
        );
    }

    #[test]
    fn unregister_keeps_streams_with_remaining_consumers() {
        let mut sys = system_with_photons();
        sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        let reg2 = sys
            .register_query("q2", queries::Q2, "P2", Strategy::StreamSharing)
            .unwrap();
        assert!(reg2.reused_derived_stream);
        // Dropping q1 must keep q1's transport stream alive: q2 taps it.
        sys.unregister_query("q1").unwrap();
        let q1_stream = sys
            .deployment()
            .flows()
            .iter()
            .find(|f| f.label == "q1/photons")
            .expect("q1 transport exists");
        assert!(!q1_stream.retired, "q2 still consumes q1's stream");
        // q2 keeps delivering correct results.
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        assert!(!sim.flow_outputs[reg2.delivery_flow].is_empty());
        // Dropping q2 then retires the whole chain.
        sys.unregister_query("q2").unwrap();
        let active: Vec<&str> = sys
            .deployment()
            .flows()
            .iter()
            .filter(|f| !f.retired)
            .map(|f| f.label.as_str())
            .collect();
        assert_eq!(active, vec!["photons@SP4"]);
    }

    #[test]
    fn unregister_unknown_query_errors() {
        let mut sys = system_with_photons();
        assert!(matches!(
            sys.unregister_query("ghost"),
            Err(SystemError::UnknownQuery(_))
        ));
    }

    #[test]
    fn reregistration_after_unregister_plans_fresh() {
        let mut sys = system_with_photons();
        sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        sys.unregister_query("q1").unwrap();
        // A new Q2 cannot reuse the retired q1 stream.
        let reg2 = sys
            .register_query("q2", queries::Q2, "P2", Strategy::StreamSharing)
            .unwrap();
        assert!(
            !reg2.reused_derived_stream,
            "retired streams must not be shared"
        );
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        assert!(!sim.flow_outputs[reg2.delivery_flow].is_empty());
    }

    #[test]
    fn sharing_works_across_hierarchical_subnets() {
        // The paper's scalability sketch: subnets joined by gateways. A
        // stream in subnet 0 serves queries in subnets 1 and 2; the second
        // query rides the first one's stream through the gateway ring.
        let mut sys = StreamGlobe::new(dss_network::hierarchical_topology(3, 2));
        sys.register_stream("photons", "N0_SP3", photons(300), 50.0)
            .unwrap();
        let r1 = sys
            .register_query("q1", queries::Q1, "N1_SP3", Strategy::StreamSharing)
            .unwrap();
        let r2 = sys
            .register_query("q2", queries::Q2, "N1_SP2", Strategy::StreamSharing)
            .unwrap();
        assert!(
            r2.reused_derived_stream,
            "q2 should reuse q1's stream in the same subnet"
        );
        let sim = sys.run_simulation(dss_network::SimConfig::default());
        assert!(!sim.flow_outputs[r1.delivery_flow].is_empty());
        assert!(!sim.flow_outputs[r2.delivery_flow].is_empty());
        // q1's stream crosses the N0/N1 gateways.
        let g0 = sys.topology().expect_node("N0_SP0");
        let g1 = sys.topology().expect_node("N1_SP0");
        let route = &r1.plan.parts[0].route;
        assert!(
            route.contains(&g0) && route.contains(&g1),
            "route {route:?}"
        );
    }

    #[test]
    fn cost_base_loads_match_engine_operators() {
        use dss_engine::StreamOperator;
        use dss_predicate::PredicateGraph;
        use dss_properties::{Operator, ProjectionSpec};
        // The planner's bload table must agree with what the executable
        // operators actually charge, or estimated and simulated load drift.
        let specs: Vec<dss_properties::Operator> = vec![
            Operator::Selection(PredicateGraph::new()),
            Operator::Projection(ProjectionSpec::default()),
            Operator::Udf {
                name: "u".into(),
                params: vec![],
            },
        ];
        for op in &specs {
            assert_eq!(
                crate::cost::base_load(op),
                dss_engine::build_operator(op).base_load(),
                "bload mismatch for {op}"
            );
        }
        // Flow-level ops.
        let q3 = dss_wxquery::compile_query(dss_wxquery::queries::Q3).unwrap();
        let agg = q3.aggregation.unwrap();
        assert_eq!(
            crate::cost::base_load(&Operator::Aggregation(agg.clone())),
            dss_engine::AggregateOp::new(agg.clone()).base_load()
        );
        let q4 = dss_wxquery::compile_query(dss_wxquery::queries::Q4).unwrap();
        let agg4 = q4.aggregation.unwrap();
        assert_eq!(
            crate::plan::flow_op_base_load(&dss_network::FlowOp::ReAggregate {
                reused: agg.clone(),
                new: agg4.clone(),
            }),
            dss_engine::ReAggregateOp::new(agg, agg4).base_load()
        );
        assert_eq!(
            crate::plan::flow_op_base_load(&dss_network::FlowOp::Restructure {
                template: dss_engine::Template::element("x", vec![]),
                agg: None,
                window: false,
            }),
            dss_engine::RestructureOp::new(dss_engine::Template::element("x", vec![])).base_load()
        );
    }

    #[test]
    fn plan_describe_is_readable() {
        let mut sys = system_with_photons();
        let reg = sys
            .register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
            .unwrap();
        let desc = reg.plan.describe(sys.state());
        assert!(desc.contains("photons"));
        assert!(desc.contains("SP4"));
    }
}
