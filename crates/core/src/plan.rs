//! Query evaluation plans and the `generatePlan` function of Algorithm 1.
//!
//! A plan describes "how the network has to be changed in terms of
//! installed operators and routed data streams in order to satisfy q": per
//! input stream, which deployed stream to reuse, where to tap it, which
//! residual operators to install there, and how to route the produced
//! stream to the subscriber's super-peer — plus the post-processing
//! (restructuring) step executed there.

use dss_network::{shortest_path, FlowId, FlowOp, NodeId};
use dss_properties::{AggregationSpec, InputProperties, Operator, WindowKind, WindowSpec};
use dss_wxquery::CompiledQuery;

use crate::cost::{base_load, plan_cost, EdgeUse, NodeUse, StreamEstimate};
use crate::state::NetworkState;
use crate::stats::StreamStats;

/// Accumulates a candidate plan's resource uses (`u_b` per affected
/// connection, `u_l` per affected peer) against the current availability,
/// tracking feasibility — the shared costing core of `generatePlan`, the
/// widening variant, and the fixed-placement strategies.
#[derive(Debug, Default)]
pub struct UseAccumulator {
    edges: Vec<EdgeUse>,
    nodes: Vec<NodeUse>,
    feasible: bool,
}

impl UseAccumulator {
    /// Empty, feasible accumulator.
    pub fn new() -> UseAccumulator {
        UseAccumulator {
            edges: Vec::new(),
            nodes: Vec::new(),
            feasible: true,
        }
    }

    /// Charges a stream of `rate_kbps` over every connection of `route`.
    pub fn add_route(&mut self, state: &NetworkState, route: &[NodeId], rate_kbps: f64) {
        for w in route.windows(2) {
            let e = state
                .topo
                .edge_between(w[0], w[1])
                .expect("plans route over existing connections");
            let used = rate_kbps / state.topo.edge(e).bandwidth_kbps;
            let available = state.available_bandwidth_frac(e);
            if used > available {
                self.feasible = false;
            }
            self.edges.push(EdgeUse { used, available });
        }
    }

    /// Charges operators with summed base load `bload_sum` fed at
    /// `input_freq` to peer `v`.
    pub fn add_node_ops(
        &mut self,
        state: &NetworkState,
        v: NodeId,
        bload_sum: f64,
        input_freq: f64,
    ) {
        if bload_sum == 0.0 {
            return;
        }
        let used = bload_sum * state.topo.peer(v).pindex * input_freq / state.topo.peer(v).capacity;
        let available = state.available_load_frac(v);
        if used > available {
            self.feasible = false;
        }
        self.nodes.push(NodeUse { used, available });
    }

    /// `true` if nothing accumulated so far overloads the network.
    pub fn feasible(&self) -> bool {
        self.feasible
    }

    /// Evaluates the cost function `C` over the accumulated uses.
    pub fn cost(&self, state: &NetworkState) -> f64 {
        plan_cost(&state.params, &self.edges, &self.nodes)
    }

    /// The cost split into its weighted traffic and load terms; the sum
    /// reproduces [`Self::cost`] bit-for-bit (see
    /// [`crate::cost::plan_cost_split`]).
    pub fn cost_split(&self, state: &NetworkState) -> (f64, f64) {
        crate::cost::plan_cost_split(&state.params, &self.edges, &self.nodes)
    }
}

/// Base load of execution-only flow operators (mirrors the engine's
/// `base_load` implementations).
pub fn flow_op_base_load(op: &FlowOp) -> f64 {
    match op {
        FlowOp::Standard(o) => base_load(o),
        FlowOp::ReAggregate { .. } => 0.5,
        FlowOp::ReWindow { .. } => 0.7,
        FlowOp::Restructure { .. } => 0.8,
    }
}

/// Per patched consumer, the planner's state-handoff choice for a
/// widening: prepending the restore patch rebuilds the child's whole
/// operator chain, and its open window state either *migrates* (the open
/// accumulators and buffers move — O(delta) items) or is rebuilt by
/// replaying a full window extent of input through every stateful
/// operator (O(window) items). The two estimates are the handoff's own
/// cost split; they stay out of the rate-based cost `C` because the
/// transfer is a one-shot, not a steady-state rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidenDelta {
    /// The patched child flow.
    pub child: FlowId,
    /// Estimated items a delta migration moves: one open accumulator per
    /// window position for (re-)aggregates, the buffered raw items of the
    /// open windows for window-contents operators.
    pub migrate_items: f64,
    /// Estimated items a full rebuild replays: one window extent of input
    /// per stateful operator before the child's output is warm again.
    pub rebuild_items: f64,
    /// The choice: migrate when it moves no more items than a rebuild
    /// replays (ties prefer the loss-free handoff).
    pub migrate: bool,
}

/// Items covering one full extent of `window` at the stream's raw input
/// (the same items-per-window model `estimate_chain` uses).
fn window_extent_items(stats: &StreamStats, window: &WindowSpec) -> f64 {
    match window.kind() {
        WindowKind::Count => window.size().to_f64(),
        WindowKind::Diff => {
            let r = window.reference().expect("diff windows carry a reference");
            (window.size().to_f64() / stats.avg_increment(r)).max(1.0)
        }
    }
}

/// Number of concurrently open window positions of `window` (Δ/µ, the
/// "delta" a migration moves for accumulator-holding operators).
fn open_window_positions(window: &WindowSpec) -> f64 {
    let step = window.step().to_f64();
    if step <= 0.0 {
        return 1.0;
    }
    (window.size().to_f64() / step).ceil().max(1.0)
}

/// Estimates the state-handoff cost split for one widening-patched child:
/// sums, over the stateful operators of its current chain, the items a
/// delta migration would move vs. the items a full rebuild would replay.
pub fn widen_delta(state: &NetworkState, stats: &StreamStats, child: FlowId) -> WidenDelta {
    let mut migrate_items = 0.0;
    let mut rebuild_items = 0.0;
    for op in &state.deployment.flow(child).ops {
        let (window, holds_accumulators) = match op {
            FlowOp::Standard(Operator::Aggregation(s)) => (&s.window, true),
            FlowOp::ReAggregate { new, .. } => (&new.window, true),
            FlowOp::Standard(Operator::WindowOutput(w)) => (&w.window, false),
            FlowOp::ReWindow { new, .. } => (&new.window, false),
            _ => continue,
        };
        let extent = window_extent_items(stats, window);
        migrate_items += if holds_accumulators {
            open_window_positions(window)
        } else {
            extent
        };
        rebuild_items += extent;
    }
    WidenDelta {
        child,
        migrate_items,
        rebuild_items,
        migrate: migrate_items <= rebuild_items,
    }
}

/// Widening a deployed stream in place (the paper's ongoing-work
/// extension): the flow's operators are loosened so its stream also covers
/// the new subscription, and every existing consumer gets the original
/// narrowing operators prepended to preserve its results.
#[derive(Debug, Clone)]
pub struct WidenAction {
    /// The flow to widen (equals the part's `tap_flow`).
    pub flow: FlowId,
    /// The widened per-input properties the flow will carry.
    pub widened: InputProperties,
    /// Operators the widened flow executes (relative to its parent).
    pub new_flow_ops: Vec<FlowOp>,
    /// Estimated output of the widened stream.
    pub widened_estimate: StreamEstimate,
    /// Additional rate over the flow's existing route (widened − current,
    /// floored at zero).
    pub delta_estimate: StreamEstimate,
    /// Ops to prepend per existing child flow, restoring each consumer's
    /// original input.
    pub child_patches: Vec<(FlowId, Vec<FlowOp>)>,
    /// State-handoff choice per *patched* child (empty patches rebuild
    /// nothing and carry no delta): delta migration vs. full rebuild,
    /// with the estimated item movement behind the choice.
    pub deltas: Vec<WidenDelta>,
}

/// The plan for one input stream of a subscription (`P_s`).
#[derive(Debug, Clone)]
pub struct PlanPart {
    /// Original input stream name.
    pub stream: String,
    /// Deployed flow whose stream is reused.
    pub tap_flow: FlowId,
    /// Peer where the stream is tapped and the residual operators run
    /// (`v_b`).
    pub tap_node: NodeId,
    /// Residual operators installed at the tap node.
    pub ops: Vec<FlowOp>,
    /// Route of the produced stream from the tap node to the subscriber's
    /// super-peer (inclusive).
    pub route: Vec<NodeId>,
    /// Estimated size/frequency of the produced stream.
    pub estimate: StreamEstimate,
    /// Widening performed on the tapped flow before reuse, if any.
    pub widen: Option<WidenAction>,
    /// Cost-function value of this part.
    pub cost: f64,
    /// The weighted traffic term `γ·Σ penalized(u_b)` of `cost`.
    pub traffic: f64,
    /// The weighted load term `(1−γ)·Σ penalized(u_l)` of `cost`; the two
    /// terms sum to `cost` exactly.
    pub load: f64,
    /// `true` if the part overloads no connection or peer.
    pub feasible: bool,
}

/// A complete evaluation plan for a subscription.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-input parts.
    pub parts: Vec<PlanPart>,
    /// The subscriber's super-peer (`v_q`), where post-processing runs.
    pub post_node: NodeId,
    /// Post-processing operators (any residual evaluation the strategy
    /// placed at `v_q`, then restructuring).
    pub post_ops: Vec<FlowOp>,
    /// Route from `v_q` to the subscribing thin-peer (just `[v_q]` when the
    /// subscription was registered at a super-peer directly).
    pub deliver_route: Vec<NodeId>,
    /// Estimated delivered result stream.
    pub result_estimate: StreamEstimate,
    /// Cost of the post-processing + delivery component alone; adding the
    /// parts' costs reproduces `total_cost` exactly.
    pub post_cost: f64,
    /// Total cost across parts plus post-processing.
    pub total_cost: f64,
    /// `true` if no component overloads the network.
    pub feasible: bool,
}

impl Plan {
    /// Number of stream transports the plan adds to the network (excluding
    /// the final thin-peer delivery).
    pub fn num_routed_streams(&self) -> usize {
        self.parts.iter().filter(|p| p.route.len() > 1).count()
    }

    /// Human-readable summary.
    pub fn describe(&self, state: &NetworkState) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for part in &self.parts {
            let names: Vec<&str> = part
                .route
                .iter()
                .map(|&n| state.topo.peer(n).name.as_str())
                .collect();
            let _ = writeln!(
                s,
                "  input {}: reuse flow {} at {}, install {} op(s), route {}",
                part.stream,
                state.deployment.flow(part.tap_flow).label,
                state.topo.peer(part.tap_node).name,
                part.ops.len(),
                names.join(" → "),
            );
        }
        let _ = writeln!(
            s,
            "  post-processing at {} ({} op(s)), cost {:.6}",
            state.topo.peer(self.post_node).name,
            self.post_ops.len(),
            self.total_cost
        );
        s
    }
}

/// Computes the residual flow operators needed to turn the reused stream
/// into the subscription's stream. Aggregations already present upstream
/// become re-aggregations (Figure 5) instead of recomputation from raw
/// items.
pub fn residual_flow_ops(reused: &InputProperties, wanted: &InputProperties) -> Vec<FlowOp> {
    let reused_agg: Option<&AggregationSpec> = reused.aggregation();
    let reused_window: Option<&dss_properties::WindowOutputSpec> =
        reused.operators().iter().find_map(|o| match o {
            Operator::WindowOutput(w) => Some(w),
            _ => None,
        });
    dss_properties::residual_operators(reused, wanted)
        .into_iter()
        .map(|op| match (&op, reused_agg, reused_window) {
            (Operator::Aggregation(new_spec), Some(parent_spec), _) => FlowOp::ReAggregate {
                reused: parent_spec.clone(),
                new: new_spec.clone(),
            },
            (Operator::WindowOutput(new_spec), _, Some(parent_spec)) => FlowOp::ReWindow {
                reused: parent_spec.clone(),
                new: new_spec.clone(),
            },
            _ => FlowOp::Standard(op),
        })
        .collect()
}

/// `generatePlan(p_b, v_b, v_q)`: builds (and costs) the plan part that
/// reuses `tap_flow`'s stream at `tap_node` to satisfy the subscription
/// input `wanted`, delivering to `post_node`.
///
/// Returns `None` when no route exists.
pub fn generate_plan_part(
    state: &NetworkState,
    wanted: &InputProperties,
    tap_flow: FlowId,
    tap_node: NodeId,
    post_node: NodeId,
) -> Option<PlanPart> {
    generate_plan_part_cached(state, wanted, tap_flow, tap_node, post_node, None, None)
}

/// [`generate_plan_part`] with optional precomputed inputs — the BFS calls
/// this once per candidate stream, but the subscription's chain estimate is
/// fixed per search and the route is fixed per tap node, so the search
/// computes each only once.
pub fn generate_plan_part_cached(
    state: &NetworkState,
    wanted: &InputProperties,
    tap_flow: FlowId,
    tap_node: NodeId,
    post_node: NodeId,
    wanted_estimate: Option<StreamEstimate>,
    route_hint: Option<&[NodeId]>,
) -> Option<PlanPart> {
    let stats = state.stats(wanted.stream())?;
    let reused_props = state
        .deployment
        .flow(tap_flow)
        .properties
        .as_ref()
        .and_then(|p| p.input_for(wanted.stream()))?;
    let ops = residual_flow_ops(reused_props, wanted);
    let route = match route_hint {
        Some(r) => r.to_vec(),
        None => shortest_path(&state.topo, tap_node, post_node)?,
    };
    // The transported stream is semantically the subscription's stream.
    let estimate =
        wanted_estimate.unwrap_or_else(|| crate::cost::estimate_chain(stats, wanted.operators()));
    // Cost: the route's additional traffic plus the tap node's additional
    // operator load.
    let mut uses = UseAccumulator::new();
    uses.add_route(state, &route, estimate.kbps());
    let bload: f64 = ops.iter().map(flow_op_base_load).sum();
    uses.add_node_ops(
        state,
        tap_node,
        bload,
        state.flow_estimate(tap_flow).frequency,
    );
    let (traffic, load) = uses.cost_split(state);
    let cost = traffic + load;
    let feasible = uses.feasible();
    Some(PlanPart {
        stream: wanted.stream().to_string(),
        tap_flow,
        tap_node,
        ops,
        route,
        estimate,
        widen: None,
        cost,
        traffic,
        load,
        feasible,
    })
}

/// `generatePlan` for a *widening* candidate: the stream at `tap_flow` does
/// not match the subscription, but loosening its operators (predicate hull,
/// projection union) makes it cover both its current consumers and the new
/// one. Conditions:
///
/// * the candidate's chain is widenable (selection/projection only),
/// * the candidate's **parent** stream contains everything the widened
///   stream needs (we widen one flow, not a whole upstream chain).
///
/// The extra cost has three parts beyond a normal reuse: the widened
/// stream's additional rate over the flow's existing route, the prepended
/// restore-operators at every existing consumer, and the usual transport of
/// the new subscription's stream from the tap to `post_node`.
///
/// `route_hint` optionally passes the precomputed shortest route from
/// `tap_node` to `post_node` (fixed per visited peer, so the search computes
/// it once per node instead of once per candidate).
pub fn generate_widening_part(
    state: &NetworkState,
    wanted: &InputProperties,
    tap_flow: FlowId,
    tap_node: NodeId,
    post_node: NodeId,
    route_hint: Option<&[NodeId]>,
) -> Option<PlanPart> {
    let stats = state.stats(wanted.stream())?;
    let flow = state.deployment.flow(tap_flow);
    let current = flow
        .properties
        .as_ref()?
        .input_for(wanted.stream())?
        .clone();
    let widened = dss_properties::widen_input(&current, wanted)?;
    // The parent must be able to feed the widened stream.
    let parent_props: InputProperties = match &flow.input {
        dss_network::FlowInput::Source { stream } => InputProperties::original(stream.clone()),
        dss_network::FlowInput::Tap { parent } => state
            .deployment
            .flow(*parent)
            .properties
            .as_ref()?
            .input_for(wanted.stream())?
            .clone(),
    };
    if !dss_properties::match_input_properties(&parent_props, &widened) {
        return None;
    }
    let new_flow_ops = residual_flow_ops(&parent_props, &widened);
    let widened_estimate = crate::cost::estimate_chain(stats, widened.operators());
    let current_estimate = state.flow_estimate(tap_flow);
    let delta_estimate = StreamEstimate {
        item_size: widened_estimate.item_size,
        frequency: (widened_estimate.bytes_per_s() - current_estimate.bytes_per_s()).max(0.0)
            / widened_estimate.item_size.max(1.0),
    };
    // Restore-ops for every existing consumer of the flow.
    let child_patches: Vec<(FlowId, Vec<FlowOp>)> = state
        .deployment
        .children_of(tap_flow)
        .into_iter()
        .map(|c| (c, residual_flow_ops(&widened, &current)))
        .collect();
    // State handoff per patched child: prepending the patch rebuilds the
    // child's chain, so the planner decides here — per child, with its own
    // item-count cost split — whether the open window state migrates or is
    // replayed from scratch.
    let deltas: Vec<WidenDelta> = child_patches
        .iter()
        .filter(|(_, patch)| !patch.is_empty())
        .map(|(c, _)| widen_delta(state, stats, *c))
        .collect();

    // The new subscription taps the widened stream.
    let ops = residual_flow_ops(&widened, wanted);
    let route = match route_hint {
        Some(r) => r.to_vec(),
        None => shortest_path(&state.topo, tap_node, post_node)?,
    };
    let estimate = crate::cost::estimate_chain(stats, wanted.operators());

    // ---- cost & feasibility ----------------------------------------------
    let mut uses = UseAccumulator::new();
    // Additional widened traffic over the flow's existing route.
    uses.add_route(state, &flow.route, delta_estimate.kbps());
    // Transport of the new stream.
    uses.add_route(state, &route, estimate.kbps());
    // Child restore-operators, charged at each child's processing node with
    // the widened stream's frequency.
    for (c, patch) in &child_patches {
        let v = state.deployment.flow(*c).processing_node;
        let bload: f64 = patch.iter().map(flow_op_base_load).sum();
        uses.add_node_ops(state, v, bload, widened_estimate.frequency);
    }
    // The new subscription's residual ops at the tap node.
    let bload: f64 = ops.iter().map(flow_op_base_load).sum();
    uses.add_node_ops(state, tap_node, bload, widened_estimate.frequency);
    let (traffic, load) = uses.cost_split(state);
    let cost = traffic + load;
    let feasible = uses.feasible();
    Some(PlanPart {
        stream: wanted.stream().to_string(),
        tap_flow,
        tap_node,
        ops,
        route,
        estimate,
        widen: Some(WidenAction {
            flow: tap_flow,
            widened,
            new_flow_ops,
            widened_estimate,
            delta_estimate,
            child_patches,
            deltas,
        }),
        cost,
        traffic,
        load,
        feasible,
    })
}

/// Assembles the full plan from its parts, adding the post-processing and
/// delivery components (identical across candidate parts, so they do not
/// influence the search — but they do count toward feasibility and the
/// reported total cost).
pub fn assemble_plan(
    state: &NetworkState,
    query: &CompiledQuery,
    parts: Vec<PlanPart>,
    extra_post_ops: Vec<FlowOp>,
    post_node: NodeId,
    subscriber: NodeId,
) -> Plan {
    let mut post_ops = extra_post_ops;
    post_ops.push(restructure_flow_op(query));

    // Input frequency at the post node: the (sum of) arriving streams.
    let input_freq: f64 = parts.iter().map(|p| p.estimate.frequency).sum();
    // The delivered result stream always corresponds to the query's *full*
    // chain (under data shipping the chain runs inside the post-processing
    // step, so the arriving raw rate would wildly overestimate delivery).
    // Restructuring itself renames/reorders but does not add data.
    let result_estimate = {
        let mut size = 0.0f64;
        let mut freq = 0.0f64;
        for wanted in query.properties.inputs() {
            if let Some(stats) = state.stats(wanted.stream()) {
                let est = crate::cost::estimate_chain(stats, wanted.operators());
                size = size.max(est.item_size);
                freq += est.frequency;
            }
        }
        StreamEstimate {
            item_size: size,
            frequency: freq,
        }
    };

    let mut feasible = parts.iter().all(|p| p.feasible);
    let bload: f64 = post_ops.iter().map(flow_op_base_load).sum();
    let used_post = bload * state.topo.peer(post_node).pindex * input_freq
        / state.topo.peer(post_node).capacity;
    let avail_post = state.available_load_frac(post_node);
    if used_post > avail_post {
        feasible = false;
    }
    let mut edges = Vec::new();
    let deliver_route = if subscriber == post_node {
        vec![post_node]
    } else {
        shortest_path(&state.topo, post_node, subscriber)
            .expect("subscriber reachable from its super-peer")
    };
    for w in deliver_route.windows(2) {
        let e = state.topo.edge_between(w[0], w[1]).expect("existing edges");
        let used = result_estimate.kbps() / state.topo.edge(e).bandwidth_kbps;
        let available = state.available_bandwidth_frac(e);
        if used > available {
            feasible = false;
        }
        edges.push(EdgeUse { used, available });
    }
    let post_cost = plan_cost(
        &state.params,
        &edges,
        &[NodeUse {
            used: used_post,
            available: avail_post,
        }],
    );
    let total_cost = parts.iter().map(|p| p.cost).sum::<f64>() + post_cost;
    Plan {
        parts,
        post_node,
        post_ops,
        deliver_route,
        result_estimate,
        post_cost,
        total_cost,
        feasible,
    }
}

/// Builds the full-chain flow ops of a compiled query (used by the data- and
/// query-shipping strategies, which install everything at one peer).
pub fn full_chain_ops(query: &CompiledQuery) -> Vec<FlowOp> {
    query
        .operator_chain()
        .iter()
        .cloned()
        .map(FlowOp::Standard)
        .collect()
}

/// Convenience: the restructure op spec of a query as a `FlowOp`.
pub fn restructure_flow_op(query: &CompiledQuery) -> FlowOp {
    FlowOp::Restructure {
        template: query.template.clone(),
        agg: query.aggregation.as_ref().map(|a| a.op),
        window: query.window_output.is_some(),
    }
}
