//! The statistics catalog feeding the cost model.
//!
//! Section 3.2: "Cost function inputs like average frequencies of data
//! stream items, average sizes and occurrences of elements, and
//! selectivities of operators are obtained from statistics and selectivity
//! estimations." We build these statistics by sampling each registered
//! stream's items: per element path we track average occurrence and
//! serialized subtree size; per numeric leaf we track the observed value
//! range (for uniform-range selectivity estimation) and the average
//! increment between consecutive items (for estimating the output frequency
//! of value-based data windows).

use std::collections::BTreeMap;

use dss_predicate::{NodeRef, PredicateGraph};
use dss_xml::writer::serialized_size;
use dss_xml::{Decimal, Node, Path};

/// Per-element-path statistics.
#[derive(Debug, Clone, Default)]
pub struct PathStat {
    /// Average occurrences of the element per stream item (`occ(ns)`).
    pub occurrence: f64,
    /// Average serialized size of one occurrence's subtree, including its
    /// tags (`size(ns)`).
    pub subtree_size: f64,
    /// Element name length in bytes (for tag-overhead computations).
    pub name_len: usize,
}

/// Statistics of one data stream.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Average serialized size of one stream item in bytes (`size(s)`).
    pub item_size: f64,
    /// Average item frequency in items per second (`freq(s)`).
    pub frequency: f64,
    /// Item element name length (root tag overhead).
    pub item_name_len: usize,
    /// Per-path statistics (paths relative to the item root).
    pub paths: BTreeMap<Path, PathStat>,
    /// Observed value range per numeric leaf path.
    pub ranges: BTreeMap<Path, (Decimal, Decimal)>,
    /// Average increment of each numeric leaf between consecutive items
    /// (meaningful for ordered reference elements such as `det_time`).
    pub increments: BTreeMap<Path, f64>,
}

/// Default selectivity for predicates over elements without observed
/// statistics.
pub const DEFAULT_SELECTIVITY: f64 = 0.33;
/// Selectivity attributed to each variable-to-variable constraint.
pub const VAR_VAR_SELECTIVITY: f64 = 0.5;
/// Floor applied to estimated selectivities (equality predicates on
/// continuous domains would otherwise estimate to zero).
pub const MIN_SELECTIVITY: f64 = 0.001;

impl StreamStats {
    /// Builds statistics from a sample of stream items and the stream's
    /// item frequency (items per second).
    ///
    /// # Panics
    /// Panics if the sample is empty or the frequency is not positive.
    pub fn from_sample(sample: &[Node], frequency: f64) -> StreamStats {
        assert!(
            !sample.is_empty(),
            "stream statistics need a non-empty sample"
        );
        assert!(frequency > 0.0, "stream frequency must be positive");
        let n = sample.len() as f64;
        let mut counts: BTreeMap<Path, (u64, u64, usize)> = BTreeMap::new(); // occurrences, bytes, name len
        let mut values: BTreeMap<Path, Vec<Decimal>> = BTreeMap::new();
        let mut total_size = 0u64;
        for item in sample {
            total_size += serialized_size(item) as u64;
            collect(item, &Path::this(), &mut counts, &mut values);
        }
        let mut paths = BTreeMap::new();
        for (path, (occ, bytes, name_len)) in counts {
            paths.insert(
                path,
                PathStat {
                    occurrence: occ as f64 / n,
                    subtree_size: bytes as f64 / occ as f64,
                    name_len,
                },
            );
        }
        let mut ranges = BTreeMap::new();
        let mut increments = BTreeMap::new();
        for (path, vals) in values {
            let min = *vals.iter().min().expect("non-empty");
            let max = *vals.iter().max().expect("non-empty");
            ranges.insert(path.clone(), (min, max));
            if vals.len() > 1 {
                let mut inc_sum = 0.0;
                for w in vals.windows(2) {
                    inc_sum += (w[1] - w[0]).to_f64();
                }
                increments.insert(path, inc_sum / (vals.len() - 1) as f64);
            }
        }
        StreamStats {
            item_size: total_size as f64 / n,
            frequency,
            item_name_len: sample[0].name().len(),
            paths,
            ranges,
            increments,
        }
    }

    /// Statistic for one path, if observed.
    pub fn path_stat(&self, path: &Path) -> Option<&PathStat> {
        self.paths.get(path)
    }

    /// Average increment of an ordered reference element between
    /// consecutive items. Falls back to 1.0 when unobserved (count-like
    /// references).
    pub fn avg_increment(&self, path: &Path) -> f64 {
        self.increments
            .get(path)
            .copied()
            .filter(|v| *v > 0.0)
            .unwrap_or(1.0)
    }

    /// Estimates the selectivity `sel(σ)` of a conjunctive predicate using
    /// per-variable uniform-range estimation with attribute independence.
    ///
    /// The predicate is canonicalized (minimized) first so the estimate
    /// does not depend on the caller's syntactic form: vacuous asserted
    /// var-to-var atoms and bounds derived purely from per-variable ranges
    /// (e.g. by `hull`) are dropped before counting join-like factors.
    /// Equalities pinned by surrounding range atoms can still lose one of
    /// their two edges to minimization — an accepted wobble of a heuristic
    /// that only steers plan choice, never result correctness.
    pub fn selectivity(&self, predicate: &PredicateGraph) -> f64 {
        if predicate.is_trivial() {
            return 1.0;
        }
        if !predicate.is_satisfiable() {
            return 0.0;
        }
        let closure = predicate.closure();
        let mut sel = 1.0;
        for var in predicate.variables() {
            let node = NodeRef::Var(var.clone());
            // Derived bounds: v ≤ hi (edge v→0), v ≥ lo (edge 0→v with
            // weight −lo).
            let hi = closure
                .direct_bound(&node, &NodeRef::Zero)
                .map(|b| b.weight);
            let lo = closure
                .direct_bound(&NodeRef::Zero, &node)
                .map(|b| -b.weight);
            let Some((obs_min, obs_max)) = self.ranges.get(&var) else {
                sel *= DEFAULT_SELECTIVITY;
                continue;
            };
            let span = (*obs_max - *obs_min).to_f64();
            if span <= 0.0 {
                // Degenerate observed range: the predicate either keeps the
                // single value or drops it.
                let v = *obs_min;
                let keeps = hi.is_none_or(|h| v <= h) && lo.is_none_or(|l| v >= l);
                sel *= if keeps { 1.0 } else { 0.0 };
                continue;
            }
            let eff_hi = hi.map_or(*obs_max, |h| h.min(*obs_max));
            let eff_lo = lo.map_or(*obs_min, |l| l.max(*obs_min));
            let frac = ((eff_hi - eff_lo).to_f64() / span).clamp(0.0, 1.0);
            sel *= frac.max(MIN_SELECTIVITY);
        }
        // Variable-to-variable constraints get a fixed factor each — but
        // only *genuine* join constraints: a var-to-var edge that is
        // already implied by the per-variable ranges alone (derived through
        // the zero node, e.g. in hull outputs, or asserted vacuously) adds
        // no selectivity beyond those ranges and must not masquerade as a
        // join predicate.
        // Work on the closure: it contains the complete per-variable range
        // information regardless of which syntactic form (raw, minimized,
        // hull output) the caller passed.
        let mut ranges_only = PredicateGraph::new();
        for (u, v, b) in closure.edges() {
            if *u == NodeRef::Zero || *v == NodeRef::Zero {
                ranges_only.add_edge(u.clone(), v.clone(), b);
            }
        }
        let range_closure = ranges_only.closure();
        let var_var_edges = closure
            .edges()
            .filter(|(u, v, b)| {
                matches!(u, NodeRef::Var(_))
                    && matches!(v, NodeRef::Var(_))
                    && u != v
                    && !range_closure
                        .direct_bound(u, v)
                        .is_some_and(|have| have.implies(*b))
            })
            .count();
        sel *= VAR_VAR_SELECTIVITY.powi(var_var_edges as i32);
        sel.clamp(0.0, 1.0)
    }

    /// Estimated average serialized item size after projecting to the
    /// output set `output` (the cost model's
    /// `size(s) − Σ_{ns ∉ Π} occ(ns)·size(ns)`, computed constructively
    /// from the kept subtrees plus structural ancestor tags).
    pub fn projected_size(&self, output: &std::collections::BTreeSet<Path>) -> f64 {
        // Root item tags.
        let mut size = (2 * self.item_name_len + 5) as f64;
        // Kept subtrees (dropping entries covered by a kept ancestor).
        let kept: Vec<&Path> = output
            .iter()
            .filter(|o| {
                !output
                    .iter()
                    .any(|other| *other != **o && other.is_prefix_of(o))
            })
            .collect();
        for o in &kept {
            if let Some(st) = self.paths.get(*o) {
                size += st.occurrence * st.subtree_size;
            }
        }
        // Structural ancestors of kept paths (tags only).
        let mut ancestors: std::collections::BTreeSet<Path> = std::collections::BTreeSet::new();
        for o in &kept {
            let mut prefix = Path::this();
            for step in &o.steps()[..o.len().saturating_sub(1)] {
                prefix = prefix.child(step.as_str()).expect("validated step");
                ancestors.insert(prefix.clone());
            }
        }
        for a in ancestors {
            if let Some(st) = self.paths.get(&a) {
                size += st.occurrence * (2 * st.name_len + 5) as f64;
            }
        }
        size.min(self.item_size)
    }
}

fn collect(
    node: &Node,
    path: &Path,
    counts: &mut BTreeMap<Path, (u64, u64, usize)>,
    values: &mut BTreeMap<Path, Vec<Decimal>>,
) {
    for child in node.children() {
        let child_path = path.child(child.name()).expect("parsed names are valid");
        let entry = counts
            .entry(child_path.clone())
            .or_insert((0, 0, child.name().len()));
        entry.0 += 1;
        entry.1 += serialized_size(child) as u64;
        if let Ok(v) = child.decimal_value() {
            values.entry(child_path.clone()).or_default().push(v);
        }
        collect(child, &child_path, counts, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_predicate::{Atom, CompOp};
    use std::collections::BTreeSet;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn sample() -> Vec<Node> {
        (0..100)
            .map(|i| {
                Node::elem(
                    "photon",
                    vec![
                        Node::elem(
                            "coord",
                            vec![Node::elem(
                                "cel",
                                vec![
                                    Node::leaf("ra", format!("{}", 100.0 + i as f64)),
                                    Node::leaf("dec", format!("{}", -50.0 + (i % 10) as f64)),
                                ],
                            )],
                        ),
                        Node::leaf("en", format!("{}", 1.0 + (i % 5) as f64 / 10.0)),
                        Node::leaf("det_time", format!("{}", i * 2)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn basic_stats() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        assert_eq!(s.frequency, 50.0);
        assert!(s.item_size > 50.0);
        let en = s.path_stat(&p("en")).unwrap();
        assert_eq!(en.occurrence, 1.0);
        assert!(en.subtree_size > 10.0);
        let (lo, hi) = s.ranges[&p("en")];
        assert_eq!(lo, d("1"));
        assert_eq!(hi, d("1.4"));
    }

    #[test]
    fn increments_track_reference_elements() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        assert!((s.avg_increment(&p("det_time")) - 2.0).abs() < 1e-9);
        // Unobserved path falls back to 1.0.
        assert_eq!(s.avg_increment(&p("nope")), 1.0);
    }

    #[test]
    fn selectivity_uniform_range() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        // ra uniform over [100, 199]; ra >= 149.5 keeps ~half.
        let g = PredicateGraph::from_atoms(&[Atom::var_const(
            p("coord/cel/ra"),
            CompOp::Ge,
            d("149.5"),
        )]);
        let sel = s.selectivity(&g);
        assert!((sel - 0.5).abs() < 0.02, "got {sel}");
        // A range predicate.
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138")),
        ]);
        let sel = s.selectivity(&g);
        assert!((sel - 18.0 / 99.0).abs() < 0.02, "got {sel}");
    }

    #[test]
    fn selectivity_composes_independent_vars() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("149.5")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.2")),
        ]);
        let sel = s.selectivity(&g);
        // ~0.5 × 0.5.
        assert!(sel > 0.15 && sel < 0.35, "got {sel}");
    }

    #[test]
    fn selectivity_edge_cases() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        assert_eq!(s.selectivity(&PredicateGraph::new()), 1.0);
        // Predicate entirely outside the observed range.
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("10"))]);
        assert!(s.selectivity(&g) <= MIN_SELECTIVITY + 1e-12);
        // Unsatisfiable.
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("2")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        assert_eq!(s.selectivity(&g), 0.0);
        // Unknown element → default.
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("mystery"), CompOp::Ge, d("0"))]);
        assert!((s.selectivity(&g) - DEFAULT_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn selectivity_invariant_under_syntactic_form() {
        // Minimized and raw forms of the same predicate estimate alike;
        // vacuous asserted var-var atoms and hull-derived edges don't add
        // spurious join factors.
        let s = StreamStats::from_sample(&sample(), 50.0);
        let raw = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138")),
            // Vacuous: implied by ra ≤ 138 and en ≥ … nothing — actually
            // asserted-but-derivable once bounds exist on both sides.
            Atom::var_const(p("en"), CompOp::Ge, d("1")),
        ]);
        assert!((s.selectivity(&raw) - s.selectivity(&raw.minimize())).abs() < 1e-12);
        // A hull output (built from closures) estimates like the plain
        // bounding-box predicate.
        let a = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("100")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("150")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.2")),
        ]);
        let b = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.1")),
        ]);
        let hull = a.hull(&b);
        let box_pred = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("100")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("150")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.1")),
        ]);
        let (sh, sb) = (s.selectivity(&hull), s.selectivity(&box_pred));
        assert!(
            (sh - sb).abs() < 1e-9,
            "hull {sh} vs plain bounding box {sb} should estimate identically"
        );
    }

    #[test]
    fn var_var_predicates_use_fixed_factor() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        let g = PredicateGraph::from_atoms(&[Atom::var_var(
            p("en"),
            CompOp::Le,
            p("coord/cel/dec"),
            d("100"),
        )]);
        let sel = s.selectivity(&g);
        assert!((sel - VAR_VAR_SELECTIVITY).abs() < 1e-9, "got {sel}");
    }

    #[test]
    fn projected_size_shrinks_with_fewer_paths() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        let all: BTreeSet<Path> = [p("coord"), p("en"), p("det_time")].into_iter().collect();
        let some: BTreeSet<Path> = [p("en")].into_iter().collect();
        let full = s.projected_size(&all);
        let partial = s.projected_size(&some);
        assert!(partial < full);
        assert!(full <= s.item_size + 1.0);
        // Projecting a nested leaf keeps ancestor structure.
        let nested: BTreeSet<Path> = [p("coord/cel/ra")].into_iter().collect();
        let nested_size = s.projected_size(&nested);
        let ra = s.path_stat(&p("coord/cel/ra")).unwrap();
        assert!(nested_size > ra.subtree_size);
    }

    #[test]
    fn projected_size_dedupes_covered_paths() {
        let s = StreamStats::from_sample(&sample(), 50.0);
        let covered: BTreeSet<Path> = [p("coord"), p("coord/cel/ra")].into_iter().collect();
        let just_coord: BTreeSet<Path> = [p("coord")].into_iter().collect();
        assert!((s.projected_size(&covered) - s.projected_size(&just_coord)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn empty_sample_rejected() {
        StreamStats::from_sample(&[], 1.0);
    }

    /// A stream whose leaves carry no numeric values builds an empty
    /// `ranges` table without tripping the `expect("non-empty")` min/max:
    /// value lists are only created for paths that contributed at least
    /// one decimal, so value-less paths simply have no entry — and every
    /// stat query against them falls back instead of panicking.
    #[test]
    fn valueless_streams_build_stats_and_answer_queries() {
        let sample: Vec<Node> = (0..10)
            .map(|i| {
                Node::elem(
                    "msg",
                    vec![
                        Node::leaf("text", format!("hello-{i}")),
                        Node::elem("empty", Vec::new()),
                    ],
                )
            })
            .collect();
        let s = StreamStats::from_sample(&sample, 5.0);
        assert!(
            s.ranges.is_empty(),
            "no numeric leaf, no range: {:?}",
            s.ranges
        );
        assert!(s.path_stat(&p("text")).is_some());
        assert_eq!(s.avg_increment(&p("text")), 1.0);
        // Selectivity over a range-less variable uses the default factor.
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("text"), CompOp::Ge, d("1"))]);
        assert_eq!(s.selectivity(&g), DEFAULT_SELECTIVITY);
    }

    /// Mixed streams range only the numeric paths; queries against the
    /// non-numeric ones still answer.
    #[test]
    fn mixed_value_streams_range_only_numeric_paths() {
        let sample: Vec<Node> = (0..10)
            .map(|i| {
                Node::elem(
                    "msg",
                    vec![
                        Node::leaf("en", format!("{}", 1.0 + i as f64)),
                        Node::leaf("label", format!("tag-{i}")),
                    ],
                )
            })
            .collect();
        let s = StreamStats::from_sample(&sample, 5.0);
        assert!(s.ranges.contains_key(&p("en")));
        assert!(!s.ranges.contains_key(&p("label")));
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1.0")),
            Atom::var_const(p("label"), CompOp::Ge, d("1.0")),
        ]);
        let sel = s.selectivity(&g);
        assert!(sel > 0.0 && sel <= 1.0, "{sel}");
    }
}
