//! Admission control: registering query batches under resource limits.
//!
//! The paper's third experiment caps peer CPU at 10 % and connection
//! bandwidth at 1 Mbit/s, then counts how many of 100 queries each strategy
//! must reject "because no query evaluation plan without causing overload
//! on peers or network connections could be found".

use crate::strategy::Strategy;
use crate::system::{StreamGlobe, SystemError};

/// Outcome of registering a batch of queries under admission control.
#[derive(Debug, Clone, Default)]
pub struct AdmissionReport {
    /// Ids of accepted queries.
    pub accepted: Vec<String>,
    /// Ids of rejected queries.
    pub rejected: Vec<String>,
    /// Ids that failed for non-admission reasons (compile errors, …).
    pub errored: Vec<(String, String)>,
}

impl AdmissionReport {
    /// Number of accepted queries.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }

    /// Number of rejected queries.
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }
}

/// Helper applying capacity caps and batch registration.
pub struct AdmissionControl;

impl AdmissionControl {
    /// Caps every peer's capacity at `cpu_fraction` of its *original*
    /// capacity and every connection at `bandwidth_kbps` (the paper: 10 %
    /// CPU and 1 Mbit/s). Idempotent: the first call records the uncapped
    /// capacities as a baseline, and later calls re-apply against that
    /// baseline instead of compounding (a second `apply_caps(s, 0.10, …)`
    /// used to silently tighten the cap to 1 %).
    pub fn apply_caps(system: &mut StreamGlobe, cpu_fraction: f64, bandwidth_kbps: f64) {
        system.apply_capacity_caps(cpu_fraction, bandwidth_kbps);
    }

    /// Registers a batch of `(id, query text, peer)` subscriptions with
    /// admission control enabled, counting rejections.
    pub fn register_batch(
        system: &mut StreamGlobe,
        queries: &[(String, String, String)],
        strategy: Strategy,
    ) -> AdmissionReport {
        let mut report = AdmissionReport::default();
        for (id, text, peer) in queries {
            match system.register_query_opts(id.clone(), text, peer, strategy, true) {
                Ok(_) => report.accepted.push(id.clone()),
                Err(SystemError::Subscribe(crate::subscribe::SubscribeError::Overload)) => {
                    report.rejected.push(id.clone());
                }
                Err(other) => report.errored.push((id.clone(), other.to_string())),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::StreamGlobe;
    use dss_network::grid_topology;
    use dss_xml::{Decimal, Node};

    fn items(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| {
                let mut item = Node::empty("photon");
                item.push_child(Node::leaf(
                    "det_time",
                    Decimal::new(i as i128 + 1, 0).to_string(),
                ));
                item.push_child(Node::leaf(
                    "en",
                    Decimal::new(i as i128 * 7 + 3, 1).to_string(),
                ));
                item
            })
            .collect()
    }

    fn capped_system(times: usize) -> StreamGlobe {
        let mut sys = StreamGlobe::new(grid_topology(2, 2));
        sys.register_stream("photons", "SP0", items(16), 50.0)
            .unwrap();
        for _ in 0..times {
            AdmissionControl::apply_caps(&mut sys, 0.10, 1_000.0);
        }
        sys
    }

    /// `apply_caps` used to multiply capacities in place, so calling it
    /// twice silently tightened a 10 % cap to 1 %. Caps are now absolute
    /// against the pre-cap baseline.
    #[test]
    fn apply_caps_twice_equals_once() {
        let once = capped_system(1);
        let twice = capped_system(2);
        for v in 0..once.topology().peer_count() {
            assert_eq!(
                once.topology().peer(v).capacity,
                twice.topology().peer(v).capacity,
                "peer {v} capacity must not compound"
            );
        }
        for e in 0..once.topology().edge_count() {
            assert_eq!(
                once.topology().edge(e).bandwidth_kbps,
                twice.topology().edge(e).bandwidth_kbps
            );
        }
    }

    /// The whole admission outcome — not just the raw capacities — must be
    /// unaffected by a repeated cap application.
    #[test]
    fn double_cap_yields_identical_admission_report() {
        let queries: Vec<(String, String, String)> = (0..6)
            .map(|i| {
                let lo = i as f64 * 0.3;
                (
                    format!("q{i}"),
                    format!(
                        r#"<r>{{ for $p in stream("photons")/photons/photon
                           where $p/en >= {lo:.1} return <out>{{ $p/en }}</out> }}</r>"#
                    ),
                    "SP3".to_string(),
                )
            })
            .collect();
        let mut once = capped_system(1);
        let mut twice = capped_system(2);
        let report_once =
            AdmissionControl::register_batch(&mut once, &queries, Strategy::StreamSharing);
        let report_twice =
            AdmissionControl::register_batch(&mut twice, &queries, Strategy::StreamSharing);
        assert_eq!(report_once.accepted, report_twice.accepted);
        assert_eq!(report_once.rejected, report_twice.rejected);
        assert!(report_once.errored.is_empty(), "{:?}", report_once.errored);
    }
}
