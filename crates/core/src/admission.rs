//! Admission control: registering query batches under resource limits.
//!
//! The paper's third experiment caps peer CPU at 10 % and connection
//! bandwidth at 1 Mbit/s, then counts how many of 100 queries each strategy
//! must reject "because no query evaluation plan without causing overload
//! on peers or network connections could be found".

use crate::strategy::Strategy;
use crate::system::{StreamGlobe, SystemError};

/// Outcome of registering a batch of queries under admission control.
#[derive(Debug, Clone, Default)]
pub struct AdmissionReport {
    /// Ids of accepted queries.
    pub accepted: Vec<String>,
    /// Ids of rejected queries.
    pub rejected: Vec<String>,
    /// Ids that failed for non-admission reasons (compile errors, …).
    pub errored: Vec<(String, String)>,
}

impl AdmissionReport {
    /// Number of accepted queries.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }

    /// Number of rejected queries.
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }
}

/// Helper applying capacity caps and batch registration.
pub struct AdmissionControl;

impl AdmissionControl {
    /// Caps every peer's capacity at `cpu_fraction` of its current value
    /// and every connection at `bandwidth_kbps` (the paper: 10 % CPU and
    /// 1 Mbit/s).
    pub fn apply_caps(system: &mut StreamGlobe, cpu_fraction: f64, bandwidth_kbps: f64) {
        let topo = system.topology_mut();
        for v in 0..topo.peer_count() {
            topo.peer_mut(v).capacity *= cpu_fraction;
        }
        for e in 0..topo.edge_count() {
            topo.edge_mut(e).bandwidth_kbps = bandwidth_kbps;
        }
    }

    /// Registers a batch of `(id, query text, peer)` subscriptions with
    /// admission control enabled, counting rejections.
    pub fn register_batch(
        system: &mut StreamGlobe,
        queries: &[(String, String, String)],
        strategy: Strategy,
    ) -> AdmissionReport {
        let mut report = AdmissionReport::default();
        for (id, text, peer) in queries {
            match system.register_query_opts(id.clone(), text, peer, strategy, true) {
                Ok(_) => report.accepted.push(id.clone()),
                Err(SystemError::Subscribe(crate::subscribe::SubscribeError::Overload)) => {
                    report.rejected.push(id.clone());
                }
                Err(other) => report.errored.push((id.clone(), other.to_string())),
            }
        }
        report
    }
}
