//! The three registration strategies compared in the paper's evaluation
//! (Section 4).
//!
//! * **Data shipping** — "simply transmits the whole input data stream for
//!   each query from the data source to the target super-peer using a
//!   shortest path in the network. The whole query evaluation takes place
//!   at the target super-peer."
//! * **Query shipping** — "evaluates each query completely at the
//!   super-peer that the data source is registered at. The query result is
//!   transmitted to the target peer again using a shortest path."
//! * **Stream sharing** — the paper's optimization: Algorithm 1.

use std::fmt;

use dss_network::{shortest_path, NodeId};
use dss_wxquery::CompiledQuery;

use crate::cost::StreamEstimate;
use crate::plan::{
    assemble_plan, flow_op_base_load, full_chain_ops, Plan, PlanPart, UseAccumulator,
};
use crate::state::NetworkState;
use crate::subscribe::{subscribe_with, SearchOrder, SubscribeError};

/// Registration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    DataShipping,
    QueryShipping,
    StreamSharing,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [
        Strategy::DataShipping,
        Strategy::QueryShipping,
        Strategy::StreamSharing,
    ];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::DataShipping => "data shipping",
            Strategy::QueryShipping => "query shipping",
            Strategy::StreamSharing => "stream sharing",
        };
        write!(f, "{s}")
    }
}

/// Plans a query under the chosen strategy. `v_q` is the subscriber's
/// super-peer, `subscriber` the registering peer itself.
pub fn plan_query(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    strategy: Strategy,
    require_feasible: bool,
) -> Result<Plan, SubscribeError> {
    plan_query_with(
        state,
        query,
        v_q,
        subscriber,
        strategy,
        require_feasible,
        false,
    )
}

/// [`plan_query`] with stream widening enabled for the sharing strategy.
#[allow(clippy::too_many_arguments)]
pub fn plan_query_with(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    strategy: Strategy,
    require_feasible: bool,
    widening: bool,
) -> Result<Plan, SubscribeError> {
    match strategy {
        Strategy::StreamSharing => subscribe_with(
            state,
            query,
            v_q,
            subscriber,
            SearchOrder::Bfs,
            require_feasible,
            widening,
        )
        .map(|(plan, _)| plan),
        Strategy::DataShipping => fixed_plan(
            state,
            query,
            v_q,
            subscriber,
            Placement::AtSubscriber,
            require_feasible,
        ),
        Strategy::QueryShipping => fixed_plan(
            state,
            query,
            v_q,
            subscriber,
            Placement::AtSource,
            require_feasible,
        ),
    }
}

enum Placement {
    /// Data shipping: raw stream to `v_q`, evaluate there.
    AtSubscriber,
    /// Query shipping: evaluate at the source's super-peer, ship the result.
    AtSource,
}

fn fixed_plan(
    state: &NetworkState,
    query: &CompiledQuery,
    v_q: NodeId,
    subscriber: NodeId,
    placement: Placement,
    require_feasible: bool,
) -> Result<Plan, SubscribeError> {
    let mut parts = Vec::new();
    let mut extra_post_ops = Vec::new();
    for wanted in query.properties.inputs() {
        let stream = wanted.stream();
        let &source_flow = state
            .source_flows
            .get(stream)
            .ok_or_else(|| SubscribeError::UnknownStream(stream.to_string()))?;
        let v_b = state.deployment.flow(source_flow).target_node();
        let stats = state
            .stats(stream)
            .ok_or_else(|| SubscribeError::UnknownStream(stream.to_string()))?;
        // The stream exists but no live route reaches it: that is
        // `Unreachable`, not `UnknownStream`.
        let route = shortest_path(&state.topo, v_b, v_q)
            .ok_or_else(|| SubscribeError::Unreachable(stream.to_string()))?;
        let (ops, estimate) = match placement {
            Placement::AtSubscriber => {
                // Ship the raw stream; evaluate in post-processing.
                extra_post_ops.extend(full_chain_ops(query));
                (
                    Vec::new(),
                    StreamEstimate {
                        item_size: stats.item_size,
                        frequency: stats.frequency,
                    },
                )
            }
            Placement::AtSource => (
                full_chain_ops(query),
                crate::cost::estimate_chain(stats, wanted.operators()),
            ),
        };
        // Cost the part exactly like generate_plan_part does.
        let mut uses = UseAccumulator::new();
        uses.add_route(state, &route, estimate.kbps());
        let bload: f64 = ops.iter().map(flow_op_base_load).sum();
        uses.add_node_ops(
            state,
            v_b,
            bload,
            state.flow_estimate(source_flow).frequency,
        );
        let (traffic, load) = uses.cost_split(state);
        let cost = traffic + load;
        let feasible = uses.feasible();
        parts.push(PlanPart {
            stream: stream.to_string(),
            tap_flow: source_flow,
            tap_node: v_b,
            ops,
            route,
            estimate,
            widen: None,
            cost,
            traffic,
            load,
            feasible,
        });
    }
    let plan = assemble_plan(state, query, parts, extra_post_ops, v_q, subscriber);
    if require_feasible && !plan.feasible {
        return Err(SubscribeError::Overload);
    }
    Ok(plan)
}
