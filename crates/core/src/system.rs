//! The `StreamGlobe` façade: stream registration, query registration under
//! a strategy, plan installation, and simulation.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dss_network::{
    sim, ConfigError, Deployment, FlowId, FlowInput, FlowOp, GroupKey, NodeId, PeerKind, SimConfig,
    SimOutcome, StreamFlow, Topology,
};
use dss_properties::Properties;
use dss_wxquery::{compile_query, CompiledQuery, QueryError};
use dss_xml::Node;

use crate::cost::{CostParams, StreamEstimate};
use crate::plan::{flow_op_base_load, Plan};
use crate::state::NetworkState;
use crate::stats::StreamStats;
use crate::strategy::{plan_query_with, Strategy};
use crate::subscribe::SubscribeError;

/// Errors surfaced by the system façade.
#[derive(Debug)]
pub enum SystemError {
    /// The WXQuery text failed to parse/compile.
    Query(QueryError),
    /// Planning failed (unknown stream, admission rejection).
    Subscribe(SubscribeError),
    /// An unknown peer name was used.
    UnknownPeer(String),
    /// A stream with this name is already registered.
    DuplicateStream(String),
    /// No query with this id is registered.
    UnknownQuery(String),
    /// An invalid simulation/runtime configuration.
    Config(ConfigError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Query(e) => write!(f, "{e}"),
            SystemError::Subscribe(e) => write!(f, "{e}"),
            SystemError::UnknownPeer(p) => write!(f, "unknown peer {p:?}"),
            SystemError::DuplicateStream(s) => write!(f, "stream {s:?} already registered"),
            SystemError::UnknownQuery(q) => write!(f, "no registered query with id {q:?}"),
            SystemError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<QueryError> for SystemError {
    fn from(e: QueryError) -> SystemError {
        SystemError::Query(e)
    }
}

impl From<SubscribeError> for SystemError {
    fn from(e: SubscribeError) -> SystemError {
        SystemError::Subscribe(e)
    }
}

impl From<ConfigError> for SystemError {
    fn from(e: ConfigError) -> SystemError {
        SystemError::Config(e)
    }
}

/// Result of registering a continuous query.
#[derive(Debug)]
pub struct Registration {
    /// Caller-chosen query id.
    pub query_id: String,
    /// The installed evaluation plan.
    pub plan: Plan,
    /// Wall-clock time from the beginning of registration until the plan
    /// was installed (Table 1's "query registration time").
    pub elapsed: Duration,
    /// Id of the flow delivering the final (restructured) result.
    pub delivery_flow: dss_network::FlowId,
    /// `true` if the plan reuses a non-original stream.
    pub reused_derived_stream: bool,
}

/// One registered source stream.
#[derive(Debug, Clone)]
pub(crate) struct SourceInfo {
    pub(crate) items: Vec<Node>,
}

/// What it takes to narrow one widened flow back when the query that
/// widened it unregisters: the flow's pre-widening shape, the restore
/// patches spliced into its consumers, and the exact charges to reverse.
#[derive(Debug, Clone)]
pub(crate) struct WidenUndo {
    /// The widened flow.
    flow: FlowId,
    /// Properties this widening installed — narrowing only applies while
    /// the flow still carries exactly these (a later, stacked widening
    /// supersedes this undo).
    widened: Properties,
    prev_ops: Vec<FlowOp>,
    prev_properties: Option<Properties>,
    prev_label: String,
    prev_estimate: StreamEstimate,
    /// Input frequency the consumer patches were charged with.
    widened_frequency: f64,
    /// Extra rate charged over the flow's route at widening time.
    delta_estimate: StreamEstimate,
    route: Vec<NodeId>,
    /// Consumers that got a (non-empty) restore patch spliced in front of
    /// their operators.
    patched_children: Vec<(FlowId, Vec<FlowOp>)>,
}

/// Book-keeping for one installed query (enables unregistration and
/// failover re-registration).
#[derive(Debug, Clone)]
pub(crate) struct Installed {
    pub(crate) query_id: String,
    /// The original WXQuery text and registration site, kept so the query
    /// can be re-planned from scratch after a peer failure.
    pub(crate) text: String,
    pub(crate) at_peer: String,
    pub(crate) strategy: Strategy,
    /// The post-processing/delivery flow; transport flows are found by
    /// walking parents during retirement.
    pub(crate) delivery_flow: FlowId,
    /// Widenings this query performed, most recent last.
    widens: Vec<WidenUndo>,
}

/// The data-stream-sharing system over one super-peer network.
#[derive(Debug)]
pub struct StreamGlobe {
    pub(crate) state: NetworkState,
    pub(crate) sources: BTreeMap<String, SourceInfo>,
    pub(crate) registrations: Vec<Installed>,
    /// Stream widening (the paper's ongoing-work extension) enabled?
    widening: bool,
    /// Per-peer capacities as they were before the first capacity cap was
    /// applied. Caps are expressed against this baseline so re-applying a
    /// cap is idempotent instead of compounding.
    capacity_baseline: Option<Vec<f64>>,
}

impl StreamGlobe {
    /// Creates a system over a topology with default cost parameters.
    pub fn new(topo: Topology) -> StreamGlobe {
        StreamGlobe::with_params(topo, CostParams::default())
    }

    /// Creates a system with explicit cost parameters.
    pub fn with_params(topo: Topology, params: CostParams) -> StreamGlobe {
        StreamGlobe {
            state: NetworkState::new(topo, params),
            sources: BTreeMap::new(),
            registrations: Vec::new(),
            widening: false,
            capacity_baseline: None,
        }
    }

    /// Enables or disables stream *widening*: non-matching streams may be
    /// loosened in place (predicate hull, projection union) to serve a new
    /// subscription, with every existing consumer patched to re-apply its
    /// original narrowing operators. Off by default — the paper presents it
    /// as ongoing work beyond plain stream sharing.
    pub fn set_widening(&mut self, on: bool) {
        self.widening = on;
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.state.topo
    }

    /// Mutable topology access (capacity caps for the admission
    /// experiment). Only peer/edge parameters may be changed, not the
    /// graph structure.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.state.topo
    }

    /// Caps every peer's capacity at `cpu_fraction` of its *original*
    /// (pre-cap) capacity and every connection at `bandwidth_kbps`. The
    /// baseline is recorded on first use, so calling this again with the
    /// same arguments is a no-op rather than compounding the cap.
    pub fn apply_capacity_caps(&mut self, cpu_fraction: f64, bandwidth_kbps: f64) {
        let baseline = self.capacity_baseline.get_or_insert_with(|| {
            (0..self.state.topo.peer_count())
                .map(|v| self.state.topo.peer(v).capacity)
                .collect()
        });
        for (v, &base) in baseline.iter().enumerate() {
            self.state.topo.peer_mut(v).capacity = base * cpu_fraction;
        }
        for e in 0..self.state.topo.edge_count() {
            self.state.topo.edge_mut(e).bandwidth_kbps = bandwidth_kbps;
        }
    }

    /// The deployed dataflow graph.
    pub fn deployment(&self) -> &Deployment {
        &self.state.deployment
    }

    /// The planner state (estimates, usage book-keeping).
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Registers a data stream produced by `source_peer`, with `items` as
    /// both the statistics sample and the simulation payload, arriving at
    /// `frequency` items/second.
    pub fn register_stream(
        &mut self,
        name: impl Into<String>,
        source_peer: &str,
        items: Vec<Node>,
        frequency: f64,
    ) -> Result<(), SystemError> {
        let name = name.into();
        if self.sources.contains_key(&name) {
            return Err(SystemError::DuplicateStream(name));
        }
        let peer = self.node_by_name(source_peer)?;
        let sp = self.super_peer_of(peer)?;
        let stats = StreamStats::from_sample(&items, frequency);
        let estimate = StreamEstimate {
            item_size: stats.item_size,
            frequency,
        };
        let route = if peer == sp {
            vec![peer]
        } else {
            vec![peer, sp]
        };
        let flow = self.state.deployment.add_flow(StreamFlow {
            label: format!("{name}@{}", self.state.topo.peer(sp).name),
            input: FlowInput::Source {
                stream: name.clone(),
            },
            processing_node: peer,
            ops: Vec::new(),
            route: route.clone(),
            properties: Some(Properties::original(name.clone())),
            retired: false,
        });
        self.state.flow_estimates.push(estimate);
        self.state
            .flow_charges
            .push(crate::state::FlowCharge::default());
        self.state.charge_route_for(flow, &route, estimate);
        self.state.stream_stats.insert(name.clone(), stats);
        self.state.source_flows.insert(name.clone(), flow);
        self.sources.insert(name, SourceInfo { items });
        Ok(())
    }

    /// Registers a continuous WXQuery subscription at `at_peer` under the
    /// given strategy, installing the resulting plan.
    pub fn register_query(
        &mut self,
        query_id: impl Into<String>,
        text: &str,
        at_peer: &str,
        strategy: Strategy,
    ) -> Result<Registration, SystemError> {
        self.register_query_opts(query_id, text, at_peer, strategy, false)
    }

    /// [`register_query`](Self::register_query) with admission control:
    /// when `require_feasible` is set, registration fails instead of
    /// overloading any peer or connection.
    pub fn register_query_opts(
        &mut self,
        query_id: impl Into<String>,
        text: &str,
        at_peer: &str,
        strategy: Strategy,
        require_feasible: bool,
    ) -> Result<Registration, SystemError> {
        let query_id = query_id.into();
        let start = Instant::now();
        // The whole registration — search, plan choice, installation — is
        // one trace span; the per-input `subscribe_input` search spans
        // nest under it.
        let _reg_span = dss_telemetry::span("register_query", || {
            [
                ("query", dss_telemetry::Value::from(query_id.as_str())),
                ("strategy", format!("{strategy:?}").into()),
                ("peer", at_peer.into()),
            ]
        });
        let compiled = compile_query(text)?;
        let subscriber = self.node_by_name(at_peer)?;
        let v_q = self.super_peer_of(subscriber)?;
        let planned = plan_query_with(
            &self.state,
            &compiled,
            v_q,
            subscriber,
            strategy,
            require_feasible,
            self.widening,
        );
        let plan = match planned {
            Ok(plan) => plan,
            Err(e) => {
                dss_telemetry::add_field("outcome", || format!("error: {e}").into());
                return Err(e.into());
            }
        };
        dss_telemetry::add_field("outcome", || "installed".into());
        dss_telemetry::add_field("cost", || plan.total_cost.into());
        dss_telemetry::add_field("post_cost", || plan.post_cost.into());
        dss_telemetry::add_field("feasible", || plan.feasible.into());
        let registration = self.install(query_id, text, at_peer, strategy, &compiled, plan, start);
        dss_telemetry::add_field("elapsed_us", || {
            (registration.elapsed.as_micros() as u64).into()
        });
        Ok(registration)
    }

    /// Installs a planned query: creates the transport flow(s) and the
    /// post-processing/delivery flow, and charges the estimated usage.
    #[allow(clippy::too_many_arguments)]
    fn install(
        &mut self,
        query_id: String,
        text: &str,
        at_peer: &str,
        strategy: Strategy,
        compiled: &CompiledQuery,
        plan: Plan,
        start: Instant,
    ) -> Registration {
        let mut reused_derived = false;
        let mut upstream = Vec::new();
        let mut widens = Vec::new();
        for part in &plan.parts {
            // Widening: loosen the tapped flow in place and patch its
            // existing consumers before the new subscription taps it.
            if let Some(widen) = &part.widen {
                reused_derived = true;
                let widened_freq = widen.widened_estimate.frequency;
                {
                    // Snapshot the pre-widening shape so unregistering this
                    // query can narrow the stream back.
                    let flow = self.state.deployment.flow(widen.flow);
                    widens.push(WidenUndo {
                        flow: widen.flow,
                        widened: Properties::single(widen.widened.clone()),
                        prev_ops: flow.ops.clone(),
                        prev_properties: flow.properties.clone(),
                        prev_label: flow.label.clone(),
                        prev_estimate: self.state.flow_estimates[widen.flow],
                        widened_frequency: widened_freq,
                        delta_estimate: widen.delta_estimate,
                        route: flow.route.clone(),
                        patched_children: widen
                            .child_patches
                            .iter()
                            .filter(|(_, patch)| !patch.is_empty())
                            .cloned()
                            .collect(),
                    });
                }
                for (child, patch) in &widen.child_patches {
                    if patch.is_empty() {
                        continue;
                    }
                    let node = self.state.deployment.flow(*child).processing_node;
                    let bload: f64 = patch.iter().map(flow_op_base_load).sum();
                    {
                        let mut flow = self.state.deployment.flow_mut(*child);
                        flow.ops.splice(0..0, patch.iter().cloned());
                    }
                    self.state
                        .charge_node_for(*child, node, bload, widened_freq);
                }
                // Publish the planner's per-child state-handoff choice: the
                // live runtime rebuilds marked children with delta
                // migration instead of dropping their open windows. Setting
                // `false` clears a stale mark from an earlier widening.
                for d in &widen.deltas {
                    self.state.deployment.set_handoff(d.child, d.migrate);
                }
                let route = self.state.deployment.flow(widen.flow).route.clone();
                {
                    let mut flow = self.state.deployment.flow_mut(widen.flow);
                    flow.ops = widen.new_flow_ops.clone();
                    flow.properties = Some(Properties::single(widen.widened.clone()));
                    flow.label.push_str("+widened");
                }
                self.state.flow_estimates[widen.flow] = widen.widened_estimate;
                self.state
                    .charge_route_for(widen.flow, &route, widen.delta_estimate);
            }
            let parent = part.tap_flow;
            if !self
                .state
                .deployment
                .flow(parent)
                .properties
                .as_ref()
                .is_some_and(Properties::is_original)
            {
                reused_derived = true;
            }
            if part.ops.is_empty() && part.route.len() == 1 {
                // Nothing to install: the reused stream already ends (or
                // passes) exactly where post-processing runs.
                upstream.push(parent);
                continue;
            }
            // Transported stream properties: the reused stream's when we
            // forward verbatim, otherwise the subscription's input chain.
            // INVARIANT: every planner path (residual sharing, widening,
            // query shipping) builds `part.ops` to transform the tapped
            // stream into exactly the subscription's input stream, so
            // non-empty ops ⇒ the produced content matches the
            // subscription's chain. A future plan kind that installs a
            // partial chain must carry its own properties instead.
            let properties = if part.ops.is_empty() {
                self.state.deployment.flow(parent).properties.clone()
            } else {
                compiled
                    .properties
                    .input_for(&part.stream)
                    .map(|ip| Properties::single(ip.clone()))
            };
            let flow = self.state.deployment.add_flow(StreamFlow {
                label: format!("{query_id}/{}", part.stream),
                input: FlowInput::Tap { parent },
                processing_node: part.tap_node,
                ops: part.ops.clone(),
                route: part.route.clone(),
                properties,
                retired: false,
            });
            self.state.flow_estimates.push(part.estimate);
            self.state
                .flow_charges
                .push(crate::state::FlowCharge::default());
            self.state
                .charge_route_for(flow, &part.route, part.estimate);
            if !part.ops.is_empty() {
                let input_freq = self.state.flow_estimate(parent).frequency;
                // Route through the sharing book: operators an earlier flow
                // already runs at this tap (same input, mergeable prefix)
                // are not charged again — the fused executor runs them once.
                self.state.charge_shared_ops_for(
                    flow,
                    part.tap_node,
                    GroupKey::Tap(parent),
                    &part.ops,
                    input_freq,
                );
            }
            upstream.push(flow);
        }
        // Post-processing + delivery flow. Multi-input combination would
        // need a join here; the flat fragment guarantees a single input.
        let parent = upstream[0];
        let delivery_flow = self.state.deployment.add_flow(StreamFlow {
            label: format!("{query_id}/result"),
            input: FlowInput::Tap { parent },
            processing_node: plan.post_node,
            ops: plan.post_ops.clone(),
            route: plan.deliver_route.clone(),
            properties: None,
            retired: false,
        });
        self.state.flow_estimates.push(plan.result_estimate);
        self.state
            .flow_charges
            .push(crate::state::FlowCharge::default());
        self.state
            .charge_route_for(delivery_flow, &plan.deliver_route, plan.result_estimate);
        let input_freq = self.state.flow_estimate(parent).frequency;
        self.state.charge_shared_ops_for(
            delivery_flow,
            plan.post_node,
            GroupKey::Tap(parent),
            &plan.post_ops,
            input_freq,
        );

        self.registrations.push(Installed {
            query_id: query_id.clone(),
            text: text.to_string(),
            at_peer: at_peer.to_string(),
            strategy,
            delivery_flow,
            widens,
        });
        Registration {
            query_id,
            plan,
            elapsed: start.elapsed(),
            delivery_flow,
            reused_derived_stream: reused_derived,
        }
    }

    /// Runs the simulator over all registered streams and flows.
    pub fn run_simulation(&self, cfg: SimConfig) -> SimOutcome {
        let sources: BTreeMap<String, Vec<Node>> = self
            .sources
            .iter()
            .map(|(k, v)| (k.clone(), v.items.clone()))
            .collect();
        sim::run(&self.state.topo, &self.state.deployment, &sources, cfg)
    }

    /// Number of currently registered queries.
    pub fn query_count(&self) -> usize {
        self.registrations.len()
    }

    /// The sample items of one registered source stream. Networked
    /// deployments replay these from each hosting process's local replica
    /// instead of shipping them over the control plane.
    pub fn source_items(&self, name: &str) -> Option<&[Node]> {
        self.sources.get(name).map(|s| s.items.as_slice())
    }

    /// Names of all registered source streams, in registration-name order.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.keys().map(String::as_str)
    }

    /// Installed subscriptions as `(query_id, delivery_flow)`, in
    /// registration order — the map a deployment server needs to route a
    /// delivery flow's output back to its subscriber.
    pub fn registered_queries(&self) -> impl Iterator<Item = (&str, FlowId)> {
        self.registrations
            .iter()
            .map(|r| (r.query_id.as_str(), r.delivery_flow))
    }

    /// Unregisters a continuous query: its delivery flow is retired, its
    /// resource charges reversed, and any transport flow left without
    /// consumers is retired transitively (a stream kept alive by *other*
    /// subscribers keeps flowing). Streams this query widened are narrowed
    /// back to their pre-widening shape when it was their last widening
    /// consumer: the surviving consumers' restore patches come out, and the
    /// widening's extra bandwidth/work charges are reversed. A stream a
    /// *later* subscription relies on in its widened form stays widened.
    pub fn unregister_query(&mut self, query_id: &str) -> Result<(), SystemError> {
        let idx = self
            .registrations
            .iter()
            .position(|r| r.query_id == query_id)
            .ok_or_else(|| SystemError::UnknownQuery(query_id.to_string()))?;
        let installed = self.registrations.remove(idx);
        // Retire the delivery flow (it never has children).
        let mut retire_frontier = vec![installed.delivery_flow];
        while let Some(flow) = retire_frontier.pop() {
            let parent = match &self.state.deployment.flow(flow).input {
                dss_network::FlowInput::Tap { parent } => Some(*parent),
                dss_network::FlowInput::Source { .. } => None,
            };
            self.state.deployment.retire(flow);
            self.state.uncharge_flow(flow);
            // Walk upward: a parent transport created by *some* query is
            // retired once nothing taps it anymore. Source flows and flows
            // still delivering to another query stay.
            if let Some(p) = parent {
                let is_source = matches!(
                    self.state.deployment.flow(p).input,
                    dss_network::FlowInput::Source { .. }
                );
                // No active consumers left ⇒ the stream is dead. (Any flow
                // still serving another query has that query's delivery or
                // transport flow among its children.)
                if !is_source && self.state.deployment.children_of(p).is_empty() {
                    retire_frontier.push(p);
                }
            }
        }
        // Narrow widened streams back, most recent widening first.
        for undo in installed.widens.iter().rev() {
            self.narrow_back(undo);
        }
        Ok(())
    }

    /// Reverses one widening if it is still the flow's current shape and
    /// every surviving consumer is one of the patched originals. Skips
    /// silently otherwise — the widened width then remains as shareable
    /// slack (e.g. a later query subscribed to the widened stream itself,
    /// or a stacked widening superseded this one).
    fn narrow_back(&mut self, undo: &WidenUndo) {
        let flow = self.state.deployment.flow(undo.flow);
        if flow.retired || flow.properties.as_ref() != Some(&undo.widened) {
            return;
        }
        let active_children = self.state.deployment.children_of(undo.flow);
        let patched = |c: FlowId| undo.patched_children.iter().find(|(pc, _)| *pc == c);
        // Every surviving consumer must be a patched original whose restore
        // patch still sits in front of its operators.
        for &child in &active_children {
            let Some((_, patch)) = patched(child) else {
                return;
            };
            let ops = &self.state.deployment.flow(child).ops;
            if ops.len() < patch.len() || &ops[..patch.len()] != patch.as_slice() {
                return;
            }
        }
        for &child in &active_children {
            let (_, patch) = patched(child).expect("checked above");
            let node = self.state.deployment.flow(child).processing_node;
            let bload: f64 = patch.iter().map(flow_op_base_load).sum();
            self.state
                .deployment
                .flow_mut(child)
                .ops
                .drain(..patch.len());
            self.state
                .discharge_node_for(child, node, bload, undo.widened_frequency);
            // Dropping the patch restores the child's input byte-identical,
            // so narrowing back is always a loss-free handoff: keep the
            // child's open windows across the rebuild.
            self.state.deployment.set_handoff(child, true);
        }
        {
            let mut flow = self.state.deployment.flow_mut(undo.flow);
            flow.ops = undo.prev_ops.clone();
            flow.properties = undo.prev_properties.clone();
            flow.label = undo.prev_label.clone();
        }
        self.state.flow_estimates[undo.flow] = undo.prev_estimate;
        self.state
            .discharge_route_for(undo.flow, &undo.route, undo.delta_estimate);
    }

    fn node_by_name(&self, name: &str) -> Result<NodeId, SystemError> {
        self.state
            .topo
            .node(name)
            .ok_or_else(|| SystemError::UnknownPeer(name.to_string()))
    }

    /// The super-peer a peer is attached to: the peer itself for
    /// super-peers, the first *live* super-peer neighbor for thin-peers.
    pub(crate) fn super_peer_of(&self, peer: NodeId) -> Result<NodeId, SystemError> {
        if self.state.topo.peer(peer).kind == PeerKind::SuperPeer {
            return Ok(peer);
        }
        self.state
            .topo
            .neighbors(peer)
            .find(|&n| {
                self.state.topo.peer(n).kind == PeerKind::SuperPeer && self.state.topo.peer(n).up
            })
            .ok_or_else(|| SystemError::UnknownPeer(self.state.topo.peer(peer).name.clone()))
    }
}
