//! Coverage for the planner's failure and reversal paths: planning against
//! an unreachable stream must fail with [`SubscribeError::Unreachable`]
//! (never a panic or a silently broken plan), and both unregistration and
//! failed registrations must leave the resource charge tables *exactly* at
//! their pre-subscription state — the cost model's availability estimates
//! feed every later plan, so any drift compounds.

use dss_core::{Strategy, StreamGlobe, SubscribeError, SystemError};
use dss_network::{grid_topology, NodeId};
use dss_xml::{Decimal, Node};

fn items(n: usize) -> Vec<Node> {
    (0..n)
        .map(|i| {
            let mut item = Node::empty("photon");
            item.push_child(Node::leaf(
                "det_time",
                Decimal::new(i as i128 + 1, 0).to_string(),
            ));
            item.push_child(Node::leaf(
                "en",
                Decimal::new(i as i128 * 7 + 3, 1).to_string(),
            ));
            item
        })
        .collect()
}

const QUERY: &str = r#"<r>{ for $p in stream("photons")/photons/photon
    where $p/en >= 0.5 return <out>{ $p/en }</out> }</r>"#;

fn system_with_stream() -> StreamGlobe {
    let mut sys = StreamGlobe::new(grid_topology(2, 2));
    sys.register_stream("photons", "SP0", items(8), 2.0)
        .unwrap();
    sys
}

fn assert_near(actual: &[f64], expected: &[f64], what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!((a - e).abs() < 1e-9, "{what}: index {i} left {a} vs {e}");
    }
}

fn node_named(sys: &StreamGlobe, name: &str) -> NodeId {
    (0..sys.topology().peer_count())
        .find(|&n| sys.topology().peer(n).name == name)
        .unwrap_or_else(|| panic!("no peer named {name}"))
}

#[test]
fn retired_source_flow_is_unreachable() {
    let mut sys = system_with_stream();
    // Crashing the source's super-peer retires the source flow itself.
    let sp0 = node_named(&sys, "SP0");
    sys.replan_after_peer_failure(sp0, 0);
    let err = sys
        .register_query("q", QUERY, "SP3", Strategy::StreamSharing)
        .unwrap_err();
    assert!(
        matches!(
            &err,
            SystemError::Subscribe(SubscribeError::Unreachable(s)) if s == "photons"
        ),
        "expected Unreachable(photons), got {err:?}"
    );
}

#[test]
fn severed_routes_are_unreachable() {
    let mut sys = system_with_stream();
    // Downing both relays disconnects SP3 from the source at SP0 on the
    // 2×2 grid; the source flow itself is still alive.
    for name in ["SP1", "SP2"] {
        let id = node_named(&sys, name);
        sys.topology_mut().set_peer_up(id, false);
    }
    for strategy in Strategy::ALL {
        let err = sys.register_query("q", QUERY, "SP3", strategy).unwrap_err();
        assert!(
            matches!(
                &err,
                SystemError::Subscribe(SubscribeError::Unreachable(s)) if s == "photons"
            ),
            "{strategy:?}: expected Unreachable(photons), got {err:?}"
        );
    }
}

#[test]
fn failed_registration_leaves_charges_untouched() {
    let mut sys = system_with_stream();
    for name in ["SP1", "SP2"] {
        let id = node_named(&sys, name);
        sys.topology_mut().set_peer_up(id, false);
    }
    let edges_before = sys.state().edge_used_kbps.clone();
    let nodes_before = sys.state().node_used_work.clone();
    sys.register_query("q", QUERY, "SP3", Strategy::StreamSharing)
        .unwrap_err();
    // Planning failed before anything was installed: not a single charge
    // may have moved (exact equality — charges reverse symbolically).
    assert_eq!(sys.state().edge_used_kbps, edges_before);
    assert_eq!(sys.state().node_used_work, nodes_before);
    assert_eq!(sys.query_count(), 0);
}

#[test]
fn unregistration_restores_charge_tables_exactly() {
    let mut sys = system_with_stream();
    let edges_base = sys.state().edge_used_kbps.clone();
    let nodes_base = sys.state().node_used_work.clone();

    for strategy in Strategy::ALL {
        sys.register_query("q", QUERY, "SP3", strategy).unwrap();
        assert!(
            sys.state().node_used_work.iter().sum::<f64>() > nodes_base.iter().sum::<f64>(),
            "{strategy:?}: registration must charge some work"
        );
        sys.unregister_query("q").unwrap();
        assert_eq!(
            sys.state().edge_used_kbps,
            edges_base,
            "{strategy:?}: edge charges must return to the pre-subscription state"
        );
        assert_eq!(
            sys.state().node_used_work,
            nodes_base,
            "{strategy:?}: node charges must return to the pre-subscription state"
        );
        // The per-flow reversal ledgers must be fully drained too.
        for charge in &sys.state().flow_charges {
            assert!(charge.edge_kbps.is_empty() || !sys.deployment().flows().is_empty());
        }
    }
}

#[test]
fn shared_second_subscriber_unwinds_to_first_subscribers_charges() {
    let mut sys = system_with_stream();
    sys.register_query("q1", QUERY, "SP3", Strategy::StreamSharing)
        .unwrap();
    let edges_q1 = sys.state().edge_used_kbps.clone();
    let nodes_q1 = sys.state().node_used_work.clone();

    // A second, sharing subscriber at another peer charges only its delta;
    // removing it must return exactly to the q1-only tables — shared
    // charges stay paid for by the surviving consumer.
    sys.register_query("q2", QUERY, "SP1", Strategy::StreamSharing)
        .unwrap();
    sys.unregister_query("q2").unwrap();
    assert_eq!(sys.state().edge_used_kbps, edges_q1);
    assert_eq!(sys.state().node_used_work, nodes_q1);

    // And removing the first subscriber afterwards drains everything but
    // the source stream's own route charge.
    let edges_base = {
        let fresh = system_with_stream();
        fresh.state().edge_used_kbps.clone()
    };
    sys.unregister_query("q1").unwrap();
    assert_eq!(sys.state().edge_used_kbps, edges_base);
}

#[test]
fn widening_and_unwinding_both_queries_restores_base_charges() {
    // The widening charge/discharge pair in `NetworkState`
    // (`charge_route_for`/`charge_node_for` with the widening delta, then
    // `narrow_back`'s releases) must cancel exactly, in any unregistration
    // order.
    let q_narrow = r#"<r>{ for $p in stream("photons")/photons/photon
        where $p/en >= 2.0 return <out>{ $p/en }</out> }</r>"#;
    let q_wide = r#"<r>{ for $p in stream("photons")/photons/photon
        where $p/en >= 0.5 return <out>{ $p/en }</out> }</r>"#;
    for order in [["qn", "qw"], ["qw", "qn"]] {
        let mut sys = system_with_stream();
        sys.set_widening(true);
        let edges_base = sys.state().edge_used_kbps.clone();
        let nodes_base = sys.state().node_used_work.clone();
        sys.register_query("qn", q_narrow, "SP3", Strategy::StreamSharing)
            .unwrap();
        sys.register_query("qw", q_wide, "SP1", Strategy::StreamSharing)
            .unwrap();
        for id in order {
            sys.unregister_query(id).unwrap();
        }
        // Unlike plain unregistration, widening interleaves the wide
        // query's delta charge with the narrow query's own charge, so the
        // float additions cancel in a different association order and a
        // ~1 ulp residue can remain. Drained-to-base is therefore checked
        // with a tolerance instead of bitwise equality.
        assert_near(
            &sys.state().edge_used_kbps,
            &edges_base,
            &format!("order {order:?}: edge charges must drain to the base state"),
        );
        assert_near(
            &sys.state().node_used_work,
            &nodes_base,
            &format!("order {order:?}: node charges must drain to the base state"),
        );
    }
}
