//! Property coverage for the wire codec (the PR 4 harness discipline
//! applied to the protocol layer): arbitrary messages round-trip through
//! encode → frame → read → decode byte-exactly, and every corruption —
//! torn writes, truncated frames, flipped payload bits, oversized length
//! prefixes, random garbage — is rejected with a typed error, never a
//! panic.

use proptest::prelude::*;

use dss_proto::{
    read_frame, read_message, write_message, DecodeError, Message, ProtoError, Role, WireStrategy,
    MAX_FRAME_LEN,
};
use dss_xml::Node;

fn arb_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z]{1,12}".prop_map(|s| s),
        Just("wxquery — unicode ✓ \u{1F300}".to_string()),
        Just("a\0b\nc".to_string()),
    ]
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = ("[a-z]{1,6}", prop::option::of(arb_text())).prop_map(|(name, text)| {
        let mut n = Node::empty(name);
        if let Some(t) = text {
            n.set_text(t);
        }
        n
    });
    leaf.prop_recursive(4, 24, 4, |inner| {
        ("[a-z]{1,6}", prop::collection::vec(inner, 0..4)).prop_map(|(name, children)| {
            let mut n = Node::empty(name);
            for c in children {
                n.push_child(c);
            }
            n
        })
    })
}

fn arb_strategy() -> impl Strategy<Value = WireStrategy> {
    prop_oneof![
        Just(WireStrategy::DataShipping),
        Just(WireStrategy::QueryShipping),
        Just(WireStrategy::StreamSharing),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0u16..=u16::MAX, 0u16..=u16::MAX, any::<bool>(), arb_text()).prop_map(
            |(min_version, max_version, client, name)| Message::Hello {
                min_version,
                max_version,
                role: if client { Role::Client } else { Role::Peer },
                name,
            }
        ),
        (0u16..=u16::MAX, arb_text())
            .prop_map(|(version, peer)| Message::HelloAck { version, peer }),
        (arb_text(), arb_text(), arb_strategy(), arb_text()).prop_map(
            |(id, at_peer, strategy, text)| Message::Subscribe {
                id,
                at_peer,
                strategy,
                text,
            }
        ),
        (
            arb_text(),
            0u64..=u64::MAX,
            any::<bool>(),
            0u64..=u64::MAX,
            arb_text()
        )
            .prop_map(|(id, delivery_flow, reused, cost_bits, plan)| {
                Message::SubscribeOk {
                    id,
                    delivery_flow,
                    reused,
                    cost_bits,
                    plan,
                }
            }),
        arb_text().prop_map(|id| Message::Unsubscribe { id }),
        (
            0u64..=u64::MAX,
            arb_text(),
            arb_text(),
            arb_strategy(),
            arb_text()
        )
            .prop_map(|(seq, id, at_peer, strategy, text)| Message::Deploy {
                seq,
                id,
                at_peer,
                strategy,
                text,
            }),
        (0u64..=u64::MAX).prop_map(|seq| Message::Ack { seq }),
        (0u64..=u64::MAX, 0u64..=u64::MAX)
            .prop_map(|(run, delivered)| Message::RunDone { run, delivered }),
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u32..=u32::MAX,
            any::<bool>(),
            prop::collection::vec(arb_node(), 0..5)
        )
            .prop_map(|(run, flow, hop, eos, items)| Message::StreamItemBatch {
                run,
                flow,
                hop,
                eos,
                items,
            }),
        (
            0u64..=u64::MAX,
            arb_text(),
            any::<bool>(),
            prop::collection::vec(arb_node(), 0..5)
        )
            .prop_map(|(run, query, eos, items)| Message::Deliver {
                run,
                query,
                eos,
                items,
            }),
        Just(Message::MetricsPull),
        arb_text().prop_map(|json| Message::MetricsSnapshot { json }),
        (arb_text(), arb_text()).prop_map(|(context, message)| Message::Fault { context, message }),
        Just(Message::Shutdown),
        Just(Message::Goodbye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → frame → read → decode is the identity.
    #[test]
    fn round_trip(msg in arb_message()) {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let mut r = &buf[..];
        let back = read_message(&mut r).unwrap();
        prop_assert_eq!(back, Some(msg));
        prop_assert!(read_message(&mut r).unwrap().is_none());
    }

    /// Cutting a framed message anywhere inside yields a typed
    /// truncation error (or, cut exactly at the boundary, a clean EOF) —
    /// never a panic, never a bogus message.
    #[test]
    fn torn_writes_are_typed(msg in arb_message(), permille in 0usize..1000) {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let cut = buf.len() * permille / 1000;
        let mut r = &buf[..cut];
        match read_message(&mut r) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
            Ok(Some(m)) => prop_assert!(false, "decoded {m:?} from a torn frame"),
            Err(ProtoError::Truncated) => prop_assert!(cut > 0),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Any single flipped payload bit is caught by the CRC.
    #[test]
    fn bit_flips_are_bad_crc(msg in arb_message(), permille in 0usize..1000, bit in 0u8..8) {
        let payload = msg.encode();
        prop_assume!(!payload.is_empty());
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let idx = 8 + (payload.len() * permille / 1000).min(payload.len() - 1);
        buf[idx] ^= 1 << bit;
        let mut r = &buf[..];
        match read_message(&mut r) {
            Err(ProtoError::BadCrc { .. }) => {}
            other => prop_assert!(false, "expected BadCrc, got {other:?}"),
        }
    }

    /// Random garbage never panics the frame reader: every outcome is a
    /// clean EOF, a typed error, or (for a lucky CRC) a payload.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=u8::MAX, 0..64)) {
        let mut r = &bytes[..];
        match read_frame(&mut r) {
            Ok(_) | Err(_) => {}
        }
        // And the message decoder tolerates arbitrary payloads too.
        let _ = Message::decode(&bytes);
    }

    /// Oversized length prefixes are rejected before any allocation.
    #[test]
    fn oversized_prefix_rejected(extra in 1u32..=1024, crc in 0u32..=u32::MAX) {
        let len = MAX_FRAME_LEN + extra;
        let mut buf = Vec::new();
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(ProtoError::TooLarge { len: got }) => prop_assert_eq!(got, len as u64),
            other => prop_assert!(false, "expected TooLarge, got {other:?}"),
        }
    }

    /// Declaring more payload than is present is a truncation, not a hang
    /// or a panic.
    #[test]
    fn over_declared_length_is_truncated(msg in arb_message(), extra in 1u32..512) {
        let payload = msg.encode();
        let lied = (payload.len() as u32).saturating_add(extra).min(MAX_FRAME_LEN);
        prop_assume!(lied as usize > payload.len());
        let mut buf = Vec::new();
        buf.extend_from_slice(&lied.to_le_bytes());
        buf.extend_from_slice(&dss_proto::crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(ProtoError::Truncated) => {}
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }

    /// A truncated *payload* (frame intact, message cut short) decodes to
    /// a typed decode error.
    #[test]
    fn truncated_payload_is_typed(msg in arb_message(), permille in 0usize..1000) {
        let payload = msg.encode();
        prop_assume!(payload.len() > 1);
        let cut = 1 + (payload.len() - 1) * permille / 1000;
        prop_assume!(cut < payload.len());
        match Message::decode(&payload[..cut]) {
            Ok(m) => prop_assert!(false, "decoded {m:?} from a truncated payload"),
            Err(DecodeError::TrailingBytes { .. }) => {
                prop_assert!(false, "truncation misread as trailing bytes")
            }
            Err(_) => {}
        }
    }
}
