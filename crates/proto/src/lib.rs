//! # dss-proto — the StreamGlobe wire protocol
//!
//! A hand-rolled, std-only binary protocol for networked deployments
//! (`dss serve` / `dss client`). Every message is one CRC-framed,
//! length-prefixed frame (see [`frame`]); payloads use LEB128 varints,
//! length-prefixed UTF-8 strings, and a lossless binary [`Node`] encoding
//! (see [`wire`]).
//!
//! Versioning: a connection opens with [`Message::Hello`] carrying the
//! sender's supported `[min_version, max_version]` range; the acceptor
//! picks the highest mutually supported version ([`negotiate`]) and
//! answers [`Message::HelloAck`], or [`Message::Fault`]s when the ranges
//! do not overlap. Frames that fail CRC, exceed the length cap, or decode
//! to malformed payloads produce typed errors — never panics — so one bad
//! peer cannot take a server down.

use std::io::{Read, Write};

use dss_xml::Node;

pub mod crc;
pub mod frame;
pub mod wire;

pub use crc::crc32;
pub use frame::{read_frame, write_frame, MAX_FRAME_LEN};

use wire::{put_bool, put_nodes, put_str, put_u16, put_u32, put_u64, Reader};

/// Lowest protocol version this build can speak.
pub const VERSION_MIN: u16 = 1;
/// Highest protocol version this build can speak.
pub const VERSION_MAX: u16 = 1;

/// Picks the highest version both ranges support, if any.
pub fn negotiate(a_min: u16, a_max: u16, b_min: u16, b_max: u16) -> Option<u16> {
    let lo = a_min.max(b_min);
    let hi = a_max.min(b_max);
    (lo <= hi).then_some(hi)
}

/// What kind of endpoint opened the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Another super-peer server process.
    Peer,
    /// A subscribing client.
    Client,
}

/// Wire form of the planning strategy — kept independent of `dss-core` so
/// the protocol crate stays leaf-level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStrategy {
    DataShipping,
    QueryShipping,
    StreamSharing,
}

impl WireStrategy {
    fn to_u8(self) -> u8 {
        match self {
            WireStrategy::DataShipping => 0,
            WireStrategy::QueryShipping => 1,
            WireStrategy::StreamSharing => 2,
        }
    }

    fn from_u8(b: u8) -> Result<WireStrategy, DecodeError> {
        match b {
            0 => Ok(WireStrategy::DataShipping),
            1 => Ok(WireStrategy::QueryShipping),
            2 => Ok(WireStrategy::StreamSharing),
            other => Err(DecodeError::BadStrategy(other)),
        }
    }
}

/// A decoded protocol message. See the field docs for who sends what.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opener (both directions): supported version range plus
    /// the sender's role and display name.
    Hello {
        min_version: u16,
        max_version: u16,
        role: Role,
        name: String,
    },
    /// Accepts a `Hello`, fixing the negotiated version.
    HelloAck {
        version: u16,
        peer: String,
    },
    /// Client → coordinator: register a WXQuery subscription.
    Subscribe {
        id: String,
        at_peer: String,
        strategy: WireStrategy,
        text: String,
    },
    /// Coordinator → client: the installed plan. `cost_bits` is the
    /// plan's total cost as `f64::to_bits` (exact, no decimal rounding).
    SubscribeOk {
        id: String,
        delivery_flow: u64,
        reused: bool,
        cost_bits: u64,
        plan: String,
    },
    /// Client → coordinator: retire a subscription.
    Unsubscribe {
        id: String,
    },
    UnsubscribeOk {
        id: String,
    },
    /// Coordinator → peers: replicate one registration (peers replay it
    /// on their local deterministic replica). `seq` totally orders the
    /// control plane.
    Deploy {
        seq: u64,
        id: String,
        at_peer: String,
        strategy: WireStrategy,
        text: String,
    },
    /// Coordinator → peers: replicate an unregistration.
    Undeploy {
        seq: u64,
        id: String,
    },
    /// Generic acknowledgement of a sequenced control message.
    Ack {
        seq: u64,
    },
    /// Client → coordinator → peers: replay every registered source
    /// stream through the deployed flows. Peers build their data plane
    /// and `Ack` before any item moves.
    StartRun {
        run: u64,
    },
    /// Coordinator → peers, after all `StartRun` acks: sources may fire.
    RunGo {
        run: u64,
    },
    /// Coordinator → run requester: every delivery flow reached
    /// end-of-stream; `delivered` counts items handed to clients.
    RunDone {
        run: u64,
        delivered: u64,
    },
    /// Peer → peer data plane: a batch of items for `flow` arriving at
    /// route hop `hop`. `eos` marks the flow's end-of-stream (the batch
    /// may be empty then).
    StreamItemBatch {
        run: u64,
        flow: u64,
        hop: u32,
        eos: bool,
        items: Vec<Node>,
    },
    /// Coordinator → client: result items for one subscribed query.
    Deliver {
        run: u64,
        query: String,
        eos: bool,
        items: Vec<Node>,
    },
    /// Client → any peer: request a telemetry snapshot.
    MetricsPull,
    /// The snapshot, as `dss_telemetry::snapshot_json()` (validates
    /// against `schemas/trace.schema.json`).
    MetricsSnapshot {
        json: String,
    },
    /// Any → any: a request failed; `context` names the operation.
    Fault {
        context: String,
        message: String,
    },
    /// Client → coordinator: drain in-flight work, flush final metrics,
    /// stop every peer. Acked (seq 0) once the fleet is down.
    Shutdown,
    /// Polite close; the sender will not write again.
    Goodbye,
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_SUBSCRIBE_OK: u8 = 4;
const TAG_UNSUBSCRIBE: u8 = 5;
const TAG_UNSUBSCRIBE_OK: u8 = 6;
const TAG_DEPLOY: u8 = 7;
const TAG_UNDEPLOY: u8 = 8;
const TAG_ACK: u8 = 9;
const TAG_START_RUN: u8 = 10;
const TAG_RUN_GO: u8 = 11;
const TAG_RUN_DONE: u8 = 12;
const TAG_STREAM_ITEM_BATCH: u8 = 13;
const TAG_DELIVER: u8 = 14;
const TAG_METRICS_PULL: u8 = 15;
const TAG_METRICS_SNAPSHOT: u8 = 16;
const TAG_FAULT: u8 = 17;
const TAG_SHUTDOWN: u8 = 18;
const TAG_GOODBYE: u8 = 19;

/// Why a payload failed to decode. Every variant is a protocol violation
/// by the sender (or corruption the CRC happened to miss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Payload ended before the message did.
    UnexpectedEnd,
    /// Unknown message tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A varint exceeded 64 bits (or a narrower field's range).
    VarintOverflow,
    /// A node tree nested deeper than [`wire::MAX_NODE_DEPTH`].
    TooDeep,
    /// Bytes remained after the message was fully decoded.
    TrailingBytes { remaining: usize },
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// Unknown role discriminant.
    BadRole(u8),
    /// Unknown strategy discriminant.
    BadStrategy(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "payload ended mid-message"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::VarintOverflow => write!(f, "varint out of range"),
            DecodeError::TooDeep => write!(f, "node tree nested too deeply"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            DecodeError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            DecodeError::BadRole(b) => write!(f, "unknown role {b}"),
            DecodeError::BadStrategy(b) => write!(f, "unknown strategy {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Anything that can go wrong reading or writing the wire.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Io(std::io::Error),
    /// The stream ended inside a frame (torn write / dropped peer).
    Truncated,
    /// A frame advertised a payload above [`MAX_FRAME_LEN`].
    TooLarge { len: u64 },
    /// Frame payload did not match its CRC header.
    BadCrc { expected: u32, found: u32 },
    /// The frame arrived intact but its payload is not a valid message.
    Decode(DecodeError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Truncated => write!(f, "stream ended mid-frame (torn write)"),
            ProtoError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtoError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            ProtoError::Decode(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> ProtoError {
        ProtoError::Decode(e)
    }
}

impl Message {
    /// Encodes the message payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Message::Hello {
                min_version,
                max_version,
                role,
                name,
            } => {
                out.push(TAG_HELLO);
                put_u16(&mut out, *min_version);
                put_u16(&mut out, *max_version);
                out.push(match role {
                    Role::Peer => 0,
                    Role::Client => 1,
                });
                put_str(&mut out, name);
            }
            Message::HelloAck { version, peer } => {
                out.push(TAG_HELLO_ACK);
                put_u16(&mut out, *version);
                put_str(&mut out, peer);
            }
            Message::Subscribe {
                id,
                at_peer,
                strategy,
                text,
            } => {
                out.push(TAG_SUBSCRIBE);
                put_str(&mut out, id);
                put_str(&mut out, at_peer);
                out.push(strategy.to_u8());
                put_str(&mut out, text);
            }
            Message::SubscribeOk {
                id,
                delivery_flow,
                reused,
                cost_bits,
                plan,
            } => {
                out.push(TAG_SUBSCRIBE_OK);
                put_str(&mut out, id);
                put_u64(&mut out, *delivery_flow);
                put_bool(&mut out, *reused);
                put_u64(&mut out, *cost_bits);
                put_str(&mut out, plan);
            }
            Message::Unsubscribe { id } => {
                out.push(TAG_UNSUBSCRIBE);
                put_str(&mut out, id);
            }
            Message::UnsubscribeOk { id } => {
                out.push(TAG_UNSUBSCRIBE_OK);
                put_str(&mut out, id);
            }
            Message::Deploy {
                seq,
                id,
                at_peer,
                strategy,
                text,
            } => {
                out.push(TAG_DEPLOY);
                put_u64(&mut out, *seq);
                put_str(&mut out, id);
                put_str(&mut out, at_peer);
                out.push(strategy.to_u8());
                put_str(&mut out, text);
            }
            Message::Undeploy { seq, id } => {
                out.push(TAG_UNDEPLOY);
                put_u64(&mut out, *seq);
                put_str(&mut out, id);
            }
            Message::Ack { seq } => {
                out.push(TAG_ACK);
                put_u64(&mut out, *seq);
            }
            Message::StartRun { run } => {
                out.push(TAG_START_RUN);
                put_u64(&mut out, *run);
            }
            Message::RunGo { run } => {
                out.push(TAG_RUN_GO);
                put_u64(&mut out, *run);
            }
            Message::RunDone { run, delivered } => {
                out.push(TAG_RUN_DONE);
                put_u64(&mut out, *run);
                put_u64(&mut out, *delivered);
            }
            Message::StreamItemBatch {
                run,
                flow,
                hop,
                eos,
                items,
            } => {
                out.push(TAG_STREAM_ITEM_BATCH);
                put_u64(&mut out, *run);
                put_u64(&mut out, *flow);
                put_u32(&mut out, *hop);
                put_bool(&mut out, *eos);
                put_nodes(&mut out, items);
            }
            Message::Deliver {
                run,
                query,
                eos,
                items,
            } => {
                out.push(TAG_DELIVER);
                put_u64(&mut out, *run);
                put_str(&mut out, query);
                put_bool(&mut out, *eos);
                put_nodes(&mut out, items);
            }
            Message::MetricsPull => out.push(TAG_METRICS_PULL),
            Message::MetricsSnapshot { json } => {
                out.push(TAG_METRICS_SNAPSHOT);
                put_str(&mut out, json);
            }
            Message::Fault { context, message } => {
                out.push(TAG_FAULT);
                put_str(&mut out, context);
                put_str(&mut out, message);
            }
            Message::Shutdown => out.push(TAG_SHUTDOWN),
            Message::Goodbye => out.push(TAG_GOODBYE),
        }
        out
    }

    /// Decodes one message from a frame payload. The payload must contain
    /// exactly one message ([`DecodeError::TrailingBytes`] otherwise).
    pub fn decode(payload: &[u8]) -> Result<Message, DecodeError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_HELLO => {
                let min_version = r.u16()?;
                let max_version = r.u16()?;
                let role = match r.u8()? {
                    0 => Role::Peer,
                    1 => Role::Client,
                    b => return Err(DecodeError::BadRole(b)),
                };
                Message::Hello {
                    min_version,
                    max_version,
                    role,
                    name: r.str()?,
                }
            }
            TAG_HELLO_ACK => Message::HelloAck {
                version: r.u16()?,
                peer: r.str()?,
            },
            TAG_SUBSCRIBE => Message::Subscribe {
                id: r.str()?,
                at_peer: r.str()?,
                strategy: WireStrategy::from_u8(r.u8()?)?,
                text: r.str()?,
            },
            TAG_SUBSCRIBE_OK => Message::SubscribeOk {
                id: r.str()?,
                delivery_flow: r.u64()?,
                reused: r.bool()?,
                cost_bits: r.u64()?,
                plan: r.str()?,
            },
            TAG_UNSUBSCRIBE => Message::Unsubscribe { id: r.str()? },
            TAG_UNSUBSCRIBE_OK => Message::UnsubscribeOk { id: r.str()? },
            TAG_DEPLOY => Message::Deploy {
                seq: r.u64()?,
                id: r.str()?,
                at_peer: r.str()?,
                strategy: WireStrategy::from_u8(r.u8()?)?,
                text: r.str()?,
            },
            TAG_UNDEPLOY => Message::Undeploy {
                seq: r.u64()?,
                id: r.str()?,
            },
            TAG_ACK => Message::Ack { seq: r.u64()? },
            TAG_START_RUN => Message::StartRun { run: r.u64()? },
            TAG_RUN_GO => Message::RunGo { run: r.u64()? },
            TAG_RUN_DONE => Message::RunDone {
                run: r.u64()?,
                delivered: r.u64()?,
            },
            TAG_STREAM_ITEM_BATCH => Message::StreamItemBatch {
                run: r.u64()?,
                flow: r.u64()?,
                hop: r.u32()?,
                eos: r.bool()?,
                items: r.nodes()?,
            },
            TAG_DELIVER => Message::Deliver {
                run: r.u64()?,
                query: r.str()?,
                eos: r.bool()?,
                items: r.nodes()?,
            },
            TAG_METRICS_PULL => Message::MetricsPull,
            TAG_METRICS_SNAPSHOT => Message::MetricsSnapshot { json: r.str()? },
            TAG_FAULT => Message::Fault {
                context: r.str()?,
                message: r.str()?,
            },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_GOODBYE => Message::Goodbye,
            tag => return Err(DecodeError::BadTag(tag)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Frames and writes one message.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), ProtoError> {
    write_frame(w, &msg.encode())
}

/// Reads and decodes one message; `Ok(None)` on a clean close.
pub fn read_message(r: &mut impl Read) -> Result<Option<Message>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Message::decode(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_picks_highest_mutual() {
        assert_eq!(negotiate(1, 3, 2, 5), Some(3));
        assert_eq!(negotiate(1, 1, 1, 1), Some(1));
        assert_eq!(negotiate(1, 1, 2, 3), None);
        assert_eq!(negotiate(4, 6, 1, 3), None);
    }

    #[test]
    fn message_round_trip_through_frames() {
        let msgs = vec![
            Message::Hello {
                min_version: VERSION_MIN,
                max_version: VERSION_MAX,
                role: Role::Client,
                name: "test-client".into(),
            },
            Message::Subscribe {
                id: "q1".into(),
                at_peer: "P2".into(),
                strategy: WireStrategy::StreamSharing,
                text: "wxquery { ... }".into(),
            },
            Message::StreamItemBatch {
                run: 7,
                flow: 3,
                hop: 2,
                eos: true,
                items: vec![
                    Node::leaf("e", "1.25"),
                    Node::elem(
                        "photon",
                        vec![Node::leaf("en", "2.5"), Node::leaf("det_time", "17")],
                    ),
                ],
            },
            Message::MetricsPull,
            Message::Fault {
                context: "subscribe".into(),
                message: "unknown stream".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(read_message(&mut r).unwrap().as_ref(), Some(m));
        }
        assert!(read_message(&mut r).unwrap().is_none());
    }

    #[test]
    fn unknown_tag_is_typed_error() {
        assert_eq!(Message::decode(&[200]), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Message::Shutdown.encode();
        payload.push(0);
        assert_eq!(
            Message::decode(&payload),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }
}
