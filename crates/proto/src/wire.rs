//! Primitive value codec: LEB128 varints, length-prefixed UTF-8 strings,
//! and a lossless binary [`Node`] encoding. Decoding is defensive — every
//! malformed input maps to a typed [`DecodeError`], never a panic, and
//! nesting is capped at the same depth bound the XML parser enforces.

use dss_xml::Node;

use crate::DecodeError;

/// Decoded trees deeper than this are rejected ([`dss_xml::tree::MAX_DEPTH`]
/// — nothing the engine produces can legitimately exceed it, and the cap
/// keeps untrusted bytes from overflowing the decoder's stack).
pub const MAX_NODE_DEPTH: usize = dss_xml::tree::MAX_DEPTH;

pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    put_u64(out, v as u64);
}

pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    put_u64(out, v as u64);
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub fn put_node(out: &mut Vec<u8>, node: &Node) {
    put_str(out, node.name());
    match node.text() {
        Some(t) => {
            out.push(1);
            put_str(out, t);
        }
        None => out.push(0),
    }
    put_u64(out, node.children().len() as u64);
    for child in node.children() {
        put_node(out, child);
    }
}

pub fn put_nodes(out: &mut Vec<u8>, nodes: &[Node]) {
    put_u64(out, nodes.len() as u64);
    for n in nodes {
        put_node(out, n);
    }
}

/// Cursor over a received payload. All reads are bounds-checked.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails with [`DecodeError::TrailingBytes`] if input remains — a
    /// well-formed message consumes its payload exactly.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.buf.len() - self.pos,
            })
        }
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            // The 10th varint byte may only carry the single remaining bit.
            if shift == 63 && bits > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::VarintOverflow)
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        u32::try_from(self.u64()?).map_err(|_| DecodeError::VarintOverflow)
    }

    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        u16::try_from(self.u64()?).map_err(|_| DecodeError::VarintOverflow)
    }

    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u64()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(DecodeError::UnexpectedEnd);
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| DecodeError::BadUtf8)
    }

    pub fn node(&mut self) -> Result<Node, DecodeError> {
        self.node_at(0)
    }

    fn node_at(&mut self, depth: usize) -> Result<Node, DecodeError> {
        if depth >= MAX_NODE_DEPTH {
            return Err(DecodeError::TooDeep);
        }
        let name = self.str()?;
        let mut node = Node::empty(name);
        if self.bool()? {
            node.set_text(self.str()?);
        }
        let count = self.u64()? as usize;
        // A hostile count cannot exceed what the remaining bytes could
        // possibly encode (every child needs >= 3 bytes).
        if count > (self.buf.len() - self.pos) / 3 + 1 {
            return Err(DecodeError::UnexpectedEnd);
        }
        for _ in 0..count {
            node.push_child(self.node_at(depth + 1)?);
        }
        Ok(node)
    }

    pub fn nodes(&mut self) -> Result<Vec<Node>, DecodeError> {
        let count = self.u64()? as usize;
        if count > (self.buf.len() - self.pos) / 3 + 1 {
            return Err(DecodeError::UnexpectedEnd);
        }
        let mut out = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            out.push(self.node()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.u64().unwrap(), v);
            assert!(r.is_done());
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can't fit in a u64.
        let buf = [0xFFu8; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u64(), Err(DecodeError::VarintOverflow)));
    }

    #[test]
    fn node_round_trip() {
        let mut root = Node::empty("evt");
        root.push_child(Node::leaf("e", "12.5"));
        root.push_child(Node::elem("pos", vec![Node::leaf("x", "1")]));
        let mut buf = Vec::new();
        put_node(&mut buf, &root);
        let mut r = Reader::new(&buf);
        let back = r.node().unwrap();
        r.finish().unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn too_deep_rejected() {
        // Hand-encode a nesting chain deeper than the cap.
        let mut buf = Vec::new();
        for _ in 0..MAX_NODE_DEPTH + 1 {
            put_str(&mut buf, "d");
            buf.push(0); // no text
            put_u64(&mut buf, 1); // one child
        }
        put_str(&mut buf, "leaf");
        buf.push(0);
        put_u64(&mut buf, 0);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.node(), Err(DecodeError::TooDeep)));
    }

    #[test]
    fn hostile_child_count_rejected() {
        let mut buf = Vec::new();
        put_str(&mut buf, "n");
        buf.push(0);
        put_u64(&mut buf, u64::MAX); // absurd child count
        let mut r = Reader::new(&buf);
        assert!(matches!(r.node(), Err(DecodeError::UnexpectedEnd)));
    }
}
