//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), hand-rolled so
//! the wire protocol stays std-only. Table-driven, one byte per step.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (the common zlib/PNG/Ethernet checksum).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer tests against published CRC-32 vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"stream item");
        let b = crc32(b"stream iteM");
        assert_ne!(a, b);
    }
}
