//! Frame layer: every message travels as one length-prefixed, CRC-guarded
//! frame so a reader can always tell a torn or corrupted transmission from
//! a clean close.
//!
//! ```text
//! +-------------+-------------+=====================+
//! | len: u32 LE | crc: u32 LE |  payload (len bytes)|
//! +-------------+-------------+=====================+
//! ```
//!
//! `len` counts payload bytes only; `crc` is the CRC-32 of the payload.
//! A length prefix above [`MAX_FRAME_LEN`] is rejected *before* any
//! allocation, so a corrupted or hostile prefix can never balloon memory.

use std::io::{self, Read, Write};

use crate::crc::crc32;
use crate::ProtoError;

/// Upper bound on a frame payload (16 MiB). Far above any legitimate
/// message — item batches are bounded well below this by the sender.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Writes one frame. The payload is flushed as a single header+body write
/// so small messages don't straddle TCP segments unnecessarily.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(ProtoError::TooLarge {
            len: payload.len() as u64,
        });
    }
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf).map_err(ProtoError::Io)?;
    w.flush().map_err(ProtoError::Io)
}

/// Reads one frame payload.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames). End-of-stream *inside* a frame — a torn write — is
/// [`ProtoError::Truncated`]; a payload whose CRC does not match its
/// header is [`ProtoError::BadCrc`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; 8];
    // Distinguish "closed between frames" from "closed mid-header".
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(ProtoError::Truncated)
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let expected_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::TooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Err(ProtoError::Truncated);
        }
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let found = crc32(&payload);
    if found != expected_crc {
        return Err(ProtoError::BadCrc {
            expected: expected_crc,
            found,
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_write_is_truncated_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            match read_frame(&mut r) {
                Err(ProtoError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_payload_is_bad_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf[10] ^= 0x01;
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::BadCrc { .. })));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtoError::TooLarge { len }) if len == u32::MAX as u64
        ));
    }
}
