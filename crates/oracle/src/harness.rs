//! The differential harness: random cases, the four end-to-end
//! equivalences, and greedy shrinking of failing cases.
//!
//! A [`Case`] is a materialized photon stream plus a handful of random
//! flat subscriptions ([`dss_wxquery::testing::QuerySpec`]). The checks
//! assert, byte-exact after canonical serialization:
//!
//! - [`check_pipeline`] (equivalence 1) — the engine's operator pipeline
//!   ≡ the naive [`Oracle`], split into streamed and flushed results;
//! - [`check_network`] (equivalences 2 and 3) — the planned deployment
//!   delivers the oracle's results under **every** planning strategy
//!   (stream sharing, query shipping, data shipping), with fused
//!   FlowDags on *and* off;
//! - [`check_live`] (equivalence 4) — the discrete-event live runtime
//!   with an injected peer crash delivers exactly the oracle's results:
//!   re-planned queries deliver `oracle(prefix)` before the crash and
//!   `oracle(suffix)` after it (operator state restarts on
//!   re-subscription, windows never flush), untouched queries deliver
//!   `oracle(stream)`;
//! - [`check_live_widening`] (equivalence 4, widening split) — the same
//!   crash script with stream widening enabled: failover re-plans may
//!   patch untouched queries' flows in place, and those queries must
//!   *still* deliver `oracle(stream)` — the planned loss-free handoff
//!   carries their open window state across the in-place rebuild.
//!
//! [`shrink`] reduces a failing case with the query-level simplifications
//! from `dss_wxquery::testing` plus item bisection, re-checking the
//! failing property at each step, so reported counterexamples stay small
//! enough to read.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use proptest::prelude::*;
use proptest::strategy::one_of;

use dss_core::{Registration, Strategy as PlanStrategy, StreamGlobe};
use dss_engine::StreamOperatorExt;
use dss_network::{grid_topology, FaultScript, LiveConfig, SimConfig};
use dss_rass::{GeneratorConfig, PhotonGenerator};
use dss_wxquery::compile_query;
use dss_wxquery::testing::{arb_query, QuerySpec};
use dss_xml::writer::node_to_string;
use dss_xml::{Decimal, Node};

use crate::interpreter::{Oracle, OracleResult};

/// One differential test case: a materialized stream and the
/// subscriptions registered against it.
#[derive(Debug, Clone)]
pub struct Case {
    pub items: Vec<Node>,
    pub queries: Vec<QuerySpec>,
}

impl Case {
    /// Human-readable rendering for failure reports.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "case with {} stream items:", self.items.len());
        for (i, q) in self.queries.iter().enumerate() {
            let _ = writeln!(s, "  q{i}: {}", q.to_text());
        }
        let shown = self.items.len().min(12);
        for item in &self.items[..shown] {
            let _ = writeln!(s, "  item: {}", node_to_string(item));
        }
        if shown < self.items.len() {
            let _ = writeln!(s, "  … {} more items", self.items.len() - shown);
        }
        s
    }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Blueprint of one synthetic stream item. Deliberately adversarial:
/// elements go missing, appear twice, or hold non-numeric text, and
/// `det_time` increments often land exactly on window-grid boundaries.
#[derive(Debug, Clone)]
struct ItemSketch {
    /// `det_time` advance in tenths (strictly positive keeps the
    /// reference element monotone, as value windows require).
    dt_tenths: i64,
    /// `en` in milli-keV; `None` drops the element entirely.
    en_milli: Option<i64>,
    /// A second `en` element (first-match vs. multi-match paths).
    extra_en_milli: Option<i64>,
    /// `en` holds non-numeric text instead of a value.
    en_garbage: bool,
    phc: Option<i64>,
    /// `(ra, dec)` in tenths of degrees; `None` drops `coord` entirely.
    coord_tenths: Option<(i64, i64)>,
}

fn arb_sketch() -> BoxedStrategy<ItemSketch> {
    (
        1i64..120,
        prop::option::of(0i64..3200),
        (0usize..8, 0i64..3200),
        0usize..16,
        prop::option::of(0i64..120),
        prop::option::of((900i64..1800, -600i64..-200)),
    )
        .prop_map(
            |(dt, en, (extra_k, extra), garbage_k, phc, coord)| ItemSketch {
                dt_tenths: dt,
                en_milli: en,
                extra_en_milli: (extra_k == 0).then_some(extra),
                en_garbage: garbage_k == 0,
                phc,
                coord_tenths: coord,
            },
        )
        .boxed()
}

fn build_items(sketches: Vec<ItemSketch>) -> Vec<Node> {
    let mut t = 0i64; // running det_time in tenths
    let mut items = Vec::with_capacity(sketches.len());
    for s in sketches {
        t += s.dt_tenths;
        let mut item = Node::empty("photon");
        item.push_child(Node::leaf(
            "det_time",
            Decimal::new(t as i128, 1).to_string(),
        ));
        if s.en_garbage {
            item.push_child(Node::leaf("en", "not-a-number"));
        } else if let Some(en) = s.en_milli {
            item.push_child(Node::leaf("en", Decimal::new(en as i128, 3).to_string()));
        }
        if let Some(extra) = s.extra_en_milli {
            item.push_child(Node::leaf("en", Decimal::new(extra as i128, 3).to_string()));
        }
        if let Some(phc) = s.phc {
            item.push_child(Node::leaf("phc", phc.to_string()));
        }
        if let Some((ra, dec)) = s.coord_tenths {
            let mut cel = Node::empty("cel");
            cel.push_child(Node::leaf("ra", Decimal::new(ra as i128, 1).to_string()));
            cel.push_child(Node::leaf("dec", Decimal::new(dec as i128, 1).to_string()));
            let mut coord = Node::empty("coord");
            coord.push_child(cel);
            item.push_child(coord);
        }
        items.push(item);
    }
    items
}

/// A materialized stream: either adversarial synthetic items or a
/// schema-conforming RASS photon stream from `dss_rass::generator`.
pub fn arb_items() -> BoxedStrategy<Vec<Node>> {
    let synthetic = prop::collection::vec(arb_sketch(), 0..=36)
        .prop_map(build_items)
        .boxed();
    let rass = (0u64..1_000_000, 4usize..48)
        .prop_map(|(seed, n)| {
            let cfg = GeneratorConfig {
                seed,
                mean_time_increment: 0.2,
                ..GeneratorConfig::default()
            };
            PhotonGenerator::new(cfg).generate_items(n)
        })
        .boxed();
    one_of(vec![synthetic, rass])
}

/// A full differential case: a stream plus one to three subscriptions.
pub fn arb_case() -> BoxedStrategy<Case> {
    (arb_items(), prop::collection::vec(arb_query(), 1..=3))
        .prop_map(|(items, queries)| Case { items, queries })
        .boxed()
}

// ---------------------------------------------------------------------
// Equivalence 1: engine pipeline ≡ oracle
// ---------------------------------------------------------------------

fn serialize(items: &[Node]) -> Vec<String> {
    items.iter().map(node_to_string).collect()
}

fn oracle_run(q: &QuerySpec, items: &[Node]) -> Result<OracleResult, String> {
    Oracle::compile(&q.to_text())
        .map_err(|e| format!("oracle rejects a query the engine compiles: {e}"))
        .map(|oracle| oracle.run(items))
}

/// Runs one compiled query through the engine's operator pipeline plus
/// restructuring, returning (streamed, flushed) serialized results.
fn engine_pipeline(q: &QuerySpec, items: &[Node]) -> Result<(Vec<String>, Vec<String>), String> {
    let compiled = compile_query(&q.to_text()).map_err(|e| format!("engine compile: {e}"))?;
    let mut pipeline = dss_engine::build_pipeline(compiled.operator_chain());
    let mut post = compiled.restructure_op();
    let mut streamed = Vec::new();
    for item in items {
        for t in pipeline.process(item) {
            for out in post.process_collect(&t) {
                streamed.push(node_to_string(&out));
            }
        }
    }
    let mut flushed = Vec::new();
    for t in pipeline.flush() {
        for out in post.process_collect(&t) {
            flushed.push(node_to_string(&out));
        }
    }
    Ok((streamed, flushed))
}

/// Equivalence 1: for every query, the engine pipeline's streamed and
/// flushed outputs equal the oracle's, byte-exact.
pub fn check_pipeline(case: &Case) -> Result<(), String> {
    for (i, q) in case.queries.iter().enumerate() {
        let expect = oracle_run(q, &case.items)?;
        let (streamed, flushed) = engine_pipeline(q, &case.items)?;
        if streamed != serialize(&expect.closed) {
            return Err(format!(
                "pipeline ≠ oracle (streamed) for q{i} `{}`:\n engine: {streamed:?}\n oracle: {:?}",
                q.to_text(),
                serialize(&expect.closed)
            ));
        }
        if flushed != serialize(&expect.flushed) {
            return Err(format!(
                "pipeline ≠ oracle (flushed) for q{i} `{}`:\n engine: {flushed:?}\n oracle: {:?}",
                q.to_text(),
                serialize(&expect.flushed)
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Equivalences 2 + 3: planned deployments ≡ oracle, fused and unfused,
// under every strategy
// ---------------------------------------------------------------------

/// Peer the `i`-th query subscribes at. Alternating far/near subscribers
/// varies routes and sharing opportunities while always leaving SP2 free
/// to crash in [`check_live`].
fn subscriber(i: usize) -> &'static str {
    if i.is_multiple_of(2) {
        "SP3"
    } else {
        "SP1"
    }
}

/// Builds a 2×2 super-peer grid with the case's stream at SP0 (emitting
/// at `frequency` Hz) and all queries registered under `strategy`.
/// `widening` enables the stream-widening extension before any query
/// registers, so both the initial plans and later failover re-plans may
/// loosen existing streams in place.
fn build_system(
    case: &Case,
    strategy: PlanStrategy,
    frequency: f64,
    widening: bool,
) -> Result<(StreamGlobe, Vec<Registration>), String> {
    let mut sys = StreamGlobe::new(grid_topology(2, 2));
    sys.set_widening(widening);
    sys.register_stream("photons", "SP0", case.items.clone(), frequency)
        .map_err(|e| format!("register_stream: {e}"))?;
    let mut regs = Vec::new();
    for (i, q) in case.queries.iter().enumerate() {
        let reg = sys
            .register_query(format!("q{i}"), &q.to_text(), subscriber(i), strategy)
            .map_err(|e| format!("register q{i} under {strategy:?}: {e}"))?;
        regs.push(reg);
    }
    Ok((sys, regs))
}

/// Equivalences 2 and 3: under every planning strategy, with operator
/// fusion on and off, every query's delivery flow carries exactly the
/// oracle's results (streamed plus end-of-stream flushes — the batch
/// simulator drains and flushes all pipelines).
pub fn check_network(case: &Case) -> Result<(), String> {
    let expected: Vec<Vec<String>> = case
        .queries
        .iter()
        .map(|q| oracle_run(q, &case.items).map(|r| serialize(&r.all())))
        .collect::<Result<_, _>>()?;
    for strategy in PlanStrategy::ALL {
        let (sys, regs) = build_system(case, strategy, 10.0, false)?;
        for shared_ops in [true, false] {
            let cfg = SimConfig {
                shared_ops,
                ..SimConfig::default()
            };
            let out = sys.run_simulation(cfg);
            for (i, reg) in regs.iter().enumerate() {
                let got = serialize(&out.flow_outputs[reg.delivery_flow]);
                if got != expected[i] {
                    return Err(format!(
                        "{strategy:?} (fused={shared_ops}) ≠ oracle for q{i} `{}`:\n \
                         delivered: {got:?}\n oracle: {:?}",
                        case.queries[i].to_text(),
                        expected[i]
                    ));
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Equivalence 4: live runtime with a peer crash ≡ oracle
// ---------------------------------------------------------------------

/// Cap on live-run stream length: sources emit at 1 Hz so crash timing
/// falls in quiet gaps, and the simulated horizon grows linearly with the
/// item count.
const LIVE_MAX_ITEMS: usize = 20;

/// Equivalence 4: run the stream-sharing deployment under the
/// discrete-event runtime at 1 Hz, crash a relay super-peer in the quiet
/// gap after item `k = n/2`, and compare every query's recorded
/// deliveries against the oracle. Re-planned queries must deliver
/// exactly `oracle(items[..k]).closed` before the crash and
/// `oracle(items[k..]).closed` after it (fresh operator state on the
/// re-planned route, and the runtime never flushes); untouched queries
/// must deliver `oracle(items).closed` for the whole stream.
pub fn check_live(case: &Case) -> Result<(), String> {
    check_live_with(case, false)
}

/// Equivalence 4 with stream *widening* enabled: same crash script, but
/// the failover re-plans may now widen a surviving stream instead of
/// opening a new one — patching the *untouched* owner query's flow in
/// place (restore operators splice in front of its chain, so the whole
/// chain below the splice rebuilds). Those untouched queries must still
/// deliver exactly `oracle(stream)` for the whole run, which only holds
/// because the runtime executes the patch as a planned loss-free handoff
/// that migrates the open window state across the rebuild. The one
/// escape hatch: when the planner priced the delta migration above a
/// plain rebuild (or a snapshot found no exact home) the runtime reports
/// dropped windows, and the patched query is held to the same
/// prefix/suffix split as a re-planned one.
pub fn check_live_widening(case: &Case) -> Result<(), String> {
    check_live_with(case, true)
}

fn check_live_with(case: &Case, widening: bool) -> Result<(), String> {
    let items = &case.items[..case.items.len().min(LIVE_MAX_ITEMS)];
    if items.is_empty() {
        return Ok(());
    }
    let sliced = Case {
        items: items.to_vec(),
        queries: case.queries.clone(),
    };
    let (mut sys, regs) = build_system(&sliced, PlanStrategy::StreamSharing, 1.0, widening)?;
    // Crash a peer that carries or processes flows but is neither the
    // source's super-peer nor a subscriber.
    let protected: BTreeSet<String> = std::iter::once("SP0".to_string())
        .chain((0..regs.len()).map(|i| subscriber(i).to_string()))
        .collect();
    let victim = sys
        .deployment()
        .flows()
        .iter()
        .filter(|f| !f.retired)
        .flat_map(|f| f.route.iter().chain(std::iter::once(&f.processing_node)))
        .find(|&&n| !protected.contains(&sys.topology().peer(n).name))
        .copied();
    let n = items.len();
    let k = n / 2;
    let cfg = LiveConfig {
        duration_s: n as f64 + 3.0,
        record_deliveries: true,
        ..LiveConfig::default()
    };
    // Sources emit item i at (i+1)·1 s (origin (i+1)·1e6 µs); the crash
    // lands in the quiet gap after item k-1, when nothing is in flight
    // (per-hop latency is microseconds against a one-second gap).
    let faults = match victim {
        Some(peer) => FaultScript::new().crash_peer(k as f64 + 0.5, peer),
        None => FaultScript::new(),
    };
    let outcome = sys
        .run_live(cfg, &faults)
        .map_err(|e| format!("run_live: {e}"))?;
    let mut replanned: BTreeSet<String> = BTreeSet::new();
    for report in &outcome.failovers {
        if let Some((id, err)) = report.failed.first() {
            return Err(format!("failover could not re-plan {id}: {err}"));
        }
        replanned.extend(report.replanned.iter().map(|r| r.query_id.clone()));
    }
    let crash_origin_us = (k as u64) * 1_000_000;
    let empty = Vec::new();
    for (i, reg) in regs.iter().enumerate() {
        let q = &sliced.queries[i];
        let delivered = outcome.delivered_items.get(&reg.query_id).unwrap_or(&empty);
        if replanned.contains(&reg.query_id) {
            let pre: Vec<String> = delivered
                .iter()
                .filter(|(o, _)| *o <= crash_origin_us)
                .map(|(_, node)| node_to_string(node))
                .collect();
            let post: Vec<String> = delivered
                .iter()
                .filter(|(o, _)| *o > crash_origin_us)
                .map(|(_, node)| node_to_string(node))
                .collect();
            let expect_pre = serialize(&oracle_run(q, &items[..k])?.closed);
            let expect_post = serialize(&oracle_run(q, &items[k..])?.closed);
            if pre != expect_pre {
                return Err(format!(
                    "live ≠ oracle before the crash for {} `{}`:\n delivered: {pre:?}\n \
                     oracle(prefix): {expect_pre:?}",
                    reg.query_id,
                    q.to_text()
                ));
            }
            if post != expect_post {
                return Err(format!(
                    "live ≠ oracle after re-subscription for {} `{}`:\n delivered: {post:?}\n \
                     oracle(suffix): {expect_post:?}",
                    reg.query_id,
                    q.to_text()
                ));
            }
        } else {
            let got: Vec<String> = delivered
                .iter()
                .map(|(_, node)| node_to_string(node))
                .collect();
            let expect = serialize(&oracle_run(q, items)?.closed);
            if got != expect {
                // With widening on, a failover re-plan may have patched
                // this query's flow in place. If the runtime reports
                // dropped window snapshots, the patch was *not* loss-free
                // and the query legitimately restarts its windows at the
                // failover instant — hold it to the crash split instead.
                if widening && outcome.metrics.windows_dropped > 0 {
                    let pre: Vec<String> = delivered
                        .iter()
                        .filter(|(o, _)| *o <= crash_origin_us)
                        .map(|(_, node)| node_to_string(node))
                        .collect();
                    let post: Vec<String> = delivered
                        .iter()
                        .filter(|(o, _)| *o > crash_origin_us)
                        .map(|(_, node)| node_to_string(node))
                        .collect();
                    if pre == serialize(&oracle_run(q, &items[..k])?.closed)
                        && post == serialize(&oracle_run(q, &items[k..])?.closed)
                    {
                        continue;
                    }
                }
                return Err(format!(
                    "live ≠ oracle for unperturbed {} `{}` (widening={widening}, \
                     windows migrated/dropped: {}/{}):\n delivered: {got:?}\n \
                     oracle: {expect:?}",
                    reg.query_id,
                    q.to_text(),
                    outcome.metrics.windows_migrated,
                    outcome.metrics.windows_dropped,
                ));
            }
        }
    }
    Ok(())
}

/// All four equivalences on one case, plus the widening variant of the
/// live check.
pub fn check_all(case: &Case) -> Result<(), String> {
    check_pipeline(case)?;
    check_network(case)?;
    check_live(case)?;
    check_live_widening(case)
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily shrinks a failing case: fewer queries, fewer items (bisection
/// first, then single removals), simpler queries via
/// [`QuerySpec::shrink`]. Each accepted step must still fail `check`;
/// returns the reduced case and its failure message.
pub fn shrink(
    mut case: Case,
    mut message: String,
    check: &dyn Fn(&Case) -> Result<(), String>,
) -> (Case, String) {
    let mut budget = 400usize;
    'outer: while budget > 0 {
        let mut candidates: Vec<Case> = Vec::new();
        if case.queries.len() > 1 {
            for i in 0..case.queries.len() {
                let mut c = case.clone();
                c.queries.remove(i);
                candidates.push(c);
            }
        }
        let n = case.items.len();
        if n > 1 {
            for range in [0..n / 2, n / 2..n] {
                let mut c = case.clone();
                c.items = case.items[range].to_vec();
                candidates.push(c);
            }
        }
        if n > 0 && n <= 12 {
            for i in 0..n {
                let mut c = case.clone();
                c.items.remove(i);
                candidates.push(c);
            }
        }
        for (i, q) in case.queries.iter().enumerate() {
            for simpler in q.shrink() {
                let mut c = case.clone();
                c.queries[i] = simpler;
                candidates.push(c);
            }
        }
        for candidate in candidates {
            budget = budget.saturating_sub(1);
            if budget == 0 {
                break 'outer;
            }
            if let Err(msg) = check(&candidate) {
                case = candidate;
                message = msg;
                continue 'outer;
            }
        }
        break;
    }
    (case, message)
}

/// Runs `check` on the case; on failure, shrinks and returns a full
/// report (minimal case plus its failure message) for the test to fail
/// with.
pub fn check_shrinking(
    case: &Case,
    check: &dyn Fn(&Case) -> Result<(), String>,
) -> Result<(), String> {
    match check(case) {
        Ok(()) => Ok(()),
        Err(msg) => {
            let (minimal, msg) = shrink(case.clone(), msg, check);
            Err(format!(
                "differential failure (shrunk):\n{}{msg}",
                minimal.describe()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    fn sample_case(seed: u64) -> Case {
        let mut rng = TestRng::from_seed(seed);
        arb_case().sample(&mut rng)
    }

    #[test]
    fn sampled_cases_pass_all_equivalences() {
        for seed in [1u64, 2, 3, 4] {
            let case = sample_case(seed);
            check_all(&case).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn paper_query_roundtrip_through_harness() {
        let items = PhotonGenerator::new(GeneratorConfig {
            seed: 99,
            mean_time_increment: 0.3,
            ..GeneratorConfig::default()
        })
        .generate_items(40);
        let case = Case {
            items,
            queries: vec![sample_case(7).queries[0].clone()],
        };
        check_all(&case).unwrap();
    }

    #[test]
    fn shrink_reduces_failing_cases() {
        let case = sample_case(42);
        let started_with = case.items.len();
        // A fake property: "fails" whenever the stream has > 2 items.
        // Shrinking must keep the case failing while reducing it.
        let check = |c: &Case| -> Result<(), String> {
            if c.items.len() > 2 {
                Err("too many items".to_string())
            } else {
                Ok(())
            }
        };
        if check(&case).is_err() {
            let (minimal, msg) = shrink(case, "initial".into(), &check);
            assert_eq!(msg, "too many items");
            assert!(minimal.items.len() >= 3);
            assert!(minimal.items.len() <= 4, "started at {started_with}");
            assert_eq!(minimal.queries.len(), 1);
        }
    }
}
