//! Reference oracle for WXQuery evaluation.
//!
//! The whole premise of data stream sharing (Kuntschke & Kemper, EDBT
//! 2006) is that a reused, pre-processed stream is *semantically
//! equivalent* to evaluating the new subscription from scratch. After the
//! engine grew fused operator DAGs, three planning strategies, and a live
//! runtime with failover, that equivalence deserves a machine-checked
//! witness: this crate provides it.
//!
//! - [`interpreter`] is a deliberately naive, tree-at-a-time WXQuery
//!   interpreter working directly on the parsed AST over a materialized
//!   stream. It shares **zero execution code** with `dss_engine`: windows,
//!   aggregates, predicate evaluation, and `return`-clause instantiation
//!   are all re-derived from the paper's definitions. Anything the engine
//!   and the oracle both get wrong must be wrong *independently*.
//! - [`harness`] is the differential test harness: random streams,
//!   queries, topologies, and fault scripts, plus the four end-to-end
//!   equivalences (pipeline ≡ oracle, fused ≡ unfused, all strategies
//!   agree, live post-recovery ≡ oracle on the suffix) and the
//!   metamorphic checks of the matching layer. Failing cases shrink to
//!   minimal readable queries before they are reported.

pub mod harness;
pub mod interpreter;

pub use interpreter::{evaluate, Oracle, OracleError, OracleResult};
