//! A deliberately naive, tree-at-a-time WXQuery interpreter.
//!
//! This is the *reference* side of the differential harness: it evaluates
//! a flat WXQuery subscription directly from the parsed AST over a fully
//! materialized stream, with no pipelining, no operator objects, no
//! sharing, and no code from `dss_engine`. Its only dependencies are the
//! foundation crates: `dss_xml` (trees, exact decimals), `dss_predicate`
//! (the comparison-operator enum), `dss_properties` (the aggregate-op
//! enum embedded in the AST), and `dss_wxquery` (parser/AST).
//!
//! Semantics implemented from the paper (Definition 2.1, Sections 2–3):
//!
//! - child-axis paths with document-order multi-matches,
//! - conjunctive predicates `$p/π θ c` and `$p/π θ $p/ρ + c`, evaluated
//!   fail-closed on missing or non-numeric values,
//! - `count`/`diff` data windows anchored on the absolute non-negative
//!   `µ`-grid, closed in ascending start order once the (sorted)
//!   reference value passes their end, with empty windows never emitted,
//! - distributive (`min`/`max`/`sum`/`count`) and algebraic (`avg`)
//!   aggregates, `avg` as an exact `sum/count` rounded half away from
//!   zero to six decimal places, and aggregate result filters compared by
//!   exact cross-multiplication,
//! - `return`-clause element construction with literal text rendered
//!   before constructed children.
//!
//! The interpreter distinguishes results emitted *while the stream is
//! live* ([`OracleResult::closed`]) from those only an end-of-stream
//! flush would produce ([`OracleResult::flushed`]) — the batch simulator
//! delivers both, the live runtime deliberately only the former.

use std::fmt;

use dss_predicate::CompOp;
use dss_properties::AggOp;
use dss_wxquery::ast::{Clause, Content, Expr, Flwr, ForSource, PredTerm, WindowAst};
use dss_wxquery::parse_query;
use dss_xml::writer::node_to_string;
use dss_xml::{Decimal, Node, Path};

/// Why a query text cannot be interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The text failed to parse as WXQuery.
    Parse(String),
    /// The query parses but falls outside the flat fragment the oracle
    /// (like the engine) evaluates.
    Unsupported(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Parse(m) => write!(f, "oracle parse error: {m}"),
            OracleError::Unsupported(m) => write!(f, "oracle: unsupported query: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// The oracle's verdict on a query over a materialized stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleResult {
    /// Results produced while consuming the stream (selection matches and
    /// windows closed by later items), in stream order.
    pub closed: Vec<Node>,
    /// Results only an end-of-stream flush produces (windows still open
    /// when the stream ended), ascending by window start.
    pub flushed: Vec<Node>,
}

impl OracleResult {
    /// All results in delivery order: streamed results, then the flush.
    pub fn all(&self) -> Vec<Node> {
        let mut out = self.closed.clone();
        out.extend(self.flushed.iter().cloned());
        out
    }

    /// Canonical byte-exact serialization of [`Self::all`].
    pub fn canonical(&self) -> Vec<String> {
        self.closed
            .iter()
            .chain(self.flushed.iter())
            .map(node_to_string)
            .collect()
    }
}

/// Right-hand side of a selection atom.
#[derive(Debug, Clone)]
enum Rhs {
    Const(Decimal),
    /// `$p/ρ + c` — another path on the same item plus a constant.
    ItemPath(Path, Decimal),
}

/// One conjunct of the selection predicate, on the stream item.
#[derive(Debug, Clone)]
struct SelAtom {
    lhs: Path,
    op: CompOp,
    rhs: Rhs,
}

impl SelAtom {
    /// Naive fail-closed evaluation: every referenced path must resolve
    /// (first match in document order) to a decimal.
    fn holds(&self, item: &Node) -> bool {
        let Ok(lv) = self.lhs.decimal_value(item) else {
            return false;
        };
        let rv = match &self.rhs {
            Rhs::Const(c) => *c,
            Rhs::ItemPath(p, c) => match p.decimal_value(item) {
                Ok(v) => match v.checked_add(*c) {
                    Some(s) => s,
                    None => return false,
                },
                Err(_) => return false,
            },
        };
        self.op.evaluate(lv, rv)
    }
}

/// The data window of the `for` clause, if any.
#[derive(Debug, Clone)]
enum Windowing {
    /// `|count Δ step µ|` — reference value is the arrival index among
    /// the items that survived selection.
    Count { size: Decimal, step: Decimal },
    /// `|π diff Δ step µ|` — reference value read from the item.
    Diff {
        reference: Path,
        size: Decimal,
        step: Decimal,
    },
}

impl Windowing {
    fn size(&self) -> Decimal {
        match self {
            Windowing::Count { size, .. } | Windowing::Diff { size, .. } => *size,
        }
    }

    fn step(&self) -> Decimal {
        match self {
            Windowing::Count { step, .. } | Windowing::Diff { step, .. } => *step,
        }
    }
}

/// The window aggregation of the `let` clause, if any.
#[derive(Debug, Clone)]
struct Aggregate {
    op: AggOp,
    element: Path,
    /// Conjunctive conditions on the aggregate value (`where $a θ c`).
    filter: Vec<(CompOp, Decimal)>,
}

/// A `return`-clause construction template (re-derived, not shared with
/// the engine's `Template`).
#[derive(Debug, Clone)]
enum Tpl {
    Element { tag: String, children: Vec<Tpl> },
    Subtree(Path),
    AggValue,
    WindowContents,
    Text(String),
}

/// A compiled-for-interpretation flat WXQuery.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Referenced input stream name.
    pub stream: String,
    selection: Vec<SelAtom>,
    window: Option<Windowing>,
    aggregate: Option<Aggregate>,
    template: Tpl,
}

/// Parses and interprets `text` over `items` in one call.
pub fn evaluate(text: &str, items: &[Node]) -> Result<OracleResult, OracleError> {
    Ok(Oracle::compile(text)?.run(items))
}

impl Oracle {
    /// Parses a subscription text into an interpretable form.
    pub fn compile(text: &str) -> Result<Oracle, OracleError> {
        let expr = parse_query(text).map_err(|e| OracleError::Parse(e.to_string()))?;
        Self::from_expr(&expr)
    }

    fn from_expr(expr: &Expr) -> Result<Oracle, OracleError> {
        let unsupported = |m: &str| Err(OracleError::Unsupported(m.to_string()));
        // Unwrap the optional result-root constructor around the FLWR.
        let flwr: &Flwr = match expr {
            Expr::Flwr(f) => f,
            Expr::Element(el) => {
                let mut found = None;
                for c in &el.content {
                    match c {
                        Content::Enclosed(Expr::Flwr(f)) if found.is_none() => found = Some(f),
                        Content::Text(_) => {}
                        _ => return unsupported("result constructor shape"),
                    }
                }
                match found {
                    Some(f) => f,
                    None => return unsupported("no FLWR expression"),
                }
            }
            _ => return unsupported("subscription shape"),
        };
        let mut for_clause = None;
        let mut let_clause = None;
        for clause in &flwr.clauses {
            match clause {
                Clause::For { .. } if for_clause.is_none() => for_clause = Some(clause),
                Clause::Let { .. } if let_clause.is_none() => let_clause = Some(clause),
                _ => return unsupported("duplicate for/let clauses"),
            }
        }
        let Some(Clause::For {
            var: for_var,
            source,
            path,
            conditions,
            window,
        }) = for_clause
        else {
            return unsupported("no for clause");
        };
        let ForSource::Stream(stream) = source else {
            return unsupported("for clause must range over stream(…)");
        };
        if path.len() != 2 {
            return unsupported("for-clause path must be stream-root/item");
        }
        let let_var = match let_clause {
            Some(Clause::Let { var, .. }) => Some(var.as_str()),
            _ => None,
        };
        // Split predicates into item selection and aggregate filter.
        let mut selection = Vec::new();
        let mut filter = Vec::new();
        for atom in conditions.iter().chain(flwr.where_.iter()) {
            if atom.lhs.var == *for_var {
                if atom.lhs.path.is_empty() {
                    return unsupported("predicate on the whole item");
                }
                let rhs = match &atom.rhs {
                    PredTerm::Const(c) => Rhs::Const(*c),
                    PredTerm::VarPlus(w, c) => {
                        if w.var != *for_var {
                            return unsupported("predicate mixes variables");
                        }
                        Rhs::ItemPath(w.path.clone(), *c)
                    }
                };
                selection.push(SelAtom {
                    lhs: atom.lhs.path.clone(),
                    op: atom.op,
                    rhs,
                });
            } else if Some(atom.lhs.var.as_str()) == let_var && atom.lhs.path.is_empty() {
                match &atom.rhs {
                    PredTerm::Const(c) => filter.push((atom.op, *c)),
                    PredTerm::VarPlus(..) => return unsupported("non-constant aggregate filter"),
                }
            } else {
                return unsupported("unbound predicate variable");
            }
        }
        let windowing = match window {
            Some(WindowAst::Count { size, step }) => Some(Windowing::Count {
                size: *size,
                step: step.unwrap_or(*size),
            }),
            Some(WindowAst::Diff {
                reference,
                size,
                step,
            }) => Some(Windowing::Diff {
                reference: reference.clone(),
                size: *size,
                step: step.unwrap_or(*size),
            }),
            None => None,
        };
        if let Some(w) = &windowing {
            if w.size().signum() <= 0 || w.step().signum() <= 0 {
                return unsupported("non-positive window size or step");
            }
        }
        let aggregate = match let_clause {
            Some(Clause::Let { var: _, op, source }) => {
                if source.var != *for_var {
                    return unsupported("aggregation source is not the for variable");
                }
                if windowing.is_none() {
                    return unsupported("aggregation without a data window");
                }
                Some(Aggregate {
                    op: *op,
                    element: source.path.clone(),
                    filter,
                })
            }
            _ => {
                if !filter.is_empty() {
                    return unsupported("aggregate filter without a let clause");
                }
                None
            }
        };
        let template = Self::template_of(
            &flwr.ret,
            for_var,
            let_var,
            aggregate.is_some(),
            aggregate.is_none() && windowing.is_some(),
        )?;
        Ok(Oracle {
            stream: stream.clone(),
            selection,
            window: windowing,
            aggregate,
            template,
        })
    }

    fn template_of(
        expr: &Expr,
        for_var: &str,
        let_var: Option<&str>,
        has_agg: bool,
        has_window: bool,
    ) -> Result<Tpl, OracleError> {
        let unsupported = |m: &str| Err(OracleError::Unsupported(m.to_string()));
        match expr {
            Expr::Element(el) => {
                let mut children = Vec::new();
                for c in &el.content {
                    children.push(match c {
                        Content::Element(nested) => Self::template_of(
                            &Expr::Element(nested.clone()),
                            for_var,
                            let_var,
                            has_agg,
                            has_window,
                        )?,
                        Content::Enclosed(inner) => {
                            Self::template_of(inner, for_var, let_var, has_agg, has_window)?
                        }
                        Content::Text(t) => Tpl::Text(t.clone()),
                    });
                }
                Ok(Tpl::Element {
                    tag: el.tag.clone(),
                    children,
                })
            }
            Expr::PathOutput(vp) => {
                if vp.var == for_var {
                    if has_agg {
                        return unsupported("raw item data alongside aggregation");
                    }
                    if has_window {
                        if !vp.path.is_empty() {
                            return unsupported("path below the window variable");
                        }
                        return Ok(Tpl::WindowContents);
                    }
                    Ok(Tpl::Subtree(vp.path.clone()))
                } else if Some(vp.var.as_str()) == let_var {
                    if !vp.path.is_empty() {
                        return unsupported("path below the aggregate variable");
                    }
                    Ok(Tpl::AggValue)
                } else {
                    unsupported("unbound variable in return clause")
                }
            }
            _ => unsupported("return-clause expression outside the flat fragment"),
        }
    }

    /// `true` when the item passes every selection conjunct.
    fn selected(&self, item: &Node) -> bool {
        self.selection.iter().all(|a| a.holds(item))
    }

    /// Evaluates the query over the materialized stream items.
    pub fn run(&self, items: &[Node]) -> OracleResult {
        match (&self.window, &self.aggregate) {
            (None, None) => self.run_plain(items),
            (Some(w), Some(a)) => self.run_aggregate(items, w, a),
            (Some(w), None) => self.run_window_contents(items, w),
            (None, Some(_)) => unreachable!("compile rejects aggregation without a window"),
        }
    }

    fn run_plain(&self, items: &[Node]) -> OracleResult {
        let mut out = OracleResult::default();
        for item in items {
            if self.selected(item) {
                if let Some(n) = instantiate(&self.template, item, None, None) {
                    out.closed.push(n);
                }
            }
        }
        out
    }

    fn run_aggregate(&self, items: &[Node], w: &Windowing, agg: &Aggregate) -> OracleResult {
        let mut windows: GridWindows<Accumulator> = GridWindows::new(w.size(), w.step());
        let mut closed: Vec<(Decimal, Accumulator)> = Vec::new();
        let mut arrivals = 0u64;
        for item in items {
            if !self.selected(item) {
                continue;
            }
            let Some(v) = reference_of(w, item, arrivals) else {
                continue;
            };
            if v < Decimal::ZERO {
                continue;
            }
            arrivals += 1;
            // Every matched element value folds into every window the
            // reference value lies in.
            let mut values = Vec::new();
            agg.element.visit(item, &mut |n| {
                if let Ok(d) = n.decimal_value() {
                    values.push(d);
                }
            });
            windows.observe(v, &mut closed, |acc| {
                for v in &values {
                    acc.add(*v);
                }
            });
        }
        let mut out = OracleResult::default();
        for (start, acc) in closed.drain(..) {
            if let Some(n) = self.finish_window(agg, start, &acc) {
                out.closed.push(n);
            }
        }
        let mut flushed = Vec::new();
        windows.flush(&mut flushed);
        for (start, acc) in flushed {
            if let Some(n) = self.finish_window(agg, start, &acc) {
                out.flushed.push(n);
            }
        }
        out
    }

    /// Turns one closed window into a result item: drop empty windows,
    /// apply the aggregate filter, render the value, instantiate the
    /// template.
    fn finish_window(&self, agg: &Aggregate, _start: Decimal, acc: &Accumulator) -> Option<Node> {
        if acc.count == 0 {
            return None;
        }
        if !acc.passes_filter(agg.op, &agg.filter) {
            return None;
        }
        let value = acc.final_value(agg.op)?;
        instantiate(&self.template, &Node::empty("item"), Some(&value), None)
    }

    fn run_window_contents(&self, items: &[Node], w: &Windowing) -> OracleResult {
        let mut windows: GridWindows<Vec<Node>> = GridWindows::new(w.size(), w.step());
        let mut closed: Vec<(Decimal, Vec<Node>)> = Vec::new();
        let mut arrivals = 0u64;
        for item in items {
            if !self.selected(item) {
                continue;
            }
            let Some(v) = reference_of(w, item, arrivals) else {
                continue;
            };
            if v < Decimal::ZERO {
                continue;
            }
            arrivals += 1;
            windows.observe(v, &mut closed, |acc| acc.push(item.clone()));
        }
        let mut out = OracleResult::default();
        let size = w.size();
        for (start, contents) in closed.drain(..) {
            if let Some(n) = self.finish_contents(start, size, &contents) {
                out.closed.push(n);
            }
        }
        let mut flushed = Vec::new();
        windows.flush(&mut flushed);
        for (start, contents) in flushed {
            if let Some(n) = self.finish_contents(start, size, &contents) {
                out.flushed.push(n);
            }
        }
        out
    }

    fn finish_contents(&self, _start: Decimal, _size: Decimal, contents: &[Node]) -> Option<Node> {
        if contents.is_empty() {
            return None;
        }
        instantiate(&self.template, &Node::empty("item"), None, Some(contents))
    }
}

/// Reference value of an item under a windowing mode: the arrival index
/// (0-based, among selected items) for `count` windows, the reference
/// element's value for `diff` windows.
fn reference_of(w: &Windowing, item: &Node, arrivals: u64) -> Option<Decimal> {
    match w {
        Windowing::Count { .. } => Some(Decimal::from_int(arrivals as i64)),
        Windowing::Diff { reference, .. } => reference.decimal_value(item).ok(),
    }
}

/// Raw window accounting for the `MatchAggregations` metamorphic laws:
/// every window the oracle opens over `items` for a `diff` window on
/// `reference`, with the values `element` matched inside it, ascending by
/// window start (closed windows first, then the end-of-stream flush —
/// which is also ascending, so the whole sequence is).
pub fn diff_windows(
    items: &[Node],
    reference: &Path,
    element: &Path,
    size: Decimal,
    step: Decimal,
) -> Vec<(Decimal, Vec<Decimal>)> {
    let mut windows: GridWindows<Vec<Decimal>> = GridWindows::new(size, step);
    let mut closed = Vec::new();
    for item in items {
        let Ok(v) = reference.decimal_value(item) else {
            continue;
        };
        if v < Decimal::ZERO {
            continue;
        }
        let mut values = Vec::new();
        element.visit(item, &mut |n| {
            if let Ok(d) = n.decimal_value() {
                values.push(d);
            }
        });
        windows.observe(v, &mut closed, |acc| acc.extend(values.iter().copied()));
    }
    windows.flush(&mut closed);
    closed
}

/// Naive accumulator for one window's aggregate state. Public so the
/// metamorphic harness can cross-check the engine's `AggItem` against
/// this independent derivation on arbitrary value sequences.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Accumulator {
    pub count: u64,
    pub sum: Option<Decimal>,
    pub min: Option<Decimal>,
    pub max: Option<Decimal>,
}

impl Accumulator {
    pub fn add(&mut self, v: Decimal) {
        self.count += 1;
        self.sum = Some(match self.sum {
            Some(s) => s + v,
            None => v,
        });
        self.min = Some(match self.min {
            Some(m) if m <= v => m,
            _ => v,
        });
        self.max = Some(match self.max {
            Some(m) if m >= v => m,
            _ => v,
        });
    }

    /// Folds another accumulator in, as if its values had been added
    /// here. Distributivity of count/sum/min/max (and of avg via
    /// sum/count) over window splits is exactly the property the
    /// re-aggregation operators rely on; the metamorphic harness checks
    /// it against element-wise accumulation.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum = match (self.sum, other.sum) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Applies the aggregate result filter: `avg` conditions compare
    /// exactly by cross-multiplication (`sum θ c·count`), everything else
    /// compares the final value; empty windows fail every non-trivial
    /// filter.
    pub fn passes_filter(&self, agg_op: AggOp, filter: &[(CompOp, Decimal)]) -> bool {
        filter.iter().all(|(op, c)| match agg_op {
            AggOp::Avg => {
                let Some(sum) = self.sum else { return false };
                if self.count == 0 {
                    return false;
                }
                match c.units().checked_mul(self.count as i128) {
                    Some(units) => op.evaluate(sum, Decimal::new(units, c.scale())),
                    None => false,
                }
            }
            _ => match self.value_of(agg_op) {
                Some(v) => op.evaluate(v, *c),
                None => false,
            },
        })
    }

    /// The aggregate's final value: `None` drops the window (empty
    /// min/max/avg), `sum` of an empty window is zero by convention.
    pub fn value_of(&self, op: AggOp) -> Option<Decimal> {
        match op {
            AggOp::Count => Some(Decimal::from_int(self.count as i64)),
            AggOp::Sum => self.sum.or(Some(Decimal::ZERO)),
            AggOp::Min => self.min,
            AggOp::Max => self.max,
            AggOp::Avg => self.avg(6),
        }
    }

    fn final_value(&self, op: AggOp) -> Option<String> {
        self.value_of(op).map(|v| v.to_string())
    }

    /// Exact `sum/count` rounded half away from zero to
    /// `max(scale, sum scale)` decimal places, then reduced to `scale`
    /// places with a second half-away rounding when the sum was finer
    /// than the target; `None` on an empty window or when the exact
    /// numerator overflows `i128`.
    pub fn avg(&self, scale: u32) -> Option<Decimal> {
        let sum = self.sum?;
        if self.count == 0 {
            return None;
        }
        let target = scale.max(sum.scale());
        let extra = (target + 1).min(dss_xml::decimal::MAX_SCALE);
        let numerator = sum
            .units()
            .checked_mul(10i128.checked_pow(extra - sum.scale())?)?;
        let value = Decimal::new(
            round_half_away(numerator, 10 * self.count as i128),
            extra - 1,
        );
        if value.scale() <= scale {
            Some(value)
        } else {
            let div = 10i128.pow(value.scale() - scale);
            Some(Decimal::new(round_half_away(value.units(), div), scale))
        }
    }
}

/// `round(n / d)` with ties away from zero; `d > 0`.
fn round_half_away(n: i128, d: i128) -> i128 {
    if n >= 0 {
        (n + d / 2) / d
    } else {
        (n - d / 2) / d
    }
}

/// Largest multiple of `step` that is ≤ `v` (floor toward −∞).
fn floor_to_grid(v: Decimal, step: Decimal) -> Decimal {
    let scale = v.scale().max(step.scale());
    let (vu, su) = (v.units_at_scale(scale), step.units_at_scale(scale));
    Decimal::new(vu.div_euclid(su) * su, scale)
}

/// Grid-anchored sliding windows over a sorted reference sequence: a
/// window with start `s` covers `[s, s + Δ)`, starts lie on the
/// non-negative `µ`-grid, windows close in ascending start order once the
/// reference value passes their end, and grid positions whose window
/// never contained an item are skipped (never materialized).
#[derive(Debug)]
struct GridWindows<T> {
    size: Decimal,
    step: Decimal,
    /// Open windows, ascending by start.
    active: Vec<(Decimal, T)>,
    /// Highest grid start considered so far.
    youngest: Option<Decimal>,
}

impl<T: Default> GridWindows<T> {
    fn new(size: Decimal, step: Decimal) -> GridWindows<T> {
        GridWindows {
            size,
            step,
            active: Vec::new(),
            youngest: None,
        }
    }

    /// Observes reference value `v`: closes every window ending at or
    /// before `v`, opens the grid windows newly overlapping `v`, and
    /// folds the item into every open window containing `v`.
    fn observe(
        &mut self,
        v: Decimal,
        closed: &mut Vec<(Decimal, T)>,
        mut fold: impl FnMut(&mut T),
    ) {
        while !self.active.is_empty() && self.active[0].0 + self.size <= v {
            closed.push(self.active.remove(0));
        }
        let highest = floor_to_grid(v, self.step);
        let mut start = match self.youngest {
            Some(y) => y + self.step,
            None => {
                // Walk back to the earliest non-negative grid window that
                // still contains v.
                let mut s = highest;
                while s > Decimal::ZERO && v < (s - self.step) + self.size {
                    s = s - self.step;
                }
                s
            }
        };
        while start <= highest {
            if v < start + self.size {
                self.active.push((start, T::default()));
            }
            self.youngest = Some(start);
            start = start + self.step;
        }
        if self.youngest.is_none() {
            self.youngest = Some(highest);
        }
        for (s, acc) in &mut self.active {
            if *s <= v && v < *s + self.size {
                fold(acc);
            }
        }
    }

    /// Drains all still-open windows, ascending by start.
    fn flush(&mut self, closed: &mut Vec<(Decimal, T)>) {
        closed.append(&mut self.active);
    }
}

/// Instantiates a `return`-clause template. Literal text (and aggregate
/// values, which render as text) accumulates and renders before the
/// constructed children; a missing aggregate value drops the whole
/// result.
fn instantiate(
    tpl: &Tpl,
    item: &Node,
    agg_value: Option<&str>,
    window_items: Option<&[Node]>,
) -> Option<Node> {
    match tpl {
        Tpl::Element { tag, children } => {
            let mut node = Node::empty(tag.as_str());
            let mut text = String::new();
            for child in children {
                match child {
                    Tpl::Subtree(path) => {
                        path.visit(item, &mut |n| node.push_child(n.clone()));
                    }
                    Tpl::AggValue => text.push_str(agg_value?),
                    Tpl::WindowContents => {
                        for n in window_items? {
                            node.push_child(n.clone());
                        }
                    }
                    Tpl::Text(t) => text.push_str(t),
                    nested @ Tpl::Element { .. } => {
                        node.push_child(instantiate(nested, item, agg_value, window_items)?);
                    }
                }
            }
            if !text.is_empty() {
                node.set_text(text);
            }
            Some(node)
        }
        Tpl::Subtree(path) => path.first(item).cloned(),
        Tpl::AggValue => agg_value.map(|v| Node::leaf("value", v)),
        Tpl::WindowContents => window_items.map(|items| Node::elem("window", items.to_vec())),
        Tpl::Text(t) => Some(Node::leaf("text", t.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photon(t: &str, en: &str, ra: &str) -> Node {
        Node::elem(
            "photon",
            vec![
                Node::leaf("det_time", t),
                Node::leaf("en", en),
                Node::elem("coord", vec![Node::elem("cel", vec![Node::leaf("ra", ra)])]),
            ],
        )
    }

    #[test]
    fn selection_query_filters_and_restructures() {
        let q = r#"<hot>
{ for $p in stream("photons")/photons/photon
  where $p/en >= 1.5
  return <hit> { $p/en } { $p/coord/cel/ra } </hit> }
</hot>"#;
        let items = vec![
            photon("1", "1.0", "120.0"),
            photon("2", "1.5", "121.0"),
            photon("3", "2.0", "122.0"),
        ];
        let out = evaluate(q, &items).unwrap();
        assert_eq!(
            out.canonical(),
            vec![
                "<hit><en>1.5</en><ra>121.0</ra></hit>",
                "<hit><en>2.0</en><ra>122.0</ra></hit>",
            ]
        );
        assert!(out.flushed.is_empty());
    }

    #[test]
    fn missing_values_fail_closed() {
        let q =
            r#"for $p in stream("s")/photons/photon where $p/en >= 0.0 return <x> { $p/en } </x>"#;
        let items = vec![Node::elem("photon", vec![Node::leaf("det_time", "1")])];
        let out = evaluate(q, &items).unwrap();
        assert!(out.all().is_empty());
    }

    #[test]
    fn sliding_diff_avg_matches_hand_computation() {
        let q = r#"for $w in stream("s")/photons/photon |det_time diff 20 step 10|
let $a := avg($w/en)
return <avg_en> { $a } </avg_en>"#;
        let items = vec![
            photon("5", "1.0", "0"),
            photon("15", "2.0", "0"),
            photon("25", "4.0", "0"),
            photon("35", "8.0", "0"),
        ];
        let out = evaluate(q, &items).unwrap();
        // Windows [0,20): avg 1.5; [10,30): 3; [20,40): 6; [30,50): 8.
        assert_eq!(
            out.canonical(),
            vec![
                "<avg_en>1.5</avg_en>",
                "<avg_en>3</avg_en>",
                "<avg_en>6</avg_en>",
                "<avg_en>8</avg_en>",
            ]
        );
        // [0,20) and [10,30) close while streaming; the rest flush.
        assert_eq!(out.closed.len(), 2);
        assert_eq!(out.flushed.len(), 2);
    }

    #[test]
    fn avg_rounds_half_away_at_six_places() {
        let q = r#"for $w in stream("s")/photons/photon |count 3|
let $a := avg($w/en)
return <a> { $a } </a>"#;
        let items = vec![
            photon("1", "1", "0"),
            photon("2", "1", "0"),
            photon("3", "0", "0"),
        ];
        let out = evaluate(q, &items).unwrap();
        assert_eq!(out.canonical(), vec!["<a>0.666667</a>"]);
    }

    #[test]
    fn count_window_uses_selected_arrivals() {
        let q = r#"for $w in stream("s")/photons/photon [en >= 1.0] |count 2|
let $a := sum($w/en)
return <s> { $a } </s>"#;
        // Only the three items with en ≥ 1.0 count toward window indices.
        let items = vec![
            photon("1", "1.0", "0"),
            photon("2", "0.5", "0"),
            photon("3", "2.0", "0"),
            photon("4", "4.0", "0"),
        ];
        let out = evaluate(q, &items).unwrap();
        // Decimal sums canonicalize (1.0 + 2.0 renders as 3), exactly as
        // the engine's AggItem does.
        assert_eq!(out.canonical(), vec!["<s>3</s>", "<s>4</s>"]);
    }

    #[test]
    fn aggregate_filter_drops_windows() {
        let q = r#"for $w in stream("s")/photons/photon |det_time diff 10|
let $a := avg($w/en)
where $a >= 1.3
return <avg_en> { $a } </avg_en>"#;
        let items = vec![
            photon("1", "1.0", "0"),
            photon("2", "1.2", "0"),
            photon("11", "1.4", "0"),
            photon("12", "1.6", "0"),
        ];
        let out = evaluate(q, &items).unwrap();
        assert_eq!(out.canonical(), vec!["<avg_en>1.5</avg_en>"]);
    }

    #[test]
    fn window_contents_splice_items() {
        let q = r#"for $w in stream("s")/photons/photon |det_time diff 10|
return <wnd> { $w } </wnd>"#;
        let items = vec![photon("1", "1.0", "120.0"), photon("11", "2.0", "121.0")];
        let out = evaluate(q, &items).unwrap();
        assert_eq!(out.all().len(), 2);
        let first = node_to_string(&out.all()[0]);
        assert!(first.starts_with("<wnd><photon>"), "{first}");
    }

    #[test]
    fn empty_windows_are_skipped() {
        let q = r#"for $w in stream("s")/photons/photon |det_time diff 10|
let $a := count($w/en)
return <c> { $a } </c>"#;
        let items = vec![photon("5", "1", "0"), photon("95", "1", "0")];
        let out = evaluate(q, &items).unwrap();
        assert_eq!(out.canonical(), vec!["<c>1</c>", "<c>1</c>"]);
    }

    #[test]
    fn rejects_nested_queries() {
        let q = r#"for $p in stream("a")/r/i return <x> { for $q in stream("b")/r/i return <y/> } </x>"#;
        assert!(matches!(
            Oracle::compile(q),
            Err(OracleError::Unsupported(_))
        ));
    }

    #[test]
    fn text_renders_before_children() {
        let q = r#"for $p in stream("s")/photons/photon
return <x>label { $p/en }</x>"#;
        let items = vec![photon("1", "1.5", "0")];
        let out = evaluate(q, &items).unwrap();
        assert_eq!(out.canonical(), vec!["<x>label<en>1.5</en></x>"]);
    }
}
