//! A validator for the small JSON-Schema subset used by
//! `schemas/trace.schema.json`: `type` (string or list), `properties`,
//! `required`, `items`, `additionalProperties` (boolean or schema), and
//! `enum`. Nested schemas can be factored into `definitions` and referred
//! to with `{"$ref": "#/definitions/<name>"}`.

use crate::json::Json;

/// Validates `doc` against `schema`. Returns every violation found, each
/// prefixed with a `/`-separated path into the document; an empty vector
/// means the document conforms.
pub fn validate(doc: &Json, schema: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let mut ctx = Context {
        root: schema,
        errors: &mut errors,
    };
    ctx.check(doc, schema, "$");
    errors
}

struct Context<'a, 'e> {
    root: &'a Json,
    errors: &'e mut Vec<String>,
}

impl<'a> Context<'a, '_> {
    fn fail(&mut self, path: &str, msg: String) {
        self.errors.push(format!("{path}: {msg}"));
    }

    // `schema` always borrows from the root document, so $ref targets
    // resolved out of `self.root` can replace it in place.
    fn check(&mut self, doc: &Json, mut schema: &'a Json, path: &str) {
        let mut hops = 0;
        while let Some(reference) = schema.get("$ref").and_then(Json::as_str) {
            hops += 1;
            if hops > 16 {
                self.fail(path, "$ref chain too deep".to_string());
                return;
            }
            let Some(name) = reference.strip_prefix("#/definitions/") else {
                self.fail(path, format!("unsupported $ref '{reference}'"));
                return;
            };
            match self.root.get("definitions").and_then(|d| d.get(name)) {
                Some(target) => schema = target,
                None => {
                    self.fail(path, format!("unresolved $ref '{reference}'"));
                    return;
                }
            }
        }

        if let Some(expected) = schema.get("type") {
            let actual = doc.type_name();
            let matches = match expected {
                Json::Str(t) => type_matches(t, actual, doc),
                Json::Arr(ts) => ts
                    .iter()
                    .filter_map(Json::as_str)
                    .any(|t| type_matches(t, actual, doc)),
                _ => true,
            };
            if !matches {
                self.fail(path, format!("expected type {expected:?}, got {actual}"));
                return;
            }
        }

        if let Some(allowed) = schema.get("enum").and_then(Json::as_array) {
            if !allowed.contains(doc) {
                self.fail(path, format!("value not in enum {allowed:?}"));
            }
        }

        if let Json::Obj(members) = doc {
            if let Some(required) = schema.get("required").and_then(Json::as_array) {
                for key in required.iter().filter_map(Json::as_str) {
                    if doc.get(key).is_none() {
                        self.fail(path, format!("missing required member '{key}'"));
                    }
                }
            }
            let props = schema.get("properties").and_then(Json::as_object);
            let additional = schema.get("additionalProperties");
            for (key, value) in members {
                let child_path = format!("{path}/{key}");
                let prop_schema =
                    props.and_then(|p| p.iter().find(|(k, _)| k == key).map(|(_, v)| v));
                match (prop_schema, additional) {
                    (Some(sub), _) => self.check(value, sub, &child_path),
                    (None, Some(Json::Bool(false))) => {
                        self.fail(&child_path, "unexpected member".to_string());
                    }
                    (None, Some(sub @ Json::Obj(_))) => self.check(value, sub, &child_path),
                    _ => {}
                }
            }
        }

        if let Json::Arr(items) = doc {
            if let Some(item_schema) = schema.get("items") {
                for (i, item) in items.iter().enumerate() {
                    self.check(item, item_schema, &format!("{path}/{i}"));
                }
            }
        }
    }
}

fn type_matches(expected: &str, actual: &str, doc: &Json) -> bool {
    match expected {
        "integer" => matches!(doc, Json::Num(n) if n.fract() == 0.0),
        other => other == actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn accepts_conforming_documents() {
        let schema = parse(
            r##"{
                "type": "object",
                "required": ["name", "items"],
                "properties": {
                    "name": {"type": "string"},
                    "items": {"type": "array", "items": {"$ref": "#/definitions/entry"}}
                },
                "definitions": {
                    "entry": {
                        "type": "object",
                        "required": ["kind"],
                        "properties": {"kind": {"enum": ["a", "b"]}, "n": {"type": "integer"}}
                    }
                }
            }"##,
        )
        .unwrap();
        let doc = parse(r#"{"name":"x","items":[{"kind":"a","n":3},{"kind":"b"}]}"#).unwrap();
        assert_eq!(validate(&doc, &schema), Vec::<String>::new());
    }

    #[test]
    fn reports_violations_with_paths() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["name"],
                "properties": {"name": {"type": "string"}},
                "additionalProperties": false
            }"#,
        )
        .unwrap();
        let doc = parse(r#"{"nam":"x","extra":1}"#).unwrap();
        let errors = validate(&doc, &schema);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("missing required member 'name'")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("unexpected member")),
            "{errors:?}"
        );
    }

    #[test]
    fn integer_type_rejects_fractions() {
        let schema = parse(r#"{"type":"integer"}"#).unwrap();
        assert!(validate(&parse("3").unwrap(), &schema).is_empty());
        assert!(!validate(&parse("3.5").unwrap(), &schema).is_empty());
    }

    #[test]
    fn nested_errors_carry_item_paths() {
        let schema =
            parse(r#"{"type":"array","items":{"type":"object","required":["x"]}}"#).unwrap();
        let errors = validate(&parse(r#"[{"x":1},{}]"#).unwrap(), &schema);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].starts_with("$/1:"), "{errors:?}");
    }
}
