//! Minimal JSON: string escaping and number formatting for the emitters,
//! plus a small recursive-descent parser used by the schema validator and
//! tests. No external deps — the build environment has no crates-io
//! registry, so serde is not an option.

use std::fmt;

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number; non-finite values become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints an exponent for our magnitudes, but it
        // does print integers bare ("3"), which is still valid JSON.
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The JSON type name used in error messages and schema checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            // hex4 leaves pos past the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn num(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x\ny"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "line\nbreak\ttab",
            "uni ✓ \u{1}",
        ] {
            let parsed = parse(&escape(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn unicode_escapes_incl_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn number_formats_nonfinite_as_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }
}
