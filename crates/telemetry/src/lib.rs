//! Workspace-wide observability: a span/event tracer plus a metrics
//! registry, both hand-rolled (no external deps, matching the rest of the
//! workspace) and **zero-overhead when disabled**.
//!
//! # Design
//!
//! Recording is guarded twice:
//!
//! * **Compile time** — the `runtime` cargo feature (default on). With it
//!   off, every recording function below is an inline empty body: no
//!   collector, no mutex, not even the atomic flag survive in the binary.
//!   The overhead guard in `scripts/telemetry_overhead.sh` builds the
//!   bench workload both ways and fails on regression.
//! * **Run time** — a global [`AtomicBool`], off by default. Every
//!   recording function starts with one relaxed load and returns before
//!   touching its arguments. All payloads (field values, label vectors)
//!   are built by *closures* the disabled path never calls, so call sites
//!   pay one predictable branch and zero allocations until someone flips
//!   [`set_enabled`].
//!
//! # Spans, events, fields
//!
//! [`span`] opens a named node in a tree and returns a guard; dropping the
//! guard closes it and attaches it to its parent (or to the trace roots).
//! [`event`] records a leaf child of the currently open span. [`add_field`]
//! appends a key/value pair to the currently open span — used to record
//! results (cost, counters) that are only known at the end of a span.
//! Recording is meant for control threads: the collector is a single
//! mutex-guarded tree, and instrumented hot loops (the live runtime's
//! worker pool) deliberately carry no recording calls.
//!
//! # Metrics
//!
//! Counters ([`counter_add`]), gauges ([`gauge_set`]) and histograms
//! ([`histogram_record`]) are addressed by `(name, labels)` where labels
//! are `(key, value)` pairs — by convention `peer`, `stream`, `query`,
//! `flow`, `op`. Histograms keep count/sum/min/max plus log₂ buckets.
//!
//! [`snapshot_json`] serializes the registry and the trace tree to a JSON
//! document (schema in `schemas/trace.schema.json` at the workspace root);
//! [`snapshot`] returns the same data structurally for in-process
//! consumers like `dss explain`.

pub mod json;
pub mod schema;

use std::collections::BTreeMap;

/// A recorded field or label value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => json::number(*f),
            Value::Str(s) => json::escape(s),
        }
    }
}

/// One node of the recorded trace tree. Events are spans without children
/// that were never "open" — structurally identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Span {
    pub name: String,
    pub fields: Vec<(String, Value)>,
    pub children: Vec<Span>,
}

impl Span {
    /// First field with the given key, if any.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Child spans/events with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    fn to_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        out.push_str(&json::escape(&self.name));
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::escape(k));
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json(out);
        }
        out.push_str("]}");
    }
}

/// Histogram state: count/sum/min/max plus log₂ buckets. Bucket `i` counts
/// samples `v` with `2^(i-1) <= v < 2^i` (bucket 0: `v < 1`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    #[cfg_attr(not(feature = "runtime"), allow(dead_code))]
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v < 1.0 {
            0
        } else {
            64 - ((v.min(u64::MAX as f64)) as u64).leading_zeros()
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// One registry entry: a named, labelled metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    pub name: String,
    /// Sorted `(key, value)` pairs.
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

impl MetricEntry {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn to_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        out.push_str(&json::escape(&self.name));
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::escape(k));
            out.push(':');
            out.push_str(&json::escape(v));
        }
        out.push_str("},");
        match &self.value {
            MetricValue::Counter(c) => {
                out.push_str("\"kind\":\"counter\",\"value\":");
                out.push_str(&c.to_string());
            }
            MetricValue::Gauge(g) => {
                out.push_str("\"kind\":\"gauge\",\"value\":");
                out.push_str(&json::number(*g));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                    h.count,
                    json::number(h.sum),
                    json::number(h.min),
                    json::number(h.max),
                ));
                for (i, (b, n)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{b},{n}]"));
                }
                out.push(']');
            }
        }
        out.push('}');
    }
}

/// Structural copy of everything recorded since the last [`reset`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Closed top-level spans and events, in recording order.
    pub spans: Vec<Span>,
    /// Registry entries in `(name, labels)` order.
    pub metrics: Vec<MetricEntry>,
}

impl Snapshot {
    /// Top-level spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Serializes to the `schemas/trace.schema.json` document format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            m.to_json(&mut out);
        }
        out.push_str("],\"trace\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// Label list under construction. Built inside closures, so the disabled
/// path never allocates.
pub type Labels = Vec<(&'static str, String)>;

#[cfg(feature = "runtime")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static COLLECTOR: Mutex<Collector> = Mutex::new(Collector::new());
    /// Serializes tests and tools that flip the global flag.
    static SESSION: Mutex<()> = Mutex::new(());

    struct Collector {
        roots: Vec<Span>,
        open: Vec<Span>,
        metrics: BTreeMap<(String, Vec<(String, String)>), MetricValue>,
    }

    impl Collector {
        const fn new() -> Collector {
            Collector {
                roots: Vec::new(),
                open: Vec::new(),
                metrics: BTreeMap::new(),
            }
        }
    }

    fn lock() -> MutexGuard<'static, Collector> {
        COLLECTOR.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Is recording currently on? One relaxed atomic load.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns recording on or off globally.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Discards all recorded spans and metrics.
    pub fn reset() {
        let mut c = lock();
        c.roots.clear();
        c.open.clear();
        c.metrics.clear();
    }

    /// Closes the span on drop.
    #[must_use = "the span closes when the guard drops"]
    pub struct SpanGuard {
        active: bool,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            let mut c = lock();
            if let Some(done) = c.open.pop() {
                match c.open.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => c.roots.push(done),
                }
            }
        }
    }

    /// Opens a span. `fields` is only invoked when recording is enabled.
    #[inline]
    pub fn span<F, I>(name: &'static str, fields: F) -> SpanGuard
    where
        F: FnOnce() -> I,
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        if !enabled() {
            return SpanGuard { active: false };
        }
        let span = Span {
            name: name.to_string(),
            fields: fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            children: Vec::new(),
        };
        lock().open.push(span);
        SpanGuard { active: true }
    }

    /// Records a leaf event under the currently open span (or at the trace
    /// root). `fields` is only invoked when recording is enabled.
    #[inline]
    pub fn event<F, I>(name: &'static str, fields: F)
    where
        F: FnOnce() -> I,
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        if !enabled() {
            return;
        }
        let ev = Span {
            name: name.to_string(),
            fields: fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            children: Vec::new(),
        };
        let mut c = lock();
        match c.open.last_mut() {
            Some(parent) => parent.children.push(ev),
            None => c.roots.push(ev),
        }
    }

    /// Appends a field to the currently open span. `value` is only invoked
    /// when recording is enabled and a span is open.
    #[inline]
    pub fn add_field<F>(key: &'static str, value: F)
    where
        F: FnOnce() -> Value,
    {
        if !enabled() {
            return;
        }
        let mut c = lock();
        if c.open.last().is_some() {
            let v = value();
            if let Some(top) = c.open.last_mut() {
                top.fields.push((key.to_string(), v));
            }
        }
    }

    fn metric_key<F>(name: &'static str, labels: F) -> (String, Vec<(String, String)>)
    where
        F: FnOnce() -> Labels,
    {
        let mut l: Vec<(String, String)> = labels()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        l.sort();
        (name.to_string(), l)
    }

    /// Adds to a counter, creating it at zero. `labels` only runs enabled.
    #[inline]
    pub fn counter_add<F>(name: &'static str, labels: F, n: u64)
    where
        F: FnOnce() -> Labels,
    {
        if !enabled() {
            return;
        }
        let key = metric_key(name, labels);
        let mut c = lock();
        match c.metrics.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += n,
            other => *other = MetricValue::Counter(n),
        }
    }

    /// Sets a gauge to its latest value. `labels` only runs enabled.
    #[inline]
    pub fn gauge_set<F>(name: &'static str, labels: F, v: f64)
    where
        F: FnOnce() -> Labels,
    {
        if !enabled() {
            return;
        }
        let key = metric_key(name, labels);
        lock().metrics.insert(key, MetricValue::Gauge(v));
    }

    /// Records a histogram sample. `labels` only runs enabled.
    #[inline]
    pub fn histogram_record<F>(name: &'static str, labels: F, v: f64)
    where
        F: FnOnce() -> Labels,
    {
        if !enabled() {
            return;
        }
        let key = metric_key(name, labels);
        let mut c = lock();
        match c
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::default()))
        {
            MetricValue::Histogram(h) => h.record(v),
            other => {
                let mut h = Histogram::default();
                h.record(v);
                *other = MetricValue::Histogram(h);
            }
        }
    }

    /// Structural copy of everything recorded since the last [`reset`].
    /// Open (unclosed) spans are not included.
    pub fn snapshot() -> Snapshot {
        let c = lock();
        Snapshot {
            spans: c.roots.clone(),
            metrics: c
                .metrics
                .iter()
                .map(|((name, labels), value)| MetricEntry {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: value.clone(),
                })
                .collect(),
        }
    }

    /// An exclusive recording window: takes a global lock (serializing
    /// concurrent tests), clears prior state, and enables recording.
    /// Dropping the session disables recording and clears again.
    pub struct Session {
        _lock: MutexGuard<'static, ()>,
    }

    /// Opens a [`Session`]. Intended for tests and short-lived tools; the
    /// `--trace` bins flip [`set_enabled`] directly instead.
    pub fn session() -> Session {
        let lock = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        set_enabled(true);
        Session { _lock: lock }
    }

    impl Session {
        pub fn snapshot(&self) -> Snapshot {
            snapshot()
        }
        pub fn snapshot_json(&self) -> String {
            snapshot().to_json()
        }
    }

    impl Drop for Session {
        fn drop(&mut self) {
            set_enabled(false);
            reset();
        }
    }
}

#[cfg(not(feature = "runtime"))]
mod imp {
    //! Compiled-out mode: every recording call is an inline empty body.
    use super::*;

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}
    #[inline(always)]
    pub fn reset() {}

    #[must_use = "the span closes when the guard drops"]
    pub struct SpanGuard;

    #[inline(always)]
    pub fn span<F, I>(_name: &'static str, _fields: F) -> SpanGuard
    where
        F: FnOnce() -> I,
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        SpanGuard
    }

    #[inline(always)]
    pub fn event<F, I>(_name: &'static str, _fields: F)
    where
        F: FnOnce() -> I,
        I: IntoIterator<Item = (&'static str, Value)>,
    {
    }

    #[inline(always)]
    pub fn add_field<F>(_key: &'static str, _value: F)
    where
        F: FnOnce() -> Value,
    {
    }

    #[inline(always)]
    pub fn counter_add<F>(_name: &'static str, _labels: F, _n: u64)
    where
        F: FnOnce() -> Labels,
    {
    }

    #[inline(always)]
    pub fn gauge_set<F>(_name: &'static str, _labels: F, _v: f64)
    where
        F: FnOnce() -> Labels,
    {
    }

    #[inline(always)]
    pub fn histogram_record<F>(_name: &'static str, _labels: F, _v: f64)
    where
        F: FnOnce() -> Labels,
    {
    }

    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    pub struct Session;

    #[inline(always)]
    pub fn session() -> Session {
        Session
    }

    impl Session {
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::default()
        }
        pub fn snapshot_json(&self) -> String {
            Snapshot::default().to_json()
        }
    }
}

pub use imp::{
    add_field, counter_add, enabled, event, gauge_set, histogram_record, reset, session,
    set_enabled, snapshot, span, Session, SpanGuard,
};

/// [`Snapshot::to_json`] of the current state.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

#[cfg(all(test, feature = "runtime"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_skips_closures() {
        let _s = session();
        set_enabled(false);
        let mut ran = false;
        event("e", || {
            ran = true;
            [("k", Value::from(1u64))]
        });
        counter_add("c", || vec![("peer", "SP1".to_string())], 1);
        assert!(!ran, "field closure must not run while disabled");
        assert_eq!(snapshot(), Snapshot::default());
    }

    #[test]
    fn span_tree_nests_and_events_attach() {
        let s = session();
        {
            let _outer = span("outer", || [("q", Value::from("q1"))]);
            event("hit", || [("peer", Value::from("SP2"))]);
            {
                let _inner = span("inner", Vec::new);
                add_field("cost", || 1.5.into());
            }
        }
        event("root-event", Vec::new);
        let snap = s.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.field("q"), Some(&Value::from("q1")));
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "hit");
        assert_eq!(outer.children[1].name, "inner");
        assert_eq!(outer.children[1].field("cost"), Some(&Value::from(1.5)));
        assert_eq!(snap.spans[1].name, "root-event");
    }

    #[test]
    fn metrics_accumulate_by_name_and_labels() {
        let s = session();
        counter_add("drops", || vec![("peer", "SP1".to_string())], 2);
        counter_add("drops", || vec![("peer", "SP1".to_string())], 3);
        counter_add("drops", || vec![("peer", "SP2".to_string())], 1);
        gauge_set("load", || vec![("peer", "SP1".to_string())], 0.5);
        gauge_set("load", || vec![("peer", "SP1".to_string())], 0.7);
        histogram_record("svc", Vec::new, 3.0);
        histogram_record("svc", Vec::new, 5.0);
        let snap = s.snapshot();
        let drops1 = snap
            .metrics
            .iter()
            .find(|m| m.name == "drops" && m.label("peer") == Some("SP1"))
            .unwrap();
        assert_eq!(drops1.value, MetricValue::Counter(5));
        let load = snap.metrics.iter().find(|m| m.name == "load").unwrap();
        assert_eq!(load.value, MetricValue::Gauge(0.7));
        let svc = snap.metrics.iter().find(|m| m.name == "svc").unwrap();
        match &svc.value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 8.0);
                assert_eq!(h.min, 3.0);
                assert_eq!(h.max, 5.0);
                assert_eq!(h.mean(), 4.0);
                // 3.0 → bucket 2 (2 <= v < 4), 5.0 → bucket 3 (4 <= v < 8).
                assert_eq!(h.buckets.get(&2), Some(&1));
                assert_eq!(h.buckets.get(&3), Some(&1));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let s = session();
        {
            let _sp = span("register", || {
                [("query", Value::from("q\"1")), ("cost", Value::from(0.25))]
            });
            event("visit", || [("peer", Value::from("SP1"))]);
        }
        counter_add("visits", || vec![("peer", "SP1".to_string())], 7);
        histogram_record("svc", || vec![("peer", "SP1".to_string())], 50.0);
        let text = s.snapshot_json();
        let doc = json::parse(&text).expect("snapshot must be valid JSON");
        let trace = doc.get("trace").and_then(json::Json::as_array).unwrap();
        assert_eq!(trace.len(), 1);
        let reg = &trace[0];
        assert_eq!(
            reg.get("name").and_then(json::Json::as_str),
            Some("register")
        );
        let fields = reg.get("fields").unwrap();
        assert_eq!(
            fields.get("query").and_then(json::Json::as_str),
            Some("q\"1")
        );
        assert_eq!(fields.get("cost").and_then(json::Json::as_f64), Some(0.25));
        let metrics = doc.get("metrics").and_then(json::Json::as_array).unwrap();
        assert_eq!(metrics.len(), 2);
    }

    #[test]
    fn session_drop_disables_and_clears() {
        {
            let _s = session();
            event("x", Vec::new);
            assert!(enabled());
        }
        assert!(!enabled());
        assert_eq!(snapshot(), Snapshot::default());
    }
}
