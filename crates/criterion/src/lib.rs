//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-io registry, so this workspace
//! vendors a minimal benchmarking harness with the criterion API subset the
//! `crates/bench` benches use. It performs *real* measurements: each
//! `Bencher::iter` call warms up, then times batches of iterations and
//! reports mean/min ns-per-iteration plus derived throughput.
//!
//! Mode selection mirrors cargo's behaviour: `cargo bench` invokes bench
//! binaries with a `--bench` argument, which enables full measurement;
//! without it (e.g. `cargo test`, which also runs `harness = false` bench
//! targets) every benchmark body is executed once as a smoke test so the
//! test suite stays fast.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1000);

/// Top-level harness state: output mode and an optional name filter
/// (`cargo bench -- <substring>`).
pub struct Criterion {
    measure: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut measure = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => measure = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { measure, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_benchmark_id().label, None, f);
        self
    }

    fn run<F>(&mut self, label: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            measure: self.measure,
            sample: None,
        };
        f(&mut b);
        let Some(sample) = b.sample else {
            return; // smoke mode, or the body never called iter()
        };
        let mut line = format!(
            "{label:<52} time: [{} .. {}]",
            Ns(sample.min),
            Ns(sample.mean)
        );
        if let Some(tp) = throughput {
            let (amount, unit) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let per_sec = amount / (sample.mean * 1e-9);
            line.push_str(&format!("  thrpt: {}", Rate(per_sec, unit)));
        }
        println!("{line}");
    }
}

/// A named group of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Work declared per benchmark iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label: either a bare name or `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

struct Sample {
    /// Mean ns/iter over the whole measurement phase.
    mean: f64,
    /// Best (minimum) batch mean observed, ns/iter.
    min: f64,
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    measure: bool,
    sample: Option<Sample>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }

        // Warmup, counting iterations to size the measurement batches.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (WARMUP.as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Aim for ~20 batches over the measurement window.
        let batch = ((MEASURE.as_nanos() as f64 / est_ns / 20.0).ceil() as u64).max(1);
        let mut total_iters: u64 = 0;
        let mut total_ns: f64 = 0.0;
        let mut min_batch_ns = f64::INFINITY;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            total_iters += batch;
            total_ns += ns;
            min_batch_ns = min_batch_ns.min(ns / batch as f64);
        }
        self.sample = Some(Sample {
            mean: total_ns / total_iters as f64,
            min: min_batch_ns,
        });
    }
}

/// Nanoseconds pretty-printer (ns/µs/ms/s).
struct Ns(f64);

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v < 1e3 {
            write!(f, "{v:.1} ns")
        } else if v < 1e6 {
            write!(f, "{:.2} µs", v / 1e3)
        } else if v < 1e9 {
            write!(f, "{:.2} ms", v / 1e6)
        } else {
            write!(f, "{:.3} s", v / 1e9)
        }
    }
}

/// Per-second rate pretty-printer with K/M/G scaling.
struct Rate(f64, &'static str);

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (v, unit) = (self.0, self.1);
        if v < 1e3 {
            write!(f, "{v:.1} {unit}")
        } else if v < 1e6 {
            write!(f, "{:.2} K{unit}", v / 1e3)
        } else if v < 1e9 {
            write!(f, "{:.2} M{unit}", v / 1e6)
        } else {
            write!(f, "{:.2} G{unit}", v / 1e9)
        }
    }
}

/// Bundles benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            measure: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            measure: false,
            filter: Some("wanted".into()),
        };
        let mut runs = 0;
        let mut g = c.benchmark_group("group");
        g.bench_function("other", |b| b.iter(|| runs += 1));
        g.bench_function("wanted", |b| b.iter(|| runs += 10));
        g.finish();
        assert_eq!(runs, 10);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("complete", 7).label, "complete/7");
        assert_eq!(BenchmarkId::from_parameter("40/10").label, "40/10");
    }

    #[test]
    fn formatting() {
        assert_eq!(Ns(12.34).to_string(), "12.3 ns");
        assert_eq!(Ns(12_340.0).to_string(), "12.34 µs");
        assert_eq!(Rate(2.5e6, "elem/s").to_string(), "2.50 Melem/s");
    }
}
