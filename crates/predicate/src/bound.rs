//! Bounds: the edge weights of predicate graphs.
//!
//! An edge `v → w` with bound `(c, strict)` asserts `v − w ≤ c` (non-strict)
//! or `v − w < c` (strict). Tracking strictness exactly keeps implication
//! sound over decimal-valued variables — no epsilon rewriting of `<` into
//! `≤ c − ε`, which would be wrong for values of finer scale than `ε`.

use std::fmt;

use dss_xml::Decimal;

/// A difference bound `v − w (≤|<) weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bound {
    /// The constant on the right-hand side.
    pub weight: Decimal,
    /// `true` for `<`, `false` for `≤`.
    pub strict: bool,
}

impl Bound {
    /// Non-strict bound `… ≤ weight`.
    pub fn le(weight: Decimal) -> Bound {
        Bound {
            weight,
            strict: false,
        }
    }

    /// Strict bound `… < weight`.
    pub fn lt(weight: Decimal) -> Bound {
        Bound {
            weight,
            strict: true,
        }
    }

    /// Bound composition along a path: `v−w ≤ c₁` and `w−x ≤ c₂` give
    /// `v−x ≤ c₁+c₂`, strict if either part is strict.
    pub fn compose(self, other: Bound) -> Bound {
        Bound {
            weight: self.weight + other.weight,
            strict: self.strict || other.strict,
        }
    }

    /// `true` if `self` is at least as tight as `other`: every assignment
    /// satisfying `v−w (≤|<) self.weight` also satisfies
    /// `v−w (≤|<) other.weight`.
    pub fn implies(self, other: Bound) -> bool {
        if other.strict {
            // need v−w < other.weight
            self.weight < other.weight || (self.weight == other.weight && self.strict)
        } else {
            // need v−w ≤ other.weight
            self.weight <= other.weight
        }
    }

    /// Strictly tighter: implies but is not implied.
    pub fn strictly_tighter_than(self, other: Bound) -> bool {
        self.implies(other) && !other.implies(self)
    }

    /// The tighter of the two bounds (used when merging parallel edges and
    /// relaxing in shortest-path computations).
    pub fn min(self, other: Bound) -> Bound {
        if self.implies(other) {
            self
        } else {
            other
        }
    }

    /// A cycle with this total bound witnesses unsatisfiability iff the
    /// derived constraint `0 (≤|<) weight` is false.
    pub fn cycle_is_infeasible(self) -> bool {
        self.weight < Decimal::ZERO || (self.weight == Decimal::ZERO && self.strict)
    }

    /// Evaluates the bound as the comparison `lhs (≤|<) rhs + weight`
    /// (equivalent to `lhs − rhs (≤|<) weight`, but the sum form admits an
    /// exact overflow fallback: an unrepresentable `rhs + weight` lies
    /// beyond every representable `lhs` on the side of its operands'
    /// shared sign).
    pub fn satisfied_by(self, lhs: Decimal, rhs: Decimal) -> bool {
        match rhs.checked_add(self.weight) {
            Some(bound) => {
                if self.strict {
                    lhs < bound
                } else {
                    lhs <= bound
                }
            }
            // Additive overflow needs both operands on the same sign:
            // positive ⇒ the bound exceeds any lhs (satisfied), negative ⇒
            // it undercuts any lhs (violated).
            None => rhs.signum() > 0,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", if self.strict { "<" } else { "≤" }, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn implication_table() {
        // (self, other, expected self ⇒ other)
        let cases = [
            (Bound::le(d("1")), Bound::le(d("2")), true),
            (Bound::le(d("2")), Bound::le(d("1")), false),
            (Bound::le(d("1")), Bound::le(d("1")), true),
            (Bound::lt(d("1")), Bound::le(d("1")), true),
            (Bound::le(d("1")), Bound::lt(d("1")), false),
            (Bound::lt(d("1")), Bound::lt(d("1")), true),
            (Bound::le(d("0.9")), Bound::lt(d("1")), true),
            (Bound::lt(d("1")), Bound::le(d("0.99999")), false),
        ];
        for (a, b, want) in cases {
            assert_eq!(a.implies(b), want, "{a} ⇒ {b}");
        }
    }

    #[test]
    fn compose_adds_and_propagates_strictness() {
        let c = Bound::le(d("1.5")).compose(Bound::le(d("2")));
        assert_eq!(c, Bound::le(d("3.5")));
        let c = Bound::le(d("1.5")).compose(Bound::lt(d("2")));
        assert_eq!(c, Bound::lt(d("3.5")));
        let c = Bound::lt(d("-1")).compose(Bound::lt(d("1")));
        assert_eq!(c, Bound::lt(d("0")));
    }

    #[test]
    fn min_prefers_tighter() {
        assert_eq!(Bound::le(d("1")).min(Bound::le(d("2"))), Bound::le(d("1")));
        assert_eq!(Bound::le(d("2")).min(Bound::le(d("1"))), Bound::le(d("1")));
        assert_eq!(Bound::lt(d("1")).min(Bound::le(d("1"))), Bound::lt(d("1")));
        assert_eq!(Bound::le(d("1")).min(Bound::lt(d("1"))), Bound::lt(d("1")));
    }

    #[test]
    fn cycle_feasibility() {
        assert!(Bound::le(d("-0.1")).cycle_is_infeasible());
        assert!(Bound::lt(d("0")).cycle_is_infeasible());
        assert!(!Bound::le(d("0")).cycle_is_infeasible());
        assert!(!Bound::lt(d("0.1")).cycle_is_infeasible());
    }

    #[test]
    fn satisfied_by_evaluates() {
        // x − y ≤ 3
        assert!(Bound::le(d("3")).satisfied_by(d("5"), d("2")));
        assert!(!Bound::lt(d("3")).satisfied_by(d("5"), d("2")));
        assert!(Bound::lt(d("3")).satisfied_by(d("4.9"), d("2")));
    }

    #[test]
    fn strictly_tighter() {
        assert!(Bound::lt(d("1")).strictly_tighter_than(Bound::le(d("1"))));
        assert!(!Bound::le(d("1")).strictly_tighter_than(Bound::le(d("1"))));
        assert!(Bound::le(d("0")).strictly_tighter_than(Bound::lt(d("1"))));
    }
}
