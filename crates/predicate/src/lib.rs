//! Conjunctive predicate graphs (paper Section 3.3, "Matching Predicates").
//!
//! Predicates in WXQuery are conjunctions of atomic predicates of the form
//! `$v θ c` or `$v θ $w + c` with `θ ∈ {=, <, ≤, >, ≥}`. Following the
//! paper — which extends Rosenkrantz & Hunt's classic treatment of
//! conjunctive predicates — every predicate is normalized into a *weighted
//! directed graph*:
//!
//! * each variable (an absolute element path such as `coord/cel/ra`) becomes
//!   a node, plus a distinguished node for the constant zero,
//! * `$v ≤ $w + c` becomes an edge `v → w` with weight `c`,
//! * `$v ≤ c` becomes an edge `v → zero` with weight `c`,
//! * `$v ≥ c` (i.e. `0 ≤ $v − c`) becomes an edge `zero → v` with weight
//!   `−c`.
//!
//! On this graph we provide
//!
//! * **satisfiability** (no negative cycle — an unsatisfiable subscription
//!   can be rejected at registration),
//! * **minimization** (drop atoms implied by the rest — the paper minimizes
//!   predicates once at registration), and
//! * **implication** (`G' ⇒ ζ(x)` via tightest derived bounds), the engine
//!   behind Algorithm 3's `MatchPredicates`.
//!
//! Strict comparisons are tracked *exactly*: a bound is a pair (weight,
//! strict?) so `<` needs no epsilon hacks and implication is sound and
//! complete over decimal-valued variables.

pub mod atom;
pub mod bound;
pub mod graph;
pub mod matching;

pub use atom::{Atom, CompOp, Term};
pub use bound::Bound;
pub use graph::{NodeRef, PredicateGraph};
pub use matching::{match_predicates, match_predicates_edgewise};
