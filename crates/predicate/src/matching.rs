//! `MatchPredicates` (Algorithm 3 of the paper).
//!
//! Given the predicate graph `G` of a data stream considered for sharing and
//! the graph `G'` of a newly registered subscription, the stream is reusable
//! (as far as predicates are concerned) iff the predicates of `G'` *imply*
//! those of `G`: every item the new subscription wants also survives the
//! stream's selection.
//!
//! Two variants are provided:
//!
//! * [`match_predicates`] — the sound **and complete** implication test: an
//!   edge `ζ(x)` of `G` is implied if the transitive closure of `G'` derives
//!   a bound at least as tight between the same endpoints. This is the
//!   default used by the system.
//! * [`match_predicates_edgewise`] — the *literal* Algorithm 3, which only
//!   compares edge against edge (`ζ(x) ⇐ ζ(y)` for some single edge `y`
//!   connected to the equivalent node). It is sound but may miss matches
//!   that need a derivation chain; the paper sidesteps the difference by
//!   minimizing predicates at registration time. Exposed for the ablation
//!   bench and for fidelity tests.

use crate::graph::PredicateGraph;

/// Sound and complete predicate matching: `true` iff `g_new ⇒ g_stream`,
/// i.e. every edge constraint of the stream's graph is implied by the
/// closure of the subscription's graph.
///
/// Mirrors Algorithm 3's contract: "returns true if the predicates of G'
/// imply those of G, i.e., reusability of the data stream is not prevented
/// by the predicates."
pub fn match_predicates(g_stream: &PredicateGraph, g_new: &PredicateGraph) -> bool {
    if g_stream.is_trivial() {
        return true;
    }
    // The subscription's closure is recomputed per call; the plan search
    // matches one fixed subscription against many candidate streams, so a
    // caller-side cache would save work. Deliberate trade-off: predicates
    // in this domain have ≤ a handful of variables (Floyd–Warshall over
    // ≤ 6 nodes is sub-microsecond) and registrations measure in the
    // hundreds of microseconds end to end.
    let closure = g_new.closure();
    // An unsatisfiable subscription implies anything; such subscriptions are
    // rejected earlier, but stay correct here regardless.
    let unsat = closure
        .edges()
        .any(|(u, v, b)| u == v && b.cycle_is_infeasible());
    if unsat {
        return true;
    }
    g_stream.edges().all(|(u, v, want)| {
        closure
            .direct_bound(u, v)
            .is_some_and(|have| have.implies(want))
    })
}

/// The literal Algorithm 3: node-by-node, edge-by-edge matching.
///
/// For every node `v ∈ V(G)` there must be an equivalent node `v' ∈ V(G')`
/// (same element path), and for every edge `x` connected to `v` there must
/// be an edge `y` connected to `v'` with `ζ(x) ⇐ ζ(y)` — i.e. `y` runs
/// between the same endpoints and its bound is at least as tight.
pub fn match_predicates_edgewise(g_stream: &PredicateGraph, g_new: &PredicateGraph) -> bool {
    for v in g_stream.nodes() {
        // Line 4: find the equivalent node v' in G'.
        let vmatch = g_new.nodes().into_iter().any(|n| n == v);
        if !vmatch {
            return false;
        }
        // Lines 6–16: every edge connected to v must be edge-implied.
        for (u, w, want) in g_stream.edges() {
            if *u != v && *w != v {
                continue;
            }
            let ematch = g_new
                .edges()
                .any(|(u2, w2, have)| u2 == u && w2 == w && have.implies(want));
            if !ematch {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, CompOp};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn q1() -> PredicateGraph {
        PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-49.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-40.0")),
        ])
    }

    fn q2() -> PredicateGraph {
        PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1.3")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("130.5")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("135.5")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-48.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-45.0")),
        ])
    }

    /// The paper's Figure 4: Query 2's predicates imply Query 1's, so the
    /// stream produced for Query 1 can be reused for Query 2 — but not the
    /// other way around.
    #[test]
    fn figure4_q2_matches_q1_stream() {
        assert!(match_predicates(&q1(), &q2()));
        assert!(!match_predicates(&q2(), &q1()));
        assert!(match_predicates_edgewise(&q1(), &q2()));
        assert!(!match_predicates_edgewise(&q2(), &q1()));
    }

    #[test]
    fn identical_predicates_match_both_ways() {
        assert!(match_predicates(&q1(), &q1()));
        assert!(match_predicates_edgewise(&q1(), &q1()));
    }

    #[test]
    fn trivial_stream_predicate_matches_anything() {
        let unfiltered = PredicateGraph::new();
        assert!(match_predicates(&unfiltered, &q2()));
        assert!(match_predicates(&unfiltered, &PredicateGraph::new()));
        assert!(match_predicates_edgewise(&unfiltered, &q2()));
    }

    #[test]
    fn new_query_without_constraint_on_stream_var_fails() {
        // Stream was filtered on en; new query doesn't constrain en, so the
        // stream may be missing items the new query needs.
        let stream = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        assert!(!match_predicates(&stream, &q1()));
        assert!(!match_predicates_edgewise(&stream, &q1()));
    }

    #[test]
    fn looser_new_predicate_fails() {
        let stream = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        let looser = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.0"))]);
        assert!(!match_predicates(&stream, &looser));
        let tighter = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.5"))]);
        assert!(match_predicates(&stream, &tighter));
    }

    #[test]
    fn strictness_respected() {
        let stream = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Gt, d("1.3"))]);
        let ge = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        // en ≥ 1.3 does not imply en > 1.3 (the item with en = 1.3).
        assert!(!match_predicates(&stream, &ge));
        let gt = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Gt, d("1.3"))]);
        assert!(match_predicates(&stream, &gt));
    }

    #[test]
    fn complete_variant_sees_derived_implications() {
        // Stream: a ≤ 3. New subscription: a ≤ b + 1, b ≤ 2 (so a ≤ 3 is
        // derivable but not a direct edge).
        let stream = PredicateGraph::from_atoms(&[Atom::var_const(p("a"), CompOp::Le, d("3"))]);
        let sub = PredicateGraph::from_atoms(&[
            Atom::var_var(p("a"), CompOp::Le, p("b"), d("1")),
            Atom::var_const(p("b"), CompOp::Le, d("2")),
        ]);
        assert!(match_predicates(&stream, &sub));
        // The literal edgewise algorithm misses this…
        assert!(!match_predicates_edgewise(&stream, &sub));
        // …unless the subscription graph is replaced by its closure, which
        // is what predicate construction at registration time effectively
        // provides via minimization in the paper's pipeline.
        assert!(match_predicates_edgewise(&stream, &sub.closure()));
    }

    #[test]
    fn variable_to_variable_constraints() {
        // Stream keeps items with dx ≤ dy + 5. A subscription demanding
        // dx ≤ dy + 2 is shareable; one demanding dx ≤ dy + 9 is not.
        let stream =
            PredicateGraph::from_atoms(&[Atom::var_var(p("dx"), CompOp::Le, p("dy"), d("5"))]);
        let tight =
            PredicateGraph::from_atoms(&[Atom::var_var(p("dx"), CompOp::Le, p("dy"), d("2"))]);
        let loose =
            PredicateGraph::from_atoms(&[Atom::var_var(p("dx"), CompOp::Le, p("dy"), d("9"))]);
        assert!(match_predicates(&stream, &tight));
        assert!(!match_predicates(&stream, &loose));
    }

    #[test]
    fn unsatisfiable_subscription_matches_vacuously() {
        let bad = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("2")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        assert!(match_predicates(&q1(), &bad));
    }
}
