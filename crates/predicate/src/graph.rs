//! The weighted directed predicate graph and its algebra.

use std::collections::BTreeMap;
use std::fmt;

use dss_xml::{Decimal, Node, Path};

use crate::atom::{Atom, CompOp, Term};
use crate::bound::Bound;

/// A node of the predicate graph: a variable (absolute element path within
/// the stream item) or the distinguished constant-zero node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeRef {
    /// The constant zero.
    Zero,
    /// A variable, identified by its absolute element path. Two nodes are
    /// equivalent (the paper's `v =̂ v'`) iff they refer to the same element,
    /// i.e. have equal paths.
    Var(Path),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Zero => write!(f, "0"),
            NodeRef::Var(p) => write!(f, "${p}"),
        }
    }
}

/// A conjunctive predicate in graph form. Edges carry the tightest bound
/// asserted between their endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PredicateGraph {
    /// Tightest direct bound per ordered node pair.
    edges: BTreeMap<(NodeRef, NodeRef), Bound>,
}

impl PredicateGraph {
    /// The empty predicate (`true`).
    pub fn new() -> PredicateGraph {
        PredicateGraph::default()
    }

    /// Builds a graph from a conjunction of atoms.
    pub fn from_atoms<'a, I>(atoms: I) -> PredicateGraph
    where
        I: IntoIterator<Item = &'a Atom>,
    {
        let mut g = PredicateGraph::new();
        for a in atoms {
            g.add_atom(a);
        }
        g
    }

    /// `true` if the predicate has no atoms (it is the constant `true`).
    pub fn is_trivial(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of (merged) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All nodes mentioned by some edge, in deterministic order.
    pub fn nodes(&self) -> Vec<NodeRef> {
        let mut out: Vec<NodeRef> = Vec::new();
        for (u, v) in self.edges.keys() {
            if !out.contains(u) {
                out.push(u.clone());
            }
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
        out.sort();
        out
    }

    /// All variable nodes (excluding zero).
    pub fn variables(&self) -> Vec<Path> {
        self.nodes()
            .into_iter()
            .filter_map(|n| match n {
                NodeRef::Var(p) => Some(p),
                NodeRef::Zero => None,
            })
            .collect()
    }

    /// Iterates over `(source, target, bound)` edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (&NodeRef, &NodeRef, Bound)> + '_ {
        self.edges.iter().map(|((u, v), b)| (u, v, *b))
    }

    /// The direct bound between two nodes, if one was asserted.
    pub fn direct_bound(&self, u: &NodeRef, v: &NodeRef) -> Option<Bound> {
        self.edges.get(&(u.clone(), v.clone())).copied()
    }

    /// Asserts `u − v (≤|<) bound`, keeping the tightest bound per pair.
    /// Self-loops with feasible bounds (`u − u ≤ c`, `c ≥ 0`) are vacuous
    /// and dropped; infeasible self-loops are kept to mark unsatisfiability.
    pub fn add_edge(&mut self, u: NodeRef, v: NodeRef, bound: Bound) {
        if u == v && !bound.cycle_is_infeasible() {
            return;
        }
        self.edges
            .entry((u, v))
            .and_modify(|b| *b = b.min(bound))
            .or_insert(bound);
    }

    /// Normalizes an atom into edges and adds them.
    ///
    /// * `$v ≤ c`  ⇒ edge `v → 0` weight `c`
    /// * `$v ≥ c`  ⇒ edge `0 → v` weight `−c`
    /// * `$v ≤ $w + c` ⇒ edge `v → w` weight `c`
    /// * `$v ≥ $w + c` ⇒ edge `w → v` weight `−c`
    /// * `=` asserts both directions; strict forms set the strict flag.
    pub fn add_atom(&mut self, atom: &Atom) {
        let v = NodeRef::Var(atom.var.clone());
        let (w, c) = match &atom.rhs {
            Term::Const(c) => (NodeRef::Zero, *c),
            Term::VarPlus(w, c) => (NodeRef::Var(w.clone()), *c),
        };
        match atom.op {
            CompOp::Le => self.add_edge(v, w, Bound::le(c)),
            CompOp::Lt => self.add_edge(v, w, Bound::lt(c)),
            CompOp::Ge => self.add_edge(w, v, Bound::le(-c)),
            CompOp::Gt => self.add_edge(w, v, Bound::lt(-c)),
            CompOp::Eq => {
                self.add_edge(v.clone(), w.clone(), Bound::le(c));
                self.add_edge(w, v, Bound::le(-c));
            }
        }
    }

    /// All-pairs tightest derived bounds (Floyd–Warshall over the bound
    /// semiring). The result's direct edges *are* the derived bounds.
    pub fn closure(&self) -> PredicateGraph {
        let nodes = self.nodes();
        let n = nodes.len();
        let idx: BTreeMap<&NodeRef, usize> = nodes.iter().zip(0..).collect();
        let mut dist: Vec<Vec<Option<Bound>>> = vec![vec![None; n]; n];
        for ((u, v), b) in &self.edges {
            let (i, j) = (idx[u], idx[v]);
            dist[i][j] = Some(match dist[i][j] {
                Some(existing) => existing.min(*b),
                None => *b,
            });
        }
        for k in 0..n {
            for i in 0..n {
                let Some(ik) = dist[i][k] else { continue };
                let row_k = dist[k].clone();
                for (j, cell) in dist[i].iter_mut().enumerate() {
                    let Some(kj) = row_k[j] else { continue };
                    let via = ik.compose(kj);
                    *cell = Some(match *cell {
                        Some(existing) => existing.min(via),
                        None => via,
                    });
                }
            }
        }
        let mut out = PredicateGraph::new();
        for i in 0..n {
            for j in 0..n {
                if let Some(b) = dist[i][j] {
                    if i == j && !b.cycle_is_infeasible() {
                        continue;
                    }
                    out.edges.insert((nodes[i].clone(), nodes[j].clone()), b);
                }
            }
        }
        out
    }

    /// `true` if some assignment of decimals to variables satisfies all
    /// atoms — i.e. the graph has no infeasible cycle. The paper rejects
    /// subscriptions with unsatisfiable predicates at registration time.
    pub fn is_satisfiable(&self) -> bool {
        let closure = self.closure();
        closure
            .edges
            .iter()
            .all(|((u, v), b)| u != v || !b.cycle_is_infeasible())
    }

    /// Tightest derived bound `u − v (≤|<) …`, if any. Prefer
    /// [`closure`](Self::closure) when testing many pairs.
    pub fn implied_bound(&self, u: &NodeRef, v: &NodeRef) -> Option<Bound> {
        self.closure().direct_bound(u, v)
    }

    /// `true` if this predicate implies the atom (every satisfying
    /// assignment of `self` satisfies `atom`). An unsatisfiable predicate
    /// implies everything.
    pub fn implies_atom(&self, atom: &Atom) -> bool {
        let single = PredicateGraph::from_atoms([atom]);
        let closure = self.closure();
        if !closure
            .edges
            .iter()
            .all(|((u, v), b)| u != v || !b.cycle_is_infeasible())
        {
            return true; // self is unsatisfiable
        }
        single.edges.iter().all(|((u, v), want)| {
            closure
                .direct_bound(u, v)
                .is_some_and(|have| have.implies(*want))
        })
    }

    /// Minimizes the predicate: removes every edge whose bound is implied by
    /// the remaining edges. The paper performs this once per subscription at
    /// registration. Unsatisfiable graphs are returned unchanged.
    pub fn minimize(&self) -> PredicateGraph {
        if !self.is_satisfiable() {
            return self.clone();
        }
        let mut g = self.clone();
        let keys: Vec<(NodeRef, NodeRef)> = g.edges.keys().cloned().collect();
        for key in keys {
            // Tentatively remove the edge; keep it removed only when the
            // remaining edges still derive a bound at least as tight.
            let Some(bound) = g.edges.remove(&key) else {
                continue;
            };
            let redundant = g
                .closure()
                .direct_bound(&key.0, &key.1)
                .is_some_and(|have| have.implies(bound));
            if !redundant {
                g.edges.insert(key, bound);
            }
        }
        g
    }

    /// The *hull* of two predicates: the tightest conjunctive predicate
    /// implied by **both** (per node pair, the looser of the two derived
    /// bounds; pairs bounded in only one input are unbounded in the hull).
    ///
    /// This is the widening operation of the paper's ongoing work: a stream
    /// filtered with `hull(σ₁, σ₂)` contains every item either subscription
    /// needs, so both can share it after re-applying their own selections.
    /// For interval predicates the hull is the bounding box.
    pub fn hull(&self, other: &PredicateGraph) -> PredicateGraph {
        // An unsatisfiable side contributes no items; the hull is then the
        // other predicate.
        if !self.is_satisfiable() {
            return other.minimize();
        }
        if !other.is_satisfiable() {
            return self.minimize();
        }
        let a = self.closure();
        let b = other.closure();
        let mut out = PredicateGraph::new();
        for (u, v, ba) in a.edges() {
            let Some(bb) = b.direct_bound(u, v) else {
                continue; // unbounded in `other` ⇒ unbounded in the hull
            };
            // Variable-to-variable bounds enter the hull only when both
            // inputs asserted one directly. Closures also derive var-var
            // bounds from independent per-variable ranges; carrying those
            // into the hull would add join-like constraints that are
            // marginally tighter than the hull's own ranges — semantically
            // near-redundant, but noise for downstream matching and
            // selectivity estimation. Dropping them only loosens the hull,
            // which stays implied by both inputs.
            let both_vars = matches!(u, NodeRef::Var(_)) && matches!(v, NodeRef::Var(_));
            if both_vars
                && !(self.direct_bound(u, v).is_some() && other.direct_bound(u, v).is_some())
            {
                continue;
            }
            // The looser bound is the one implied by both.
            let loose = if ba.implies(bb) { bb } else { ba };
            out.add_edge(u.clone(), v.clone(), loose);
        }
        out.minimize()
    }

    /// Evaluates the predicate against a stream item: every edge constraint
    /// must hold, with missing/non-numeric elements failing closed.
    pub fn evaluate(&self, item: &Node) -> bool {
        self.edges.iter().all(|((u, v), b)| {
            let lv = match self.node_value(u, item) {
                Some(x) => x,
                None => return false,
            };
            let rv = match self.node_value(v, item) {
                Some(x) => x,
                None => return false,
            };
            b.satisfied_by(lv, rv)
        })
    }

    fn node_value(&self, n: &NodeRef, item: &Node) -> Option<Decimal> {
        match n {
            NodeRef::Zero => Some(Decimal::ZERO),
            NodeRef::Var(p) => p.decimal_value(item).ok(),
        }
    }

    /// Reconstructs a human-readable conjunction of atoms from the edges.
    pub fn to_atoms(&self) -> Vec<Atom> {
        self.edges
            .iter()
            .map(|((u, v), b)| {
                let op = |strict: bool| if strict { CompOp::Lt } else { CompOp::Le };
                match (u, v) {
                    (NodeRef::Var(p), NodeRef::Zero) => {
                        Atom::var_const(p.clone(), op(b.strict), b.weight)
                    }
                    (NodeRef::Zero, NodeRef::Var(p)) => {
                        // 0 − v ≤ c  ⇔  v ≥ −c
                        let geop = if b.strict { CompOp::Gt } else { CompOp::Ge };
                        Atom::var_const(p.clone(), geop, -b.weight)
                    }
                    (NodeRef::Var(p), NodeRef::Var(q)) => {
                        Atom::var_var(p.clone(), op(b.strict), q.clone(), b.weight)
                    }
                    (NodeRef::Zero, NodeRef::Zero) => {
                        // Only stored when infeasible (0 ≤ c < 0): encode as
                        // an always-false constant atom on a dummy spelling.
                        Atom::var_const(Path::this(), op(b.strict), b.weight)
                    }
                }
            })
            .collect()
    }
}

impl fmt::Display for PredicateGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for ((u, v), b) in &self.edges {
            if !first {
                write!(f, " and ")?;
            }
            first = false;
            write!(f, "{u} - {v} {b}")?;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    /// Query 1's selection predicate (the Vela region, Figure 3/4).
    pub fn q1_atoms() -> Vec<Atom> {
        vec![
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-49.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-40.0")),
        ]
    }

    /// Query 2's selection predicate (RX J0852.0-4622 plus the energy cut).
    pub fn q2_atoms() -> Vec<Atom> {
        vec![
            Atom::var_const(p("en"), CompOp::Ge, d("1.3")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("130.5")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("135.5")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-48.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-45.0")),
        ]
    }

    #[test]
    fn q1_graph_structure_matches_figure3() {
        let g = PredicateGraph::from_atoms(&q1_atoms());
        // Nodes: zero, ra, dec.
        assert_eq!(g.nodes().len(), 3);
        // ra ≤ 138 ⇒ ra→0 weight 138; ra ≥ 120 ⇒ 0→ra weight −120; etc.
        let ra = NodeRef::Var(p("coord/cel/ra"));
        let dec = NodeRef::Var(p("coord/cel/dec"));
        assert_eq!(
            g.direct_bound(&ra, &NodeRef::Zero),
            Some(Bound::le(d("138.0")))
        );
        assert_eq!(
            g.direct_bound(&NodeRef::Zero, &ra),
            Some(Bound::le(d("-120.0")))
        );
        assert_eq!(
            g.direct_bound(&dec, &NodeRef::Zero),
            Some(Bound::le(d("-40.0")))
        );
        assert_eq!(
            g.direct_bound(&NodeRef::Zero, &dec),
            Some(Bound::le(d("49.0")))
        );
    }

    #[test]
    fn parallel_atoms_keep_tightest() {
        let mut g = PredicateGraph::new();
        g.add_atom(&Atom::var_const(p("en"), CompOp::Le, d("3")));
        g.add_atom(&Atom::var_const(p("en"), CompOp::Le, d("2")));
        g.add_atom(&Atom::var_const(p("en"), CompOp::Lt, d("2")));
        let en = NodeRef::Var(p("en"));
        assert_eq!(g.direct_bound(&en, &NodeRef::Zero), Some(Bound::lt(d("2"))));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn satisfiability() {
        let g = PredicateGraph::from_atoms(&q1_atoms());
        assert!(g.is_satisfiable());

        // en ≥ 2 and en ≤ 1 is unsatisfiable.
        let bad = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("2")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        assert!(!bad.is_satisfiable());

        // en ≥ 1 and en ≤ 1 is satisfiable (en = 1)…
        let tight = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        assert!(tight.is_satisfiable());

        // …but en ≥ 1 and en < 1 is not: strictness matters.
        let strict = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1")),
            Atom::var_const(p("en"), CompOp::Lt, d("1")),
        ]);
        assert!(!strict.is_satisfiable());
    }

    #[test]
    fn transitive_unsatisfiability_through_variables() {
        // a ≤ b, b ≤ c, c ≤ a − 1 forms a negative cycle.
        let g = PredicateGraph::from_atoms(&[
            Atom::var_var(p("a"), CompOp::Le, p("b"), d("0")),
            Atom::var_var(p("b"), CompOp::Le, p("c"), d("0")),
            Atom::var_var(p("c"), CompOp::Le, p("a"), d("-1")),
        ]);
        assert!(!g.is_satisfiable());
    }

    #[test]
    fn implies_atom_direct_and_derived() {
        let g = PredicateGraph::from_atoms(&q2_atoms());
        // Direct: ra ≥ 130.5 implies ra ≥ 120.0 (the Q1 bound).
        assert!(g.implies_atom(&Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0"))));
        // Not implied: ra ≥ 131.
        assert!(!g.implies_atom(&Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("131"))));
        // Derived through a variable chain: a ≤ b + 1, b ≤ 2 ⇒ a ≤ 3.
        let chain = PredicateGraph::from_atoms(&[
            Atom::var_var(p("a"), CompOp::Le, p("b"), d("1")),
            Atom::var_const(p("b"), CompOp::Le, d("2")),
        ]);
        assert!(chain.implies_atom(&Atom::var_const(p("a"), CompOp::Le, d("3"))));
        assert!(chain.implies_atom(&Atom::var_const(p("a"), CompOp::Le, d("3.5"))));
        assert!(!chain.implies_atom(&Atom::var_const(p("a"), CompOp::Le, d("2.9"))));
        assert!(!chain.implies_atom(&Atom::var_const(p("a"), CompOp::Lt, d("3"))));
    }

    #[test]
    fn strict_implication() {
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Gt, d("1.3"))]);
        assert!(g.implies_atom(&Atom::var_const(p("en"), CompOp::Ge, d("1.3"))));
        assert!(g.implies_atom(&Atom::var_const(p("en"), CompOp::Gt, d("1.3"))));
        assert!(!g.implies_atom(&Atom::var_const(p("en"), CompOp::Ge, d("1.4"))));
        let ge = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        assert!(!ge.implies_atom(&Atom::var_const(p("en"), CompOp::Gt, d("1.3"))));
    }

    #[test]
    fn unsatisfiable_implies_everything() {
        let bad = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("2")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        assert!(bad.implies_atom(&Atom::var_const(p("other"), CompOp::Le, d("0"))));
    }

    #[test]
    fn equality_asserts_both_directions() {
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("phc"), CompOp::Eq, d("5"))]);
        assert!(g.implies_atom(&Atom::var_const(p("phc"), CompOp::Le, d("5"))));
        assert!(g.implies_atom(&Atom::var_const(p("phc"), CompOp::Ge, d("5"))));
        assert!(g.implies_atom(&Atom::var_const(p("phc"), CompOp::Le, d("6"))));
        assert!(!g.implies_atom(&Atom::var_const(p("phc"), CompOp::Ge, d("6"))));
    }

    #[test]
    fn minimize_drops_redundant_atoms() {
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1.3")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.0")), // redundant
            Atom::var_const(p("en"), CompOp::Le, d("5")),
        ]);
        // The two ≥ atoms merge into one edge already (tightest-bound
        // merge), so minimize keeps 2 edges.
        assert_eq!(g.minimize().edge_count(), 2);

        // Transitively redundant edge: a ≤ b, b ≤ 0 imply a ≤ 0.
        let g = PredicateGraph::from_atoms(&[
            Atom::var_var(p("a"), CompOp::Le, p("b"), d("0")),
            Atom::var_const(p("b"), CompOp::Le, d("0")),
            Atom::var_const(p("a"), CompOp::Le, d("0")),
        ]);
        assert_eq!(g.edge_count(), 3);
        let m = g.minimize();
        assert_eq!(m.edge_count(), 2);
        // Semantics preserved:
        assert!(m.implies_atom(&Atom::var_const(p("a"), CompOp::Le, d("0"))));
    }

    #[test]
    fn minimize_preserves_satisfiable_semantics() {
        let g = PredicateGraph::from_atoms(&q2_atoms());
        let m = g.minimize();
        for atom in q2_atoms() {
            assert!(
                m.implies_atom(&atom),
                "minimized graph must still imply {atom}"
            );
        }
        assert!(m.edge_count() <= g.edge_count());
    }

    #[test]
    fn evaluate_against_items() {
        let g = PredicateGraph::from_atoms(&q1_atoms());
        let inside = Node::elem(
            "photon",
            vec![Node::elem(
                "coord",
                vec![Node::elem(
                    "cel",
                    vec![Node::leaf("ra", "130.7"), Node::leaf("dec", "-46.2")],
                )],
            )],
        );
        assert!(g.evaluate(&inside));
        let outside = Node::elem(
            "photon",
            vec![Node::elem(
                "coord",
                vec![Node::elem(
                    "cel",
                    vec![Node::leaf("ra", "100.0"), Node::leaf("dec", "-46.2")],
                )],
            )],
        );
        assert!(!g.evaluate(&outside));
        // Missing elements fail closed.
        assert!(!g.evaluate(&Node::empty("photon")));
        // The trivial predicate accepts everything.
        assert!(PredicateGraph::new().evaluate(&Node::empty("photon")));
    }

    #[test]
    fn to_atoms_round_trips_semantics() {
        let g = PredicateGraph::from_atoms(&q2_atoms());
        let rebuilt = PredicateGraph::from_atoms(&g.to_atoms());
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn display_is_stable() {
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        assert_eq!(g.to_string(), "0 - $en ≤ -1.3");
        assert_eq!(PredicateGraph::new().to_string(), "true");
    }

    #[test]
    fn closure_contains_derived_edges() {
        let g = PredicateGraph::from_atoms(&[
            Atom::var_var(p("a"), CompOp::Le, p("b"), d("1")),
            Atom::var_const(p("b"), CompOp::Lt, d("2")),
        ]);
        let c = g.closure();
        let a = NodeRef::Var(p("a"));
        assert_eq!(c.direct_bound(&a, &NodeRef::Zero), Some(Bound::lt(d("3"))));
    }

    #[test]
    fn hull_is_implied_by_both_inputs() {
        let g1 = PredicateGraph::from_atoms(&q1_atoms());
        let g2 = PredicateGraph::from_atoms(&q2_atoms());
        let h = g1.hull(&g2);
        // Every atom of the hull is implied by each input.
        for atom in h.to_atoms() {
            assert!(g1.implies_atom(&atom), "hull atom {atom} not implied by g1");
            assert!(g2.implies_atom(&atom), "hull atom {atom} not implied by g2");
        }
        // Q2's region is inside Q1's and Q2's extra en-cut is unbounded in
        // Q1, so the hull is exactly Q1's predicate.
        assert_eq!(h, g1.minimize());
    }

    #[test]
    fn hull_of_disjoint_ranges_is_bounding_box() {
        let low = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1")),
            Atom::var_const(p("en"), CompOp::Le, d("2")),
        ]);
        let high = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("5")),
            Atom::var_const(p("en"), CompOp::Le, d("6")),
        ]);
        let h = low.hull(&high);
        assert!(h.implies_atom(&Atom::var_const(p("en"), CompOp::Ge, d("1"))));
        assert!(h.implies_atom(&Atom::var_const(p("en"), CompOp::Le, d("6"))));
        assert!(!h.implies_atom(&Atom::var_const(p("en"), CompOp::Le, d("5.9"))));
        assert!(!h.implies_atom(&Atom::var_const(p("en"), CompOp::Ge, d("1.1"))));
    }

    #[test]
    fn hull_drops_one_sided_constraints() {
        let with_en = PredicateGraph::from_atoms(&[
            Atom::var_const(p("ra"), CompOp::Ge, d("120")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.3")),
        ]);
        let without_en =
            PredicateGraph::from_atoms(&[Atom::var_const(p("ra"), CompOp::Ge, d("100"))]);
        let h = with_en.hull(&without_en);
        assert!(h.implies_atom(&Atom::var_const(p("ra"), CompOp::Ge, d("100"))));
        // en is unconstrained in one input, so the hull drops it entirely.
        assert!(!h.implies_atom(&Atom::var_const(p("en"), CompOp::Ge, d("0"))));
    }

    #[test]
    fn hull_with_trivial_is_trivial() {
        let g = PredicateGraph::from_atoms(&q1_atoms());
        assert!(g.hull(&PredicateGraph::new()).is_trivial());
        assert!(PredicateGraph::new().hull(&g).is_trivial());
    }

    #[test]
    fn hull_with_unsatisfiable_is_other_side() {
        let g = PredicateGraph::from_atoms(&q1_atoms());
        let bad = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("2")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        assert_eq!(g.hull(&bad), g.minimize());
        assert_eq!(bad.hull(&g), g.minimize());
    }

    #[test]
    fn hull_respects_strictness() {
        let strict = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Lt, d("2"))]);
        let loose = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Le, d("2"))]);
        let h = strict.hull(&loose);
        // ≤ 2 is the looser bound.
        assert!(h.implies_atom(&Atom::var_const(p("en"), CompOp::Le, d("2"))));
        assert!(!h.implies_atom(&Atom::var_const(p("en"), CompOp::Lt, d("2"))));
    }

    #[test]
    fn variables_listed() {
        let g = PredicateGraph::from_atoms(&q2_atoms());
        assert_eq!(
            g.variables(),
            vec![p("coord/cel/dec"), p("coord/cel/ra"), p("en")]
        );
    }
}
