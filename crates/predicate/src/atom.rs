//! Atomic predicates: `$v θ c` and `$v θ $w + c`.

use std::fmt;

use dss_xml::{Decimal, Node, Path};

/// Comparison operator `θ ∈ {=, <, ≤, >, ≥}` (Section 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    /// Evaluates `lhs θ rhs`.
    pub fn evaluate(self, lhs: Decimal, rhs: Decimal) -> bool {
        match self {
            CompOp::Eq => lhs == rhs,
            CompOp::Lt => lhs < rhs,
            CompOp::Le => lhs <= rhs,
            CompOp::Gt => lhs > rhs,
            CompOp::Ge => lhs >= rhs,
        }
    }

    /// The operator with sides swapped: `a θ b ⇔ b θ.flip() a`.
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
        }
    }

    /// Parses the WXQuery operator spelling.
    pub fn parse(s: &str) -> Option<CompOp> {
        match s {
            "=" => Some(CompOp::Eq),
            "<" => Some(CompOp::Lt),
            "<=" => Some(CompOp::Le),
            ">" => Some(CompOp::Gt),
            ">=" => Some(CompOp::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Eq => "=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Right-hand side of an atomic predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant `c`.
    Const(Decimal),
    /// A variable plus constant offset, `$w + c`.
    VarPlus(Path, Decimal),
}

/// An atomic predicate `$v θ term`, where `$v` is an absolute element path
/// within a stream item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub var: Path,
    pub op: CompOp,
    pub rhs: Term,
}

impl Atom {
    /// `$v θ c`.
    pub fn var_const(var: Path, op: CompOp, c: Decimal) -> Atom {
        Atom {
            var,
            op,
            rhs: Term::Const(c),
        }
    }

    /// `$v θ $w + c`.
    pub fn var_var(var: Path, op: CompOp, w: Path, c: Decimal) -> Atom {
        Atom {
            var,
            op,
            rhs: Term::VarPlus(w, c),
        }
    }

    /// Variables referenced by the atom.
    pub fn variables(&self) -> Vec<&Path> {
        match &self.rhs {
            Term::Const(_) => vec![&self.var],
            Term::VarPlus(w, _) => vec![&self.var, w],
        }
    }

    /// Evaluates the atom against a stream item. A missing or non-numeric
    /// referenced element makes the atom false (the item cannot be proven to
    /// satisfy the predicate).
    pub fn evaluate(&self, item: &Node) -> bool {
        let Ok(v) = self.var.decimal_value(item) else {
            return false;
        };
        match &self.rhs {
            Term::Const(c) => self.op.evaluate(v, *c),
            Term::VarPlus(w, c) => {
                let Ok(wv) = w.decimal_value(item) else {
                    return false;
                };
                match wv.checked_add(*c) {
                    Some(rhs) => self.op.evaluate(v, rhs),
                    None => false,
                }
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rhs {
            Term::Const(c) => write!(f, "${} {} {}", self.var, self.op, c),
            Term::VarPlus(w, c) => {
                if *c == Decimal::ZERO {
                    write!(f, "${} {} ${}", self.var, self.op, w)
                } else {
                    write!(f, "${} {} ${} + {}", self.var, self.op, w, c)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn photon(ra: &str, en: &str) -> Node {
        Node::elem(
            "photon",
            vec![
                Node::elem("coord", vec![Node::elem("cel", vec![Node::leaf("ra", ra)])]),
                Node::leaf("en", en),
            ],
        )
    }

    #[test]
    fn comp_op_evaluate() {
        assert!(CompOp::Ge.evaluate(d("1.3"), d("1.3")));
        assert!(!CompOp::Gt.evaluate(d("1.3"), d("1.3")));
        assert!(CompOp::Eq.evaluate(d("2.50"), d("2.5")));
        assert!(CompOp::Lt.evaluate(d("-49"), d("-40")));
        assert!(CompOp::Le.evaluate(d("-49"), d("-49.0")));
    }

    #[test]
    fn comp_op_flip_is_involutive_on_inequalities() {
        for op in [CompOp::Eq, CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge] {
            assert_eq!(op.flip().flip(), op);
        }
        // a < b ⇔ b > a
        assert!(CompOp::Lt.evaluate(d("1"), d("2")));
        assert!(CompOp::Lt.flip().evaluate(d("2"), d("1")));
    }

    #[test]
    fn comp_op_parse() {
        assert_eq!(CompOp::parse(">="), Some(CompOp::Ge));
        assert_eq!(CompOp::parse("="), Some(CompOp::Eq));
        assert_eq!(CompOp::parse("=="), None);
        assert_eq!(CompOp::parse("!="), None);
    }

    #[test]
    fn atom_evaluate_var_const() {
        let a = Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0"));
        assert!(a.evaluate(&photon("130.7", "1.4")));
        assert!(!a.evaluate(&photon("119.9", "1.4")));
        assert!(a.evaluate(&photon("120.0", "1.4")));
    }

    #[test]
    fn atom_evaluate_var_var() {
        // en >= ra + (-129): satisfied when en - ra >= -129
        let a = Atom::var_var(p("en"), CompOp::Ge, p("coord/cel/ra"), d("-129.5"));
        assert!(a.evaluate(&photon("130.7", "1.4"))); // 1.4 >= 130.7-129.5=1.2
        assert!(!a.evaluate(&photon("131.0", "1.4"))); // 1.4 >= 1.5 is false
    }

    #[test]
    fn missing_element_fails_closed() {
        let a = Atom::var_const(p("missing"), CompOp::Ge, d("0"));
        assert!(!a.evaluate(&photon("130.7", "1.4")));
        let b = Atom::var_var(p("en"), CompOp::Ge, p("nope"), d("0"));
        assert!(!b.evaluate(&photon("130.7", "1.4")));
    }

    #[test]
    fn non_numeric_fails_closed() {
        let a = Atom::var_const(p("en"), CompOp::Ge, d("0"));
        assert!(!a.evaluate(&photon("130.7", "bright")));
    }

    #[test]
    fn display() {
        assert_eq!(
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0")).to_string(),
            "$coord/cel/ra >= 120"
        );
        assert_eq!(
            Atom::var_var(p("a"), CompOp::Le, p("b"), d("3")).to_string(),
            "$a <= $b + 3"
        );
        assert_eq!(
            Atom::var_var(p("a"), CompOp::Eq, p("b"), Decimal::ZERO).to_string(),
            "$a = $b"
        );
    }

    #[test]
    fn variables() {
        let a = Atom::var_var(p("a"), CompOp::Le, p("b"), d("3"));
        assert_eq!(a.variables(), vec![&p("a"), &p("b")]);
        let b = Atom::var_const(p("a"), CompOp::Le, d("3"));
        assert_eq!(b.variables(), vec![&p("a")]);
    }
}
