//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates-io registry, so this
//! workspace vendors a minimal, API-compatible subset of `rand 0.8`: a
//! deterministic [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! and a [`Rng`] trait supporting `gen_range` over integer and float ranges
//! plus `gen_bool`. Streams generated from a given seed are stable across
//! runs (the whole workspace relies on that for reproducible scenarios) but
//! are NOT the same streams the real `rand` crate would produce.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng` we use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform fraction in [0, 1) with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// User-facing random value generation, as a blanket extension of
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: splitmix64 state advance (Steele et al.),
    /// full-period over 64-bit state and statistically solid for test-data
    /// generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-49i64..-40);
            assert!((-49..-40).contains(&v));
            let w = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(0.2..1.8);
            assert!((0.2..1.8).contains(&v));
            let w = rng.gen_range(120.0..=138.0);
            assert!((120.0..=138.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
