//! The super-peer P2P network substrate and simulator.
//!
//! The paper evaluates StreamGlobe on a blade cluster; this crate replaces
//! that testbed with a faithful discrete simulator (see DESIGN.md's
//! substitution table): [`topology`] models super-peer backbones with
//! bandwidths and peer capacities, [`routing`] provides shortest paths,
//! [`flow`] describes the deployed streams (with *taps* modeling stream
//! duplication for sharing), and [`sim`] executes the very same operator
//! pipelines over the very same XML items, charging connections by exact
//! serialized bytes and peers by operator plus forwarding work.

//! The live counterpart lives in [`runtime`]: a deterministic
//! discrete-event scheduler with timestamped items, bounded per-peer
//! mailboxes, link latencies, and scripted fault injection.

pub mod catalog;
pub mod flow;
pub mod metrics;
pub mod pool;
pub mod routing;
pub mod runtime;
pub mod shared;
pub mod sim;
pub mod topology;

pub use catalog::{Catalog, ChainId, LensVerdicts};
pub use flow::{build_flow_pipeline, Deployment, FlowId, FlowInput, FlowMut, FlowOp, StreamFlow};
pub use metrics::NetworkMetrics;
pub use pool::{max_parallelism, run_scoped, WorkerPool};
pub use routing::{distance, path_edges, shortest_path};
pub use runtime::{
    FaultEvent, FaultKind, FaultScript, LiveConfig, LiveRuntime, MailboxStats, QueryMetrics,
    RuntimeMetrics, SourceModel, SyncMailbox,
};
pub use shared::{build_flow_op, op_is_stateful, ops_mergeable, FlowDag, GroupKey};
pub use sim::{run, try_run, ConfigError, SimConfig, SimOutcome};
pub use topology::{
    example_topology, grid_topology, hierarchical_topology, Edge, EdgeId, NodeId, Peer, PeerKind,
    Topology,
};
