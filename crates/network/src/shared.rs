//! Intra-peer operator sharing: fusing the flows that consume one input
//! stream at one peer into a single prefix-sharing [`OpDag`].
//!
//! The paper's stream sharing removes redundant work *between* peers; this
//! module removes it *within* a peer. All flows reading the same input
//! stream (the same raw source, or taps on the same parent flow) at a peer
//! form a *sharing group*, keyed by [`GroupKey`]. Their operator lists are
//! factored into a trie whose nodes each execute once per input item,
//! however many flows ride them — see [`dss_engine::OpDag`].
//!
//! Merging follows the paper's `MatchAggregations` discipline, implemented
//! by [`ops_mergeable`]: stateless operators merge on structural equality,
//! while windowed/stateful operators (aggregation, window output,
//! re-aggregation, re-windowing) additionally require *identical window
//! specifications* — two aggregates over different windows never share an
//! instance even if everything else matches.

use dss_engine::{
    build_operator, DagNodeStats, OpDag, ReAggregateOp, ReWindowOp, RestructureOp, StreamOperator,
};
use dss_properties::Operator;
use dss_xml::Node;

use crate::flow::{FlowId, FlowInput, FlowOp};

/// Identity of the input stream a flow consumes at its processing node.
/// Flows at the same peer with equal keys read the very same item sequence
/// and are fused into one [`FlowDag`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum GroupKey {
    /// A raw registered source stream, by name.
    Source(String),
    /// A tap on another flow's output stream.
    Tap(FlowId),
}

impl GroupKey {
    /// The sharing-group key for a flow input.
    pub fn of(input: &FlowInput) -> GroupKey {
        match input {
            FlowInput::Source { stream } => GroupKey::Source(stream.clone()),
            FlowInput::Tap { parent } => GroupKey::Tap(*parent),
        }
    }
}

/// Instantiates the executable operator for one flow operator.
pub fn build_flow_op(op: &FlowOp) -> Box<dyn StreamOperator + Send> {
    match op {
        FlowOp::Standard(o) => build_operator(o),
        FlowOp::ReAggregate { reused, new } => {
            Box::new(ReAggregateOp::new(reused.clone(), new.clone()))
        }
        FlowOp::ReWindow { reused, new } => Box::new(ReWindowOp::new(reused.clone(), new.clone())),
        FlowOp::Restructure {
            template,
            agg,
            window,
        } => match (agg, window) {
            (Some(a), _) => Box::new(RestructureOp::for_aggregate(template.clone(), *a)),
            (None, true) => Box::new(RestructureOp::for_window(template.clone())),
            (None, false) => Box::new(RestructureOp::new(template.clone())),
        },
    }
}

/// `true` when `op` buffers window state across items.
pub fn op_is_stateful(op: &FlowOp) -> bool {
    matches!(
        op,
        FlowOp::Standard(Operator::Aggregation(_))
            | FlowOp::Standard(Operator::WindowOutput(_))
            | FlowOp::ReAggregate { .. }
            | FlowOp::ReWindow { .. }
    )
}

/// May two operator descriptions share one executing instance?
///
/// Stateless operators share when structurally equal. Stateful (windowed)
/// operators apply the paper's `MatchAggregations` rule: their window
/// specifications must be *identical* — matching spec fields alone is not
/// enough, because a shared instance has exactly one window sequence.
pub fn ops_mergeable(a: &FlowOp, b: &FlowOp) -> bool {
    use FlowOp::*;
    use Operator as O;
    match (a, b) {
        (Standard(O::Aggregation(x)), Standard(O::Aggregation(y))) => {
            x.window == y.window && x == y
        }
        (Standard(O::WindowOutput(x)), Standard(O::WindowOutput(y))) => {
            x.window == y.window && x == y
        }
        (
            ReAggregate {
                reused: xr,
                new: xn,
            },
            ReAggregate {
                reused: yr,
                new: yn,
            },
        ) => xn.window == yn.window && (xr, xn) == (yr, yn),
        (
            ReWindow {
                reused: xr,
                new: xn,
            },
            ReWindow {
                reused: yr,
                new: yn,
            },
        ) => xn.window == yn.window && (xr, xn) == (yr, yn),
        _ => a == b,
    }
}

/// One peer's fused operator DAG for one input stream: the flows of a
/// sharing group, keyed by [`FlowId`] sinks.
#[derive(Debug, Default)]
pub struct FlowDag {
    dag: OpDag<FlowOp>,
}

impl FlowDag {
    /// An empty DAG.
    pub fn new() -> FlowDag {
        FlowDag::default()
    }

    /// Registers `flow`'s operator chain, merging shared prefixes.
    pub fn register(&mut self, flow: FlowId, ops: &[FlowOp]) {
        self.dag
            .register(flow, Self::instantiate(ops), ops_mergeable);
    }

    /// Replaces `flow`'s chain, rebuilding only the suffix below the first
    /// changed operator: kept prefix nodes retain their window state.
    pub fn reregister(&mut self, flow: FlowId, ops: &[FlowOp]) {
        self.dag
            .reregister(flow, Self::instantiate(ops), ops_mergeable);
    }

    /// [`Self::reregister`], but migrating open window state across the
    /// rebuild where the old and new specs make it exact (identical specs,
    /// or widening the step along the lattice): the planned loss-free
    /// handoff behind widening, moving O(open state) items instead of
    /// replaying O(window extent).
    pub fn reregister_migrating(
        &mut self,
        flow: FlowId,
        ops: &[FlowOp],
    ) -> dss_engine::MigrationReport {
        self.dag
            .reregister_migrating(flow, Self::instantiate(ops), ops_mergeable)
    }

    /// [`Self::reregister_migrating`] over several flows as one atomic
    /// handoff — required when the rebuilt flows share stateful nodes
    /// (e.g. sibling consumers patched by the same widening), whose state
    /// only exports once the last sharer releases it.
    pub fn reregister_migrating_batch(
        &mut self,
        batch: &[(FlowId, &[FlowOp])],
    ) -> dss_engine::MigrationReport {
        self.dag.reregister_migrating_batch(
            batch
                .iter()
                .map(|(flow, ops)| (*flow, Self::instantiate(ops)))
                .collect(),
            ops_mergeable,
        )
    }

    /// Drops `flow` from the DAG, pruning operators nothing else shares.
    pub fn retire(&mut self, flow: FlowId) {
        self.dag.retire(flow);
    }

    fn instantiate(ops: &[FlowOp]) -> Vec<(FlowOp, Box<dyn StreamOperator + Send>)> {
        ops.iter()
            .map(|op| (op.clone(), build_flow_op(op)))
            .collect()
    }

    /// `true` when `flow` is registered.
    pub fn contains(&self, flow: FlowId) -> bool {
        self.dag.contains(flow)
    }

    /// Number of registered flows.
    pub fn sink_count(&self) -> usize {
        self.dag.sink_count()
    }

    /// `true` when no flow is registered.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Runs one input item through the DAG; `out` receives every
    /// (flow, output item) pair in deterministic DFS order.
    pub fn process_into(&mut self, item: &Node, out: &mut dyn FnMut(FlowId, &Node)) {
        self.dag.process_into(item, out);
    }

    /// End-of-stream flush of all buffered window state.
    pub fn flush_into(&mut self, out: &mut dyn FnMut(FlowId, &Node)) {
        self.dag.flush_into(out);
    }

    /// Total work across DAG nodes — each shared node counted once.
    pub fn total_work(&self) -> f64 {
        self.dag.total_work()
    }

    /// Per-node execution counters (depth, sharers, stats).
    pub fn node_stats(&self) -> Vec<DagNodeStats> {
        self.dag.node_stats()
    }

    /// Aggregated counters of pruned nodes (retired flows' exclusive
    /// operators) — live `node_stats` no longer covers them.
    pub fn retired_stats(&self) -> &dss_engine::OpStats {
        self.dag.retired_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_properties::{AggOp, AggregationSpec, ResultFilter, WindowSpec};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn agg(width: &str) -> FlowOp {
        FlowOp::Standard(Operator::Aggregation(AggregationSpec {
            op: AggOp::Sum,
            element: p("en"),
            window: WindowSpec::diff(p("det_time"), d(width), None).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::none(),
        }))
    }

    fn select(min_en: &str) -> FlowOp {
        FlowOp::Standard(Operator::Selection(PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d(min_en)),
        ])))
    }

    #[test]
    fn stateless_merge_is_equality() {
        assert!(ops_mergeable(&select("1.0"), &select("1.0")));
        assert!(!ops_mergeable(&select("1.0"), &select("2.0")));
    }

    #[test]
    fn windowed_merge_requires_identical_window() {
        assert!(ops_mergeable(&agg("10"), &agg("10")));
        assert!(!ops_mergeable(&agg("10"), &agg("20")));
        assert!(op_is_stateful(&agg("10")));
        assert!(!op_is_stateful(&select("1.0")));
    }

    #[test]
    fn group_key_distinguishes_inputs() {
        let src = FlowInput::Source {
            stream: "photons".into(),
        };
        let tap = FlowInput::Tap { parent: 3 };
        assert_eq!(GroupKey::of(&src), GroupKey::Source("photons".into()));
        assert_eq!(GroupKey::of(&tap), GroupKey::Tap(3));
        assert_ne!(GroupKey::of(&src), GroupKey::of(&tap));
    }

    #[test]
    fn flow_dag_shares_prefix_and_fans_out() {
        let mut dag = FlowDag::new();
        dag.register(0, &[select("1.0")]);
        dag.register(1, &[select("1.0")]);
        dag.register(2, &[select("2.0")]);
        let hot = dss_xml::Node::elem("photon", vec![dss_xml::Node::leaf("en", "1.5")]);
        let mut outs = Vec::new();
        dag.process_into(&hot, &mut |f, _| outs.push(f));
        outs.sort_unstable();
        assert_eq!(outs, vec![0, 1], "en 1.5 passes σ≥1.0 but not σ≥2.0");
        // One shared σ≥1.0 node: a single item_in despite two sinks.
        let stats = dag.node_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.stats.items_in).sum::<u64>(), 2);
    }
}
