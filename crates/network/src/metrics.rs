//! Network and peer metrics collected by the simulator.
//!
//! These are the quantities the paper's evaluation reports: average CPU
//! load per super-peer (Figures 6/7 left), average network traffic per
//! connection in kbps (Figure 6 right), and accumulated traffic per peer in
//! Mbit, incoming plus outgoing (Figure 7 right).

use crate::topology::{EdgeId, NodeId, Topology};

/// Metrics of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetworkMetrics {
    /// Total bytes transmitted per connection.
    pub edge_bytes: Vec<u64>,
    /// Accumulated computational work per peer (work units, already scaled
    /// by the peer's performance index).
    pub node_work: Vec<f64>,
    /// Bytes received per peer.
    pub node_bytes_in: Vec<u64>,
    /// Bytes sent per peer.
    pub node_bytes_out: Vec<u64>,
    /// Simulated wall-clock duration of the stream, in seconds (used to
    /// turn byte/work totals into rates).
    pub duration_s: f64,
}

impl NetworkMetrics {
    /// Fresh zeroed metrics for a topology.
    pub fn new(topo: &Topology, duration_s: f64) -> NetworkMetrics {
        NetworkMetrics {
            edge_bytes: vec![0; topo.edge_count()],
            node_work: vec![0.0; topo.peer_count()],
            node_bytes_in: vec![0; topo.peer_count()],
            node_bytes_out: vec![0; topo.peer_count()],
            duration_s,
        }
    }

    /// Average traffic on a connection in kilobits per second.
    pub fn edge_kbps(&self, e: EdgeId) -> f64 {
        (self.edge_bytes[e] as f64 * 8.0 / 1000.0) / self.duration_s
    }

    /// Relative bandwidth utilization of a connection (the cost model's
    /// `u_b(e)` measured after the fact).
    pub fn edge_utilization(&self, topo: &Topology, e: EdgeId) -> f64 {
        self.edge_kbps(e) / topo.edge(e).bandwidth_kbps
    }

    /// Average CPU load of a peer in percent of its capacity `l(v)`.
    pub fn node_load_pct(&self, topo: &Topology, v: NodeId) -> f64 {
        100.0 * self.node_work[v] / (self.duration_s * topo.peer(v).capacity)
    }

    /// Accumulated traffic of a peer in Mbit (incoming plus outgoing), as
    /// reported in Figure 7.
    pub fn node_acc_traffic_mbit(&self, v: NodeId) -> f64 {
        (self.node_bytes_in[v] + self.node_bytes_out[v]) as f64 * 8.0 / 1_000_000.0
    }

    /// Total bytes over all connections.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edge_bytes.iter().sum()
    }

    /// Total work over all peers.
    pub fn total_work(&self) -> f64 {
        self.node_work.iter().sum()
    }

    /// Records the transmission of `bytes` over the edge `e` from `sender`
    /// to `receiver`.
    pub fn record_transmission(&mut self, e: EdgeId, sender: NodeId, receiver: NodeId, bytes: u64) {
        self.edge_bytes[e] += bytes;
        self.node_bytes_out[sender] += bytes;
        self.node_bytes_in[receiver] += bytes;
    }

    /// Records computational work at a peer.
    pub fn record_work(&mut self, v: NodeId, work: f64) {
        self.node_work[v] += work;
    }

    /// Pushes the run's aggregates into the telemetry registry: per-peer
    /// load/traffic gauges and per-edge traffic gauges, labelled by peer
    /// name. No-op while recording is disabled.
    pub fn publish(&self, topo: &Topology) {
        if !dss_telemetry::enabled() {
            return;
        }
        for v in 0..topo.peer_count() {
            if self.node_work[v] > 0.0 {
                dss_telemetry::gauge_set(
                    "sim.node_load_pct",
                    || vec![("peer", topo.peer(v).name.clone())],
                    self.node_load_pct(topo, v),
                );
            }
            if self.node_bytes_in[v] + self.node_bytes_out[v] > 0 {
                dss_telemetry::gauge_set(
                    "sim.node_acc_traffic_mbit",
                    || vec![("peer", topo.peer(v).name.clone())],
                    self.node_acc_traffic_mbit(v),
                );
            }
        }
        for e in 0..topo.edge_count() {
            if self.edge_bytes[e] > 0 {
                let edge = topo.edge(e);
                dss_telemetry::gauge_set(
                    "sim.edge_kbps",
                    || {
                        vec![
                            ("from", topo.peer(edge.a).name.clone()),
                            ("to", topo.peer(edge.b).name.clone()),
                        ]
                    },
                    self.edge_kbps(e),
                );
            }
        }
    }

    /// Merges another run's metrics into this one (same topology).
    pub fn merge(&mut self, other: &NetworkMetrics) {
        assert_eq!(self.edge_bytes.len(), other.edge_bytes.len());
        assert_eq!(self.node_work.len(), other.node_work.len());
        for (a, b) in self.edge_bytes.iter_mut().zip(&other.edge_bytes) {
            *a += b;
        }
        for (a, b) in self.node_work.iter_mut().zip(&other.node_work) {
            *a += b;
        }
        for (a, b) in self.node_bytes_in.iter_mut().zip(&other.node_bytes_in) {
            *a += b;
        }
        for (a, b) in self.node_bytes_out.iter_mut().zip(&other.node_bytes_out) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::grid_topology;

    #[test]
    fn rates_and_percentages() {
        let t = grid_topology(2, 2);
        let mut m = NetworkMetrics::new(&t, 10.0);
        let e = t
            .edge_between(t.expect_node("SP0"), t.expect_node("SP1"))
            .unwrap();
        m.record_transmission(e, 0, 1, 125_000); // 1 Mbit over 10 s = 100 kbps
        assert!((m.edge_kbps(e) - 100.0).abs() < 1e-9);
        assert!((m.edge_utilization(&t, e) - 0.001).abs() < 1e-9);
        assert_eq!(m.node_bytes_out[0], 125_000);
        assert_eq!(m.node_bytes_in[1], 125_000);
        assert!((m.node_acc_traffic_mbit(0) - 1.0).abs() < 1e-9);

        m.record_work(0, 50_000.0); // capacity 100k/s over 10 s ⇒ 5 %
        assert!((m.node_load_pct(&t, 0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn totals_and_merge() {
        let t = grid_topology(2, 2);
        let mut a = NetworkMetrics::new(&t, 10.0);
        let mut b = NetworkMetrics::new(&t, 10.0);
        a.record_transmission(0, 0, 1, 100);
        b.record_transmission(0, 0, 1, 200);
        b.record_work(2, 7.0);
        a.merge(&b);
        assert_eq!(a.edge_bytes[0], 300);
        assert_eq!(a.total_edge_bytes(), 300);
        assert_eq!(a.node_work[2], 7.0);
        assert_eq!(a.total_work(), 7.0);
    }
}
