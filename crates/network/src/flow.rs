//! Stream flows: the deployed dataflow graph of the network.
//!
//! Every data stream flowing in the network — an original source stream, a
//! transformed stream produced for some subscription, or a final
//! post-processing delivery — is a [`StreamFlow`]: a pipeline of operators
//! installed at one peer, consuming either a raw source or a *tap* on
//! another flow, and routed along a path to its target peer.
//!
//! Tapping models the paper's stream duplication: "The result data stream of
//! Query 1 is duplicated at SP5, yielding two identical streams" — the new
//! flow's processing node must lie on the parent flow's route, and reading
//! the passing stream there costs no extra transmission.

use std::ops::{Deref, DerefMut};

use dss_engine::{build_operator, Pipeline, ReAggregateOp, ReWindowOp, RestructureOp, Template};
use dss_properties::{AggOp, AggregationSpec, Operator, Properties, QueryLens, WindowOutputSpec};

use crate::catalog::{Catalog, LensVerdicts};
use crate::topology::{NodeId, Topology};

/// Flow identifier (dense index into the deployment).
pub type FlowId = usize;

/// Where a flow's input items come from.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowInput {
    /// A raw registered data stream (produced by a thin-peer source).
    Source { stream: String },
    /// A tap on another flow at this flow's processing node.
    Tap { parent: FlowId },
}

/// One operator of a flow, superset of the property-level operators with
/// the two execution-only operators (re-aggregation and restructuring).
#[derive(Debug, Clone, PartialEq)]
pub enum FlowOp {
    /// Selection / projection / aggregation / UDF, as in properties.
    Standard(Operator),
    /// Re-aggregation of shared partials into coarser windows (Figure 5).
    ReAggregate {
        reused: AggregationSpec,
        new: AggregationSpec,
    },
    /// Re-windowing of shared window-contents items into coarser windows.
    ReWindow {
        reused: WindowOutputSpec,
        new: WindowOutputSpec,
    },
    /// Post-processing: materialize the query's `return` clause. `agg`
    /// names the aggregate op whose value `{ $a }` renders; `window` marks
    /// window-contents input.
    Restructure {
        template: Template,
        agg: Option<AggOp>,
        window: bool,
    },
}

/// Builds the executable pipeline for a flow's operator list.
pub fn build_flow_pipeline(ops: &[FlowOp]) -> Pipeline {
    let mut p = Pipeline::new();
    for op in ops {
        match op {
            FlowOp::Standard(o) => p.push(build_operator(o)),
            FlowOp::ReAggregate { reused, new } => {
                p.push(Box::new(ReAggregateOp::new(reused.clone(), new.clone())));
            }
            FlowOp::ReWindow { reused, new } => {
                p.push(Box::new(ReWindowOp::new(reused.clone(), new.clone())));
            }
            FlowOp::Restructure {
                template,
                agg,
                window,
            } => {
                let op = match (agg, window) {
                    (Some(a), _) => RestructureOp::for_aggregate(template.clone(), *a),
                    (None, true) => RestructureOp::for_window(template.clone()),
                    (None, false) => RestructureOp::new(template.clone()),
                };
                p.push(Box::new(op));
            }
        }
    }
    p
}

/// One deployed stream in the network.
#[derive(Debug, Clone)]
pub struct StreamFlow {
    /// Human-readable label, e.g. `photons@SP4` or `q7/photons`.
    pub label: String,
    /// Input source.
    pub input: FlowInput,
    /// Peer where the pipeline executes.
    pub processing_node: NodeId,
    /// Operators installed at the processing node.
    pub ops: Vec<FlowOp>,
    /// Route from the processing node to the target peer (inclusive). The
    /// first element must equal `processing_node`.
    pub route: Vec<NodeId>,
    /// Properties of the produced stream, if it is *shareable*. Delivery
    /// flows (restructured results) carry `None`: the paper excludes
    /// post-processing output from reuse.
    pub properties: Option<Properties>,
    /// Retired flows stay in the deployment (ids are stable) but carry no
    /// traffic, are not shareable, and are skipped by the simulator.
    pub retired: bool,
}

impl StreamFlow {
    /// The peer the stream is delivered to (`getTNode`).
    pub fn target_node(&self) -> NodeId {
        *self.route.last().expect("routes are non-empty")
    }

    /// `true` if the flow's stream passes through (or ends at) `node` and
    /// can be tapped there.
    pub fn available_at(&self, node: NodeId) -> bool {
        self.route.contains(&node)
    }
}

/// The deployed dataflow graph, with a per-peer [`Catalog`] over its
/// shareable flows maintained incrementally on install/retire/widen.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    flows: Vec<StreamFlow>,
    catalog: Catalog,
    /// Flows whose next in-place chain rewrite is a *planned loss-free
    /// handoff*: the live runtime migrates their open window state across
    /// the rebuild instead of dropping it. Set by the planner (widening
    /// chooses delta migration over a full rebuild per patched consumer).
    handoffs: std::collections::BTreeSet<FlowId>,
}

impl Deployment {
    /// An empty deployment.
    pub fn new() -> Deployment {
        Deployment::default()
    }

    /// Adds a flow, validating its route and tap point.
    ///
    /// # Panics
    /// Panics if the route is empty or does not start at the processing
    /// node, if a tap parent does not exist or is later in the graph, or if
    /// the tap point is not on the parent's route.
    pub fn add_flow(&mut self, flow: StreamFlow) -> FlowId {
        assert!(
            !flow.route.is_empty(),
            "flow {} has an empty route",
            flow.label
        );
        assert_eq!(
            flow.route[0], flow.processing_node,
            "flow {} route must start at its processing node",
            flow.label
        );
        if let FlowInput::Tap { parent } = flow.input {
            assert!(
                parent < self.flows.len(),
                "flow {} taps unknown parent",
                flow.label
            );
            assert!(
                self.flows[parent].available_at(flow.processing_node),
                "flow {} taps parent {} at node {}, which is not on the parent's route",
                flow.label,
                self.flows[parent].label,
                flow.processing_node
            );
        }
        self.flows.push(flow);
        let id = self.flows.len() - 1;
        self.catalog.insert(id, &self.flows[id]);
        id
    }

    /// All flows in id order.
    pub fn flows(&self) -> &[StreamFlow] {
        &self.flows
    }

    /// One flow.
    pub fn flow(&self, id: FlowId) -> &StreamFlow {
        &self.flows[id]
    }

    /// Mutable access to a flow (used by stream widening, which replaces a
    /// deployed flow's operators and properties in place). The returned
    /// guard re-indexes the flow in the catalog when dropped, so widening
    /// and narrowing keep the index consistent without explicit calls.
    pub fn flow_mut(&mut self, id: FlowId) -> FlowMut<'_> {
        FlowMut {
            deployment: self,
            id,
        }
    }

    /// Ids of the flows that tap `id` directly.
    pub fn children_of(&self, id: FlowId) -> Vec<FlowId> {
        (0..self.flows.len())
            .filter(|&c| {
                !self.flows[c].retired
                    && matches!(self.flows[c].input, FlowInput::Tap { parent } if parent == id)
            })
            .collect()
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` if no flows are deployed.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Ids of *shareable* flows whose stream is available at `node` —
    /// the candidate streams Algorithm 1 inspects at each BFS step.
    /// Served from the maintained per-peer index: no scan, no allocation.
    pub fn shareable_at(&self, node: NodeId) -> &[FlowId] {
        self.catalog.shareable_at(node)
    }

    /// Number of currently shareable (indexed) flows across all peers.
    pub fn shareable_len(&self) -> usize {
        self.catalog.indexed_len()
    }

    /// Number of distinct operator chains the catalog has ever seen —
    /// the quantity candidate lookup scales with instead of flow count.
    pub fn distinct_chains(&self) -> usize {
        self.catalog.distinct_chains()
    }

    /// The interned chain id of `id`'s input for `stream` (see
    /// [`Catalog::chain_of`]): equal ids mean byte-identical input
    /// properties.
    pub fn chain_of(&self, id: FlowId, stream: &str) -> Option<crate::catalog::ChainId> {
        self.catalog.chain_of(id, stream)
    }

    /// Shareable variants of origin stream `stream` available at `node`,
    /// ascending — every flow in [`Self::shareable_at`] whose properties
    /// have an input for `stream`. This is the unpruned candidate set; the
    /// widening search enumerates it because widening must see
    /// *non-matching* streams too.
    pub fn variants_at(&self, node: NodeId, stream: &str) -> &[FlowId] {
        self.catalog.variants_at(node, stream)
    }

    /// Collects into `out` the variants of `stream` at `node` whose chain
    /// summaries pass `lens`'s pre-filters, ascending. Guaranteed to
    /// contain every flow whose properties `match_input_properties` would
    /// accept for the lens's subscription input; non-matches may be pruned.
    /// `verdicts` memoizes per-chain judgements across the peers of one
    /// search — pass a fresh one per lens.
    pub fn candidates_into(
        &self,
        node: NodeId,
        stream: &str,
        lens: &QueryLens,
        verdicts: &mut LensVerdicts,
        out: &mut Vec<FlowId>,
    ) {
        self.catalog
            .candidates_into(node, stream, lens, verdicts, out);
    }

    /// Shareable flows at `node` carrying `stream` through a *widenable*
    /// (selection/projection-only) chain, ascending — the extra candidates
    /// the widening search inspects beyond the lens-matched set, served
    /// from the maintained index instead of a variant scan.
    pub fn widenable_at(&self, node: NodeId, stream: &str) -> &[FlowId] {
        self.catalog.widenable_at(node, stream)
    }

    /// Marks (`migrate = true`) or clears a planned loss-free handoff for
    /// `id`: the live runtime rebuilds a marked flow's chain with open
    /// window state migration instead of dropping it. Re-planning the same
    /// flow overwrites the previous choice.
    pub fn set_handoff(&mut self, id: FlowId, migrate: bool) {
        if migrate {
            self.handoffs.insert(id);
        } else {
            self.handoffs.remove(&id);
        }
    }

    /// `true` when `id`'s next in-place chain rewrite is a planned
    /// loss-free handoff (see [`Self::set_handoff`]).
    pub fn is_handoff(&self, id: FlowId) -> bool {
        self.handoffs.contains(&id)
    }

    /// Retires a flow: it keeps its id but carries no traffic and is no
    /// longer shareable or simulated.
    ///
    /// # Panics
    /// Panics if the flow still has active children.
    pub fn retire(&mut self, id: FlowId) {
        assert!(
            self.children_of(id).is_empty(),
            "cannot retire flow {} while {} child flow(s) still tap it",
            self.flows[id].label,
            self.children_of(id).len()
        );
        self.flows[id].retired = true;
        self.catalog.remove(id);
        self.handoffs.remove(&id);
    }

    /// Validates the deployment against a topology: all route hops must be
    /// existing connections.
    pub fn validate(&self, topo: &Topology) {
        for f in &self.flows {
            for w in f.route.windows(2) {
                assert!(
                    topo.edge_between(w[0], w[1]).is_some(),
                    "flow {} routes over non-existent connection {}–{}",
                    f.label,
                    topo.peer(w[0]).name,
                    topo.peer(w[1]).name
                );
            }
        }
    }
}

/// Mutable-access guard for one flow. Dereferences to [`StreamFlow`]; on
/// drop, the flow is re-indexed in the deployment's catalog so in-place
/// mutations (widening's operator/properties rewrite, narrowing's rollback)
/// are reflected in candidate lookups.
pub struct FlowMut<'a> {
    deployment: &'a mut Deployment,
    id: FlowId,
}

impl Deref for FlowMut<'_> {
    type Target = StreamFlow;

    fn deref(&self) -> &StreamFlow {
        &self.deployment.flows[self.id]
    }
}

impl DerefMut for FlowMut<'_> {
    fn deref_mut(&mut self) -> &mut StreamFlow {
        &mut self.deployment.flows[self.id]
    }
}

impl Drop for FlowMut<'_> {
    fn drop(&mut self) {
        let Deployment { flows, catalog, .. } = &mut *self.deployment;
        catalog.reindex(self.id, &flows[self.id]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::grid_topology;
    use dss_properties::InputProperties;

    fn source_flow(route: Vec<NodeId>) -> StreamFlow {
        StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: route[0],
            ops: Vec::new(),
            route,
            properties: Some(Properties::single(InputProperties::original("photons"))),
            retired: false,
        }
    }

    #[test]
    fn add_and_query_flows() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let f0 = d.add_flow(source_flow(vec![
            t.expect_node("SP0"),
            t.expect_node("SP1"),
            t.expect_node("SP3"),
        ]));
        assert_eq!(d.len(), 1);
        assert_eq!(d.flow(f0).target_node(), t.expect_node("SP3"));
        assert!(d.flow(f0).available_at(t.expect_node("SP1")));
        assert!(!d.flow(f0).available_at(t.expect_node("SP2")));
        assert_eq!(d.shareable_at(t.expect_node("SP1")), vec![f0]);
        d.validate(&t);
    }

    #[test]
    fn tap_must_be_on_parent_route() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let f0 = d.add_flow(source_flow(vec![
            t.expect_node("SP0"),
            t.expect_node("SP1"),
        ]));
        let ok = StreamFlow {
            label: "child".into(),
            input: FlowInput::Tap { parent: f0 },
            processing_node: t.expect_node("SP1"),
            ops: Vec::new(),
            route: vec![t.expect_node("SP1"), t.expect_node("SP3")],
            properties: None,
            retired: false,
        };
        d.add_flow(ok);
        d.validate(&t);
    }

    #[test]
    #[should_panic(expected = "not on the parent's route")]
    fn bad_tap_rejected() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let f0 = d.add_flow(source_flow(vec![
            t.expect_node("SP0"),
            t.expect_node("SP1"),
        ]));
        d.add_flow(StreamFlow {
            label: "child".into(),
            input: FlowInput::Tap { parent: f0 },
            processing_node: t.expect_node("SP2"),
            ops: Vec::new(),
            route: vec![t.expect_node("SP2")],
            properties: None,
            retired: false,
        });
    }

    #[test]
    #[should_panic(expected = "route must start")]
    fn route_must_start_at_processing_node() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        d.add_flow(StreamFlow {
            label: "broken".into(),
            input: FlowInput::Source { stream: "s".into() },
            processing_node: t.expect_node("SP0"),
            ops: Vec::new(),
            route: vec![t.expect_node("SP1")],
            properties: None,
            retired: false,
        });
    }

    #[test]
    fn children_and_mutation() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let f0 = d.add_flow(source_flow(vec![
            t.expect_node("SP0"),
            t.expect_node("SP1"),
        ]));
        let c1 = d.add_flow(StreamFlow {
            label: "c1".into(),
            input: FlowInput::Tap { parent: f0 },
            processing_node: t.expect_node("SP1"),
            ops: Vec::new(),
            route: vec![t.expect_node("SP1")],
            properties: None,
            retired: false,
        });
        let c2 = d.add_flow(StreamFlow {
            label: "c2".into(),
            input: FlowInput::Tap { parent: f0 },
            processing_node: t.expect_node("SP0"),
            ops: Vec::new(),
            route: vec![t.expect_node("SP0")],
            properties: None,
            retired: false,
        });
        let gc = d.add_flow(StreamFlow {
            label: "grandchild".into(),
            input: FlowInput::Tap { parent: c1 },
            processing_node: t.expect_node("SP1"),
            ops: Vec::new(),
            route: vec![t.expect_node("SP1")],
            properties: None,
            retired: false,
        });
        assert_eq!(d.children_of(f0), vec![c1, c2]);
        assert_eq!(d.children_of(c1), vec![gc]);
        assert!(d.children_of(gc).is_empty());
        // In-place mutation (the widening path).
        d.flow_mut(f0).label = "widened".into();
        assert_eq!(d.flow(f0).label, "widened");
    }

    #[test]
    fn catalog_follows_retire_and_inplace_mutation() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let (sp0, sp1) = (t.expect_node("SP0"), t.expect_node("SP1"));
        let f0 = d.add_flow(source_flow(vec![sp0, sp1]));
        assert_eq!(d.shareable_at(sp0), vec![f0]);
        assert_eq!(d.shareable_at(sp1), vec![f0]);
        assert_eq!(d.variants_at(sp1, "photons"), vec![f0]);
        assert!(d.variants_at(sp1, "spectra").is_empty());

        // Mutating properties through the guard re-indexes under the new
        // origin stream.
        d.flow_mut(f0).properties = Some(Properties::single(InputProperties::original("spectra")));
        assert!(d.variants_at(sp1, "photons").is_empty());
        assert_eq!(d.variants_at(sp1, "spectra"), vec![f0]);
        assert_eq!(d.shareable_at(sp1), vec![f0]);

        // Dropping properties makes the flow unshareable…
        d.flow_mut(f0).properties = None;
        assert!(d.shareable_at(sp0).is_empty());
        // …and restoring them brings it back.
        d.flow_mut(f0).properties = Some(Properties::single(InputProperties::original("photons")));
        assert_eq!(d.shareable_at(sp0), vec![f0]);

        d.retire(f0);
        assert!(d.shareable_at(sp0).is_empty());
        assert!(d.shareable_at(sp1).is_empty());
        assert!(d.variants_at(sp1, "photons").is_empty());
    }

    #[test]
    fn indexed_candidates_equal_filtered_scan() {
        use dss_properties::QueryLens;
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let (sp0, sp1, sp3) = (
            t.expect_node("SP0"),
            t.expect_node("SP1"),
            t.expect_node("SP3"),
        );
        d.add_flow(source_flow(vec![sp0, sp1, sp3]));
        d.add_flow(source_flow(vec![sp0, sp1]));
        // A delivery flow (no properties) must never appear.
        d.add_flow(StreamFlow {
            label: "delivery".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp1,
            ops: Vec::new(),
            route: vec![sp1],
            properties: None,
            retired: false,
        });
        let wanted = InputProperties::original("photons");
        let lens = QueryLens::of(&wanted);
        let mut verdicts = crate::catalog::LensVerdicts::default();
        let mut got = Vec::new();
        for node in [sp0, sp1, sp3] {
            d.candidates_into(node, "photons", &lens, &mut verdicts, &mut got);
            let scan: Vec<FlowId> = (0..d.len())
                .filter(|&i| {
                    let f = d.flow(i);
                    !f.retired && f.properties.is_some() && f.available_at(node)
                })
                .collect();
            assert_eq!(got, scan, "node {node}");
            assert_eq!(d.variants_at(node, "photons"), scan.as_slice());
        }
    }

    #[test]
    fn delivery_flows_not_shareable() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let sp0 = t.expect_node("SP0");
        d.add_flow(StreamFlow {
            label: "delivery".into(),
            input: FlowInput::Source { stream: "s".into() },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0],
            properties: None,
            retired: false,
        });
        assert!(d.shareable_at(sp0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-existent connection")]
    fn validate_catches_bad_routes() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        // SP0–SP3 is a diagonal: not a connection in the 2×2 grid.
        d.add_flow(source_flow(vec![
            t.expect_node("SP0"),
            t.expect_node("SP3"),
        ]));
        d.validate(&t);
    }
}
