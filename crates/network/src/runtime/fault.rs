//! Scripted fault injection: peer crash/recover and link drop events.
//!
//! Faults are part of the *scenario*, not the runtime state: a
//! [`FaultScript`] is a time-ordered list of [`FaultEvent`]s that the
//! driver replays against the runtime (and, for crashes, against the
//! planner — see `dss_core::System::run_live`). Keeping the script a plain
//! value makes perturbed runs exactly reproducible.

use crate::topology::{EdgeId, NodeId};

/// What breaks (or heals) at a scripted instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The peer dies: its mailbox contents are lost, in-flight items
    /// addressed to it are lost on arrival, and the planner routes around
    /// it until it recovers.
    PeerCrash(NodeId),
    /// The peer comes back empty — recovery does not restore lost items.
    PeerRecover(NodeId),
    /// The link drops: items charged onto it are lost in transit.
    LinkDown(EdgeId),
    /// The link heals.
    LinkUp(EdgeId),
}

/// One scripted fault at an absolute simulation time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_us: u64,
    pub kind: FaultKind,
}

/// A time-ordered fault schedule, built with the chainable helpers:
///
/// ```
/// # use dss_network::runtime::FaultScript;
/// let script = FaultScript::new().crash_peer(10.0, 5).recover_peer(25.0, 5);
/// assert_eq!(script.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty (unperturbed) script.
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Inserts an event, keeping the schedule sorted by time; equal-time
    /// events keep their insertion order (stable).
    pub fn push(&mut self, at_us: u64, kind: FaultKind) {
        let event = FaultEvent { at_us, kind };
        let pos = self.events.partition_point(|e| e.at_us <= at_us);
        self.events.insert(pos, event);
    }

    /// Crash `peer` at `at_s` seconds.
    pub fn crash_peer(mut self, at_s: f64, peer: NodeId) -> FaultScript {
        self.push(secs_to_us(at_s), FaultKind::PeerCrash(peer));
        self
    }

    /// Recover `peer` at `at_s` seconds.
    pub fn recover_peer(mut self, at_s: f64, peer: NodeId) -> FaultScript {
        self.push(secs_to_us(at_s), FaultKind::PeerRecover(peer));
        self
    }

    /// Drop `edge` at `at_s` seconds.
    pub fn link_down(mut self, at_s: f64, edge: EdgeId) -> FaultScript {
        self.push(secs_to_us(at_s), FaultKind::LinkDown(edge));
        self
    }

    /// Heal `edge` at `at_s` seconds.
    pub fn link_up(mut self, at_s: f64, edge: EdgeId) -> FaultScript {
        self.push(secs_to_us(at_s), FaultKind::LinkUp(edge));
        self
    }

    /// The schedule, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Seconds (scenario scripts speak seconds) to the runtime's µs clock.
pub(crate) fn secs_to_us(s: f64) -> u64 {
    (s * 1e6).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_stays_sorted_and_stable() {
        let script = FaultScript::new()
            .crash_peer(10.0, 5)
            .link_down(2.0, 3)
            .recover_peer(10.0, 5)
            .link_up(2.0, 3);
        let times: Vec<u64> = script.events().iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![2_000_000, 2_000_000, 10_000_000, 10_000_000]);
        // Equal-time events preserve insertion order.
        assert_eq!(script.events()[0].kind, FaultKind::LinkDown(3));
        assert_eq!(script.events()[1].kind, FaultKind::LinkUp(3));
        assert_eq!(script.events()[2].kind, FaultKind::PeerCrash(5));
        assert_eq!(script.events()[3].kind, FaultKind::PeerRecover(5));
    }
}
