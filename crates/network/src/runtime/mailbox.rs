//! Bounded per-peer input queues.

use std::collections::{BTreeMap, VecDeque};

use dss_xml::Node;

/// A peer's bounded input queue. Every item addressed to a sharing group
/// whose operator DAG runs at this peer waits here until the peer's
/// (single) server picks it up — one entry serves *all* flows of the
/// group. When the queue is full, new arrivals are dropped (drop-newest),
/// which is what a saturated StreamGlobe peer does once its buffers fill.
#[derive(Debug)]
pub(crate) struct Mailbox {
    queue: VecDeque<(usize, u64, Node)>,
    capacity: usize,
    /// Highest queue depth ever observed (reported in `RuntimeMetrics`).
    pub high_water: usize,
    /// Items dropped because the queue was full.
    pub dropped: u64,
    /// Drops attributed to the sharing group whose item was refused — the
    /// raw material for per-(peer, flow) drop accounting: an aggregate
    /// per-peer count alone cannot say *which query* lost data.
    pub dropped_by_group: BTreeMap<usize, u64>,
}

impl Mailbox {
    pub fn new(capacity: usize) -> Mailbox {
        Mailbox {
            queue: VecDeque::new(),
            capacity,
            high_water: 0,
            dropped: 0,
            dropped_by_group: BTreeMap::new(),
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an item for sharing group `group`, stamped with its
    /// source-emission time. Returns `false` (and counts a drop, both in
    /// aggregate and against `group`) when the mailbox is full.
    pub fn push(&mut self, group: usize, origin: u64, item: Node) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            *self.dropped_by_group.entry(group).or_insert(0) += 1;
            return false;
        }
        self.queue.push_back((group, origin, item));
        self.high_water = self.high_water.max(self.queue.len());
        true
    }

    pub fn pop(&mut self) -> Option<(usize, u64, Node)> {
        self.queue.pop_front()
    }

    /// Empties the queue (peer crash), returning the lost entries so the
    /// caller can count the per-group fan-out they would have served.
    pub fn drain_all(&mut self) -> Vec<(usize, u64, Node)> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_drop_newest_and_high_water() {
        let mut m = Mailbox::new(2);
        let item = Node::leaf("x", "1");
        assert!(m.push(0, 10, item.clone()));
        assert!(m.push(1, 20, item.clone()));
        assert!(!m.push(2, 30, item.clone()), "third push must be dropped");
        assert_eq!(m.dropped, 1);
        assert_eq!(m.high_water, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.pop().map(|(g, t, _)| (g, t)), Some((0, 10)));
        assert!(m.push(2, 30, item));
        assert_eq!(m.drain_all().len(), 2);
        assert!(m.pop().is_none());
        assert_eq!(m.high_water, 2, "high water survives draining");
    }

    /// Drops are attributed to the group whose item was refused, so they
    /// can be traced back to the flows (and the query) that lost data —
    /// not just to the peer.
    #[test]
    fn drops_are_attributed_per_group() {
        let mut m = Mailbox::new(1);
        let item = Node::leaf("x", "1");
        assert!(m.push(7, 0, item.clone()));
        for t in 1..=3 {
            assert!(!m.push(7, t, item.clone()));
        }
        assert!(!m.push(9, 4, item.clone()));
        assert_eq!(m.dropped, 4);
        assert_eq!(m.dropped_by_group.get(&7), Some(&3));
        assert_eq!(m.dropped_by_group.get(&9), Some(&1));
        assert_eq!(
            m.dropped_by_group.values().sum::<u64>(),
            m.dropped,
            "per-group drops must account for every aggregate drop"
        );
        // Draining (peer crash) does not disturb drop accounting.
        m.drain_all();
        assert_eq!(m.dropped_by_group.get(&7), Some(&3));
    }
}
