//! Bounded per-peer input queues.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use dss_xml::Node;

/// A peer's bounded input queue. Every item addressed to a sharing group
/// whose operator DAG runs at this peer waits here until the peer's
/// (single) server picks it up — one entry serves *all* flows of the
/// group. When the queue is full, new arrivals are dropped (drop-newest),
/// which is what a saturated StreamGlobe peer does once its buffers fill.
#[derive(Debug)]
pub(crate) struct Mailbox {
    queue: VecDeque<(usize, u64, Node)>,
    capacity: usize,
    /// Highest queue depth ever observed (reported in `RuntimeMetrics`).
    pub high_water: usize,
    /// Items dropped because the queue was full.
    pub dropped: u64,
    /// Drops attributed to the sharing group whose item was refused — the
    /// raw material for per-(peer, flow) drop accounting: an aggregate
    /// per-peer count alone cannot say *which query* lost data.
    pub dropped_by_group: BTreeMap<usize, u64>,
}

impl Mailbox {
    pub fn new(capacity: usize) -> Mailbox {
        Mailbox {
            queue: VecDeque::new(),
            capacity,
            high_water: 0,
            dropped: 0,
            dropped_by_group: BTreeMap::new(),
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an item for sharing group `group`, stamped with its
    /// source-emission time. Returns `false` (and counts a drop, both in
    /// aggregate and against `group`) when the mailbox is full.
    pub fn push(&mut self, group: usize, origin: u64, item: Node) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            *self.dropped_by_group.entry(group).or_insert(0) += 1;
            return false;
        }
        self.queue.push_back((group, origin, item));
        self.high_water = self.high_water.max(self.queue.len());
        true
    }

    pub fn pop(&mut self) -> Option<(usize, u64, Node)> {
        self.queue.pop_front()
    }

    /// Empties the queue (peer crash), returning the lost entries so the
    /// caller can count the per-group fan-out they would have served.
    pub fn drain_all(&mut self) -> Vec<(usize, u64, Node)> {
        self.queue.drain(..).collect()
    }
}

/// Accounting snapshot of a mailbox — the numbers `RuntimeMetrics`
/// reports for simulated peers, surfaced identically for networked ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Highest queue depth ever observed.
    pub high_water: usize,
    /// Items refused because the queue was full (only possible through
    /// [`SyncMailbox::try_push`]; the blocking path never drops).
    pub dropped: u64,
    /// Drops attributed to the sharing group whose item was refused.
    pub dropped_by_group: BTreeMap<usize, u64>,
}

/// Thread-safe bounded mailbox for *networked* deployments (`dss serve`).
///
/// Wraps the simulator's [`Mailbox`] in a mutex + condvars so a real
/// TCP-fed peer process gets the very same bounded-queue semantics with a
/// different overload response: where the discrete-event runtime models a
/// saturated peer by dropping the newest item, a server thread **blocks**
/// in [`push`](SyncMailbox::push) until the worker drains the queue.
/// Since the pushing thread is a connection's read loop, a full mailbox
/// stops reads, the kernel's receive window fills, and the sender stalls —
/// per-connection backpressure mapped onto the existing bounded-mailbox
/// accounting (`high_water` is tracked by the same code path; `dropped`
/// stays zero on the blocking path because nothing is ever discarded).
#[derive(Debug)]
pub struct SyncMailbox {
    inner: Mutex<SyncInner>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Debug)]
struct SyncInner {
    queue: Mailbox,
    closed: bool,
}

impl SyncMailbox {
    pub fn new(capacity: usize) -> SyncMailbox {
        SyncMailbox {
            inner: Mutex::new(SyncInner {
                queue: Mailbox::new(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocking enqueue: waits while the mailbox is full (read-side
    /// backpressure). Returns `false` — without enqueuing — once the
    /// mailbox is closed.
    pub fn push(&self, group: usize, origin: u64, item: Node) -> bool {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return false;
            }
            if inner.queue.len() < inner.queue.capacity {
                assert!(inner.queue.push(group, origin, item));
                self.not_empty.notify_one();
                return true;
            }
            inner = self.not_full.wait(inner).unwrap();
        }
    }

    /// Non-blocking enqueue with the simulator's drop-newest semantics:
    /// a full mailbox refuses the item and counts the drop against
    /// `group`, exactly like [`Mailbox::push`].
    pub fn try_push(&self, group: usize, origin: u64, item: Node) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return false;
        }
        let accepted = inner.queue.push(group, origin, item);
        if accepted {
            self.not_empty.notify_one();
        }
        accepted
    }

    /// Blocking dequeue. Returns `None` only when the mailbox is closed
    /// *and* drained — items enqueued before [`close`](Self::close) are
    /// always handed out, which is what makes a drain-on-shutdown
    /// guarantee possible.
    pub fn pop(&self) -> Option<(usize, u64, Node)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(entry) = inner.queue.pop() {
                self.not_full.notify_one();
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the mailbox: pending pushes return `false`, and `pop`
    /// returns `None` once the remaining entries are drained.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounting snapshot (survives close and drain).
    pub fn stats(&self) -> MailboxStats {
        let inner = self.inner.lock().unwrap();
        MailboxStats {
            high_water: inner.queue.high_water,
            dropped: inner.queue.dropped,
            dropped_by_group: inner.queue.dropped_by_group.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_drop_newest_and_high_water() {
        let mut m = Mailbox::new(2);
        let item = Node::leaf("x", "1");
        assert!(m.push(0, 10, item.clone()));
        assert!(m.push(1, 20, item.clone()));
        assert!(!m.push(2, 30, item.clone()), "third push must be dropped");
        assert_eq!(m.dropped, 1);
        assert_eq!(m.high_water, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.pop().map(|(g, t, _)| (g, t)), Some((0, 10)));
        assert!(m.push(2, 30, item));
        assert_eq!(m.drain_all().len(), 2);
        assert!(m.pop().is_none());
        assert_eq!(m.high_water, 2, "high water survives draining");
    }

    /// Drops are attributed to the group whose item was refused, so they
    /// can be traced back to the flows (and the query) that lost data —
    /// not just to the peer.
    #[test]
    fn drops_are_attributed_per_group() {
        let mut m = Mailbox::new(1);
        let item = Node::leaf("x", "1");
        assert!(m.push(7, 0, item.clone()));
        for t in 1..=3 {
            assert!(!m.push(7, t, item.clone()));
        }
        assert!(!m.push(9, 4, item.clone()));
        assert_eq!(m.dropped, 4);
        assert_eq!(m.dropped_by_group.get(&7), Some(&3));
        assert_eq!(m.dropped_by_group.get(&9), Some(&1));
        assert_eq!(
            m.dropped_by_group.values().sum::<u64>(),
            m.dropped,
            "per-group drops must account for every aggregate drop"
        );
        // Draining (peer crash) does not disturb drop accounting.
        m.drain_all();
        assert_eq!(m.dropped_by_group.get(&7), Some(&3));
    }

    /// A full `SyncMailbox` blocks the pusher until the consumer drains —
    /// the backpressure mapping `dss serve` relies on — and the blocking
    /// path never drops while still tracking the high-water mark.
    #[test]
    fn sync_mailbox_blocks_instead_of_dropping() {
        use std::sync::Arc;

        let m = Arc::new(SyncMailbox::new(2));
        let item = Node::leaf("x", "1");
        assert!(m.push(0, 0, item.clone()));
        assert!(m.push(0, 1, item.clone()));
        let producer = {
            let m = Arc::clone(&m);
            let item = item.clone();
            std::thread::spawn(move || m.push(0, 2, item))
        };
        // The producer must be parked on the full queue; give it a moment
        // and confirm nothing was dropped or enqueued past capacity.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(m.len(), 2);
        assert_eq!(m.pop().map(|(_, t, _)| t), Some(0));
        assert!(producer.join().unwrap(), "unblocked push succeeds");
        let stats = m.stats();
        assert_eq!(stats.dropped, 0, "blocking path never drops");
        assert_eq!(stats.high_water, 2);
        // try_push keeps the simulator's drop-newest accounting.
        assert!(!m.try_push(5, 3, item.clone()));
        assert_eq!(m.stats().dropped, 1);
        assert_eq!(m.stats().dropped_by_group.get(&5), Some(&1));
    }

    /// Closing hands out every already-enqueued item before `pop` reports
    /// end-of-stream, so shutdown can drain without losing deliveries.
    #[test]
    fn sync_mailbox_drains_after_close() {
        let m = SyncMailbox::new(4);
        let item = Node::leaf("x", "1");
        assert!(m.push(0, 0, item.clone()));
        assert!(m.push(1, 1, item.clone()));
        m.close();
        assert!(!m.push(2, 2, item.clone()), "push after close refused");
        assert_eq!(m.pop().map(|(g, _, _)| g), Some(0));
        assert_eq!(m.pop().map(|(g, _, _)| g), Some(1));
        assert!(m.pop().is_none(), "closed and drained");
    }
}
