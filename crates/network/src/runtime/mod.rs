//! A deterministic discrete-event live runtime over a deployed network.
//!
//! The batch simulator ([`crate::sim`]) pushes every source item through
//! the flow graph in one shot — no clock, no queues, no failures. This
//! module is its live counterpart, modelling what the paper measured on
//! the blade cluster:
//!
//! * **Time**: a single `u64` microsecond clock driven by a binary-heap
//!   event queue. Ties break on a monotone sequence number, so a run is a
//!   pure function of its inputs — two runs with the same deployment,
//!   sources, and fault script produce byte-identical traces.
//! * **Sources**: each registered stream emits its items periodically
//!   ([`SourceModel::interarrival_us`], derived from the stream's measured
//!   frequency).
//! * **Peers**: one bounded mailbox and one server per peer. The flows
//!   consuming one input stream at a peer are fused into a shared operator
//!   DAG ([`crate::shared::FlowDag`]); serving an item runs it through the
//!   whole DAG incrementally (shared prefixes execute once) and occupies
//!   the server for `per_item_overhead_us` plus the measured operator work
//!   scaled by the peer's speed (`pindex`) over its capacity. Within one
//!   timestamp, the DAGs claimed by distinct peers execute in parallel on
//!   a worker pool; results are applied in claim order, so runs stay
//!   byte-deterministic.
//! * **Links**: a transmission takes `link_latency_us` plus the item's
//!   exact serialized bytes over the edge bandwidth; links carry any
//!   number of items concurrently (the bandwidth share is charged per
//!   item, not queued).
//! * **Faults** ([`fault`]): scripted peer crashes/recoveries and link
//!   drops. A crash loses the peer's queued items; traffic addressed to
//!   dead peers, down links, or retired flows is counted in
//!   [`RuntimeMetrics::items_lost`].
//!
//! The runtime deliberately does **not** flush windowed operator state at
//! the horizon: only items actually delivered within the simulated time
//! count, exactly like a wall-clock measurement window on the cluster.
//!
//! Re-planning after a failure happens *outside* this module (the planner
//! lives in `dss_core`): the driver pauses at a fault, rewrites the
//! deployment, and calls [`LiveRuntime::sync_deployment`] to pick up new
//! flows and retired ones. Windowed operator state of re-planned flows
//! restarts empty — re-subscription preserves the query, not the state —
//! *except* for flows the planner marked as loss-free handoffs
//! ([`Deployment::is_handoff`], set when widening patches a consumer and
//! delta migration beats a full rebuild): their in-place rebuild carries
//! the open window state across ([`FlowDag::reregister_migrating_batch`]),
//! moving O(delta) items instead of restarting the windows.

pub mod fault;
mod mailbox;
mod metrics;

pub use fault::{FaultEvent, FaultKind, FaultScript};
pub use mailbox::{MailboxStats, SyncMailbox};
pub use metrics::{OpWork, QueryMetrics, RuntimeMetrics};

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use dss_xml::writer::serialized_size;
use dss_xml::Node;

use crate::flow::{Deployment, FlowId, FlowOp};
use crate::pool::{max_parallelism, WorkerPool};
use crate::shared::{FlowDag, GroupKey};
use crate::sim::ConfigError;
use crate::topology::{NodeId, Topology};
use mailbox::Mailbox;

/// Live runtime parameters.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Simulated horizon in seconds. Must be positive.
    pub duration_s: f64,
    /// Bounded mailbox capacity per peer (items). Must be at least 1.
    pub mailbox_capacity: usize,
    /// Fixed per-hop link latency in microseconds.
    pub link_latency_us: u64,
    /// Fixed per-item service overhead in microseconds (scheduling,
    /// parsing, framing) on top of measured operator work.
    pub per_item_overhead_us: u64,
    /// Width of the per-edge traffic time buckets in microseconds.
    pub bucket_us: u64,
    /// Record a textual event trace (determinism fingerprinting).
    pub trace: bool,
    /// Keep every delivered item (with its origin timestamp) per query,
    /// for differential comparison against a reference evaluation. Off by
    /// default: long runs would hold the whole output in memory.
    pub record_deliveries: bool,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            duration_s: 10.0,
            mailbox_capacity: 256,
            link_latency_us: 200,
            per_item_overhead_us: 50,
            bucket_us: 1_000_000,
            trace: false,
            record_deliveries: false,
        }
    }
}

impl LiveConfig {
    /// Checks the documented invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err(ConfigError::NonPositiveDuration(self.duration_s));
        }
        if self.mailbox_capacity == 0 {
            return Err(ConfigError::ZeroMailboxCapacity);
        }
        if self.bucket_us == 0 {
            return Err(ConfigError::ZeroBucket);
        }
        Ok(())
    }
}

/// A timed source: the items of a registered stream plus their emission
/// period.
#[derive(Debug, Clone)]
pub struct SourceModel {
    pub items: Vec<Node>,
    /// Microseconds between consecutive item emissions; the first item is
    /// emitted one interarrival after t=0.
    pub interarrival_us: u64,
}

impl SourceModel {
    /// Builds a model emitting at `freq_hz` items per second (the unit of
    /// `StreamStats::frequency`).
    pub fn from_frequency(items: Vec<Node>, freq_hz: f64) -> SourceModel {
        let interarrival_us = if freq_hz > 0.0 && freq_hz.is_finite() {
            ((1e6 / freq_hz).round() as u64).max(1)
        } else {
            u64::MAX
        };
        SourceModel {
            items,
            interarrival_us,
        }
    }
}

enum EventKind {
    /// A source stream emits its next item.
    SourceEmit { source: String, idx: usize },
    /// The peer's server looks at its mailbox.
    StartService { node: NodeId },
    /// A service completed: the produced items leave the processing node.
    EmitOutputs {
        flow: FlowId,
        origin: u64,
        items: Vec<Node>,
    },
    /// An item reaches `route[hop]` of its flow.
    Arrive {
        flow: FlowId,
        hop: usize,
        origin: u64,
        item: Node,
    },
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

// The heap orders on (time, seq) only; seq is unique, giving a total,
// deterministic order. `Reverse` turns the max-heap into a min-heap.
impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Runtime view of one deployed flow.
struct FlowState {
    active: bool,
    label: String,
    node: NodeId,
    route: Vec<NodeId>,
    ops: Vec<FlowOp>,
}

/// One intra-peer sharing group: every active flow consuming `key` at
/// `node`, fused into a single operator DAG.
struct Group {
    node: NodeId,
    key: GroupKey,
    dag: FlowDag,
    /// Active member count — kept outside `dag` because the DAG is checked
    /// out to a worker while its service runs.
    sinks: usize,
}

/// A service claimed during a same-timestamp batch: the group's DAG is
/// checked out and handed to a worker.
struct ServiceClaim {
    node: NodeId,
    group: usize,
    origin: u64,
    item: Node,
    dag: FlowDag,
}

/// A completed service, applied back to the runtime in claim order.
struct ServiceDone {
    node: NodeId,
    group: usize,
    origin: u64,
    dag: FlowDag,
    /// Per-flow outputs, sorted by flow id.
    outputs: Vec<(FlowId, Vec<Node>)>,
    /// Work executed, unscaled by the peer's performance index.
    work: f64,
}

/// The discrete-event scheduler. See the module docs for the model.
pub struct LiveRuntime {
    topo: Topology,
    cfg: LiveConfig,
    now: u64,
    seq: u64,
    horizon_us: u64,
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
    sources: BTreeMap<String, SourceModel>,
    flows: Vec<FlowState>,
    /// Sharing groups, in creation order (deterministic).
    groups: Vec<Group>,
    group_of: BTreeMap<(NodeId, GroupKey), usize>,
    /// Each flow's sharing group (None for flows that joined retired).
    flow_group: Vec<Option<usize>>,
    /// Lazily started worker pool for same-timestamp service batches.
    pool: Option<WorkerPool>,
    /// Peers with a service claimed in the current timestamp batch.
    claimed: Vec<bool>,
    /// Delivery flow → query id.
    deliveries: BTreeMap<FlowId, String>,
    mailboxes: Vec<Mailbox>,
    busy_until: Vec<u64>,
    // Measurements.
    node_work: Vec<f64>,
    edge_bytes: Vec<u64>,
    edge_bytes_buckets: Vec<Vec<u64>>,
    items_lost: u64,
    widen_delta_items: u64,
    windows_migrated: u64,
    windows_dropped: u64,
    latencies: BTreeMap<String, Vec<u64>>,
    delivered: BTreeMap<String, u64>,
    duplicates: BTreeMap<String, u64>,
    last_origin: BTreeMap<String, u64>,
    recovering_since: BTreeMap<String, u64>,
    recoveries: BTreeMap<String, Vec<u64>>,
    /// Per query: every delivered item with its origin timestamp, in
    /// delivery order (only when `cfg.record_deliveries`).
    delivered_items: BTreeMap<String, Vec<(u64, Node)>>,
    /// Mailbox drops attributed per (peer, flow label): one count per
    /// active member flow of the group whose entry was refused.
    dropped_flows: BTreeMap<(NodeId, String), u64>,
    trace: Vec<String>,
}

impl LiveRuntime {
    /// Builds a runtime over a (cloned) topology and the current
    /// deployment. `deliveries` maps each query's delivery flow to the
    /// query id; only those flows' final-hop arrivals count as deliveries.
    pub fn new(
        topo: Topology,
        deployment: &Deployment,
        sources: BTreeMap<String, SourceModel>,
        deliveries: BTreeMap<FlowId, String>,
        cfg: LiveConfig,
    ) -> Result<LiveRuntime, ConfigError> {
        cfg.validate()?;
        deployment.validate(&topo);
        let horizon_us = fault::secs_to_us(cfg.duration_s);
        let n_buckets = (horizon_us / cfg.bucket_us + 1) as usize;
        let n_peers = topo.peer_count();
        let n_edges = topo.edge_count();
        let mut rt = LiveRuntime {
            topo,
            cfg,
            now: 0,
            seq: 0,
            horizon_us,
            heap: BinaryHeap::new(),
            sources,
            flows: Vec::new(),
            groups: Vec::new(),
            group_of: BTreeMap::new(),
            flow_group: Vec::new(),
            pool: None,
            claimed: vec![false; n_peers],
            deliveries: BTreeMap::new(),
            mailboxes: (0..n_peers)
                .map(|_| Mailbox::new(cfg.mailbox_capacity))
                .collect(),
            busy_until: vec![0; n_peers],
            node_work: vec![0.0; n_peers],
            edge_bytes: vec![0; n_edges],
            edge_bytes_buckets: vec![vec![0; n_buckets]; n_edges],
            items_lost: 0,
            widen_delta_items: 0,
            windows_migrated: 0,
            windows_dropped: 0,
            latencies: BTreeMap::new(),
            delivered: BTreeMap::new(),
            duplicates: BTreeMap::new(),
            last_origin: BTreeMap::new(),
            recovering_since: BTreeMap::new(),
            recoveries: BTreeMap::new(),
            delivered_items: BTreeMap::new(),
            dropped_flows: BTreeMap::new(),
            trace: Vec::new(),
        };
        rt.sync_deployment(deployment, deliveries);
        // Seed the periodic source emissions (BTreeMap order: stable).
        let seeds: Vec<(String, u64)> = rt
            .sources
            .iter()
            .filter(|(_, m)| !m.items.is_empty())
            .map(|(name, m)| (name.clone(), m.interarrival_us))
            .collect();
        for (source, at) in seeds {
            if at <= rt.horizon_us {
                rt.schedule(at, EventKind::SourceEmit { source, idx: 0 });
            }
        }
        Ok(rt)
    }

    /// The simulated horizon in microseconds.
    pub fn horizon_us(&self) -> u64 {
        self.horizon_us
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now
    }

    /// Reconciles the runtime with a rewritten deployment (after a
    /// failover re-plan): new flows join their peer's sharing group,
    /// retired flows leave it (operators nothing else shares are pruned),
    /// and flows whose operator list changed in place (stream widening)
    /// rebuild only the suffix below the first changed operator — the
    /// windowed state of the unchanged leading prefix survives.
    ///
    /// Rebuilt flows the planner marked as loss-free handoffs
    /// ([`Deployment::is_handoff`]) additionally migrate their open window
    /// state across the rebuild. Handoffs are applied *per sharing group
    /// as one batch*: sibling consumers patched by the same widening share
    /// stateful DAG nodes, whose state only exports once the last sharer
    /// releases it.
    pub fn sync_deployment(
        &mut self,
        deployment: &Deployment,
        deliveries: BTreeMap<FlowId, String>,
    ) {
        // In-place rewrites, collected per sharing group (BTreeMap + id
        // order: deterministic), split into planned handoffs and plain
        // rebuilds.
        let mut handoffs: BTreeMap<usize, Vec<FlowId>> = BTreeMap::new();
        for (id, flow) in deployment.flows().iter().enumerate() {
            if id < self.flows.len() {
                let state = &mut self.flows[id];
                if flow.retired {
                    if state.active {
                        state.active = false;
                        if let Some(g) = self.flow_group[id] {
                            self.groups[g].dag.retire(id);
                            self.groups[g].sinks -= 1;
                        }
                    }
                } else if state.ops != flow.ops {
                    state.ops = flow.ops.clone();
                    state.label = flow.label.clone();
                    if let Some(g) = self.flow_group[id] {
                        if deployment.is_handoff(id) {
                            handoffs.entry(g).or_default().push(id);
                        } else {
                            self.groups[g].dag.reregister(id, &flow.ops);
                        }
                    }
                }
            } else {
                let active = !flow.retired;
                self.flows.push(FlowState {
                    active,
                    label: flow.label.clone(),
                    node: flow.processing_node,
                    route: flow.route.clone(),
                    ops: flow.ops.clone(),
                });
                let group = active.then(|| {
                    let g = self.group_for(flow.processing_node, GroupKey::of(&flow.input));
                    self.groups[g].dag.register(id, &flow.ops);
                    self.groups[g].sinks += 1;
                    g
                });
                self.flow_group.push(group);
            }
        }
        for (g, ids) in handoffs {
            let batch: Vec<(FlowId, &[FlowOp])> = ids
                .iter()
                .map(|&id| (id, deployment.flow(id).ops.as_slice()))
                .collect();
            let report = self.groups[g].dag.reregister_migrating_batch(&batch);
            self.widen_delta_items += report.items_moved;
            self.windows_migrated += report.ops_migrated;
            self.windows_dropped += report.ops_dropped;
            dss_telemetry::event("widen_handoff", || {
                let peer = self.topo.peer(self.groups[g].node).name.as_str();
                [
                    ("peer", dss_telemetry::Value::from(peer)),
                    ("flows", (ids.len() as u64).into()),
                    ("items_moved", report.items_moved.into()),
                    ("ops_migrated", report.ops_migrated.into()),
                    ("ops_dropped", report.ops_dropped.into()),
                ]
            });
        }
        for q in deliveries.values() {
            self.delivered.entry(q.clone()).or_insert(0);
        }
        self.deliveries = deliveries;
    }

    /// The sharing group for (`node`, `key`), created on first use.
    fn group_for(&mut self, node: NodeId, key: GroupKey) -> usize {
        if let Some(&g) = self.group_of.get(&(node, key.clone())) {
            return g;
        }
        let g = self.groups.len();
        self.groups.push(Group {
            node,
            key: key.clone(),
            dag: FlowDag::new(),
            sinks: 0,
        });
        self.group_of.insert((node, key), g);
        g
    }

    /// Applies one scripted fault at the current simulation time.
    pub fn apply_fault(&mut self, fault: &FaultEvent) {
        match fault.kind {
            FaultKind::PeerCrash(peer) => {
                self.topo.set_peer_up(peer, false);
                // A drained entry would have served its whole group: count
                // one loss per flow that was waiting on it.
                let lost: u64 = self.mailboxes[peer]
                    .drain_all()
                    .into_iter()
                    .map(|(g, _, _)| self.groups[g].sinks.max(1) as u64)
                    .sum();
                self.items_lost += lost;
                self.busy_until[peer] = 0;
                self.trace_line(|topo| format!("fault crash {} lost={lost}", topo.peer(peer).name));
                dss_telemetry::event("fault", || {
                    [
                        ("kind", dss_telemetry::Value::from("peer-crash")),
                        ("peer", self.topo.peer(peer).name.as_str().into()),
                        ("at_us", self.now.into()),
                        ("items_lost", lost.into()),
                    ]
                });
            }
            FaultKind::PeerRecover(peer) => {
                self.topo.set_peer_up(peer, true);
                self.trace_line(|topo| format!("fault recover {}", topo.peer(peer).name));
                dss_telemetry::event("fault", || {
                    [
                        ("kind", dss_telemetry::Value::from("peer-recover")),
                        ("peer", self.topo.peer(peer).name.as_str().into()),
                        ("at_us", self.now.into()),
                    ]
                });
            }
            FaultKind::LinkDown(edge) => {
                self.topo.set_edge_up(edge, false);
                self.trace_line(|_| format!("fault link-down e{edge}"));
                dss_telemetry::event("fault", || {
                    [
                        ("kind", dss_telemetry::Value::from("link-down")),
                        ("edge", edge.into()),
                        ("at_us", self.now.into()),
                    ]
                });
            }
            FaultKind::LinkUp(edge) => {
                self.topo.set_edge_up(edge, true);
                self.trace_line(|_| format!("fault link-up e{edge}"));
                dss_telemetry::event("fault", || {
                    [
                        ("kind", dss_telemetry::Value::from("link-up")),
                        ("edge", edge.into()),
                        ("at_us", self.now.into()),
                    ]
                });
            }
        }
    }

    /// Marks `query` as re-planned at time `t`: its next delivery records
    /// the recovery time `delivery - t`.
    pub fn mark_query_recovering(&mut self, query: &str, t_us: u64) {
        self.recovering_since.insert(query.to_string(), t_us);
    }

    /// Runs all events up to and including `t_us` (capped at the horizon).
    ///
    /// Events sharing a timestamp run as one batch in three phases: (A)
    /// every event at that time is handled in sequence order, with each
    /// `StartService` *claiming* at most one mailbox item per idle peer;
    /// (B) the claimed peers' DAG services execute in parallel on the
    /// worker pool; (C) results are applied in claim order — so outputs,
    /// work charges, and follow-up events are identical however the OS
    /// schedules the workers.
    pub fn run_until(&mut self, t_us: u64) {
        let t = t_us.min(self.horizon_us);
        while let Some(std::cmp::Reverse(head)) = self.heap.peek() {
            if head.time > t {
                break;
            }
            let now = head.time;
            self.now = now;
            // Phase A: drain the timestamp (handlers may add more events
            // at `now`; they are drained too, in seq order).
            let mut claims: Vec<ServiceClaim> = Vec::new();
            loop {
                match self.heap.peek() {
                    Some(std::cmp::Reverse(ev)) if ev.time == now => {}
                    _ => break,
                }
                let std::cmp::Reverse(ev) = self.heap.pop().expect("peeked");
                match ev.kind {
                    EventKind::SourceEmit { source, idx } => self.handle_source_emit(source, idx),
                    EventKind::StartService { node } => self.try_claim(node, &mut claims),
                    EventKind::EmitOutputs {
                        flow,
                        origin,
                        items,
                    } => self.handle_emit_outputs(flow, origin, items),
                    EventKind::Arrive {
                        flow,
                        hop,
                        origin,
                        item,
                    } => self.handle_arrive(flow, hop, origin, item),
                }
            }
            // Phases B + C.
            for done in self.run_services(claims) {
                self.apply_service(done);
            }
        }
        self.now = self.now.max(t);
    }

    /// Hands out the recorded per-query deliveries (empty unless
    /// `LiveConfig::record_deliveries`): every delivered item with its
    /// origin timestamp, in delivery order. Call before [`Self::finish`].
    pub fn take_delivered_items(&mut self) -> BTreeMap<String, Vec<(u64, Node)>> {
        std::mem::take(&mut self.delivered_items)
    }

    /// Runs to the horizon and produces the report plus the event trace
    /// (empty unless `LiveConfig::trace`).
    pub fn finish(mut self) -> (RuntimeMetrics, Vec<String>) {
        self.run_until(self.horizon_us);
        let mut queries: BTreeMap<String, QueryMetrics> = BTreeMap::new();
        for (q, delivered) in &self.delivered {
            let mut m = QueryMetrics {
                delivered: *delivered,
                duplicates: self.duplicates.get(q).copied().unwrap_or(0),
                recoveries_us: self.recoveries.get(q).cloned().unwrap_or_default(),
                ..QueryMetrics::default()
            };
            m.set_latencies(self.latencies.get(q).cloned().unwrap_or_default());
            queries.insert(q.clone(), m);
        }
        let mut node_ops: Vec<Vec<OpWork>> = vec![Vec::new(); self.topo.peer_count()];
        for g in &self.groups {
            for s in g.dag.node_stats() {
                node_ops[g.node].push(OpWork {
                    name: s.stats.name,
                    depth: s.depth,
                    sharers: s.sharers,
                    items_in: s.stats.items_in,
                    items_out: s.stats.items_out,
                    work: s.stats.work,
                });
            }
            // Work executed by since-pruned nodes (retired flows'
            // exclusive operators) still happened: report it as one
            // zero-sharer aggregate so the books balance after failovers.
            let r = g.dag.retired_stats();
            if r.items_in > 0 {
                node_ops[g.node].push(OpWork {
                    name: r.name,
                    depth: 0,
                    sharers: 0,
                    items_in: r.items_in,
                    items_out: r.items_out,
                    work: r.work,
                });
            }
        }
        let metrics = RuntimeMetrics {
            horizon_us: self.horizon_us,
            bucket_us: self.cfg.bucket_us,
            queue_high_water: self.mailboxes.iter().map(|m| m.high_water).collect(),
            mailbox_dropped: self.mailboxes.iter().map(|m| m.dropped).collect(),
            mailbox_dropped_flows: self.dropped_flows,
            items_lost: self.items_lost,
            widen_delta_items: self.widen_delta_items,
            windows_migrated: self.windows_migrated,
            windows_dropped: self.windows_dropped,
            node_work: self.node_work,
            edge_bytes: self.edge_bytes,
            edge_bytes_buckets: self.edge_bytes_buckets,
            queries,
            node_ops,
        };
        if dss_telemetry::enabled() {
            metrics.publish(&self.topo);
        }
        (metrics, self.trace)
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(std::cmp::Reverse(Event { time, seq, kind }));
    }

    fn trace_line(&mut self, f: impl FnOnce(&Topology) -> String) {
        if self.cfg.trace {
            let line = format!("{:>12} {}", self.now, f(&self.topo));
            self.trace.push(line);
        }
    }

    fn handle_emit_outputs(&mut self, flow: FlowId, origin: u64, items: Vec<Node>) {
        if !self.flows[flow].active || !self.topo.peer(self.flows[flow].node).up {
            self.items_lost += items.len() as u64;
            return;
        }
        self.trace_line(|_| format!("out f{flow} n={}", items.len()));
        for item in items {
            self.dispatch_at(flow, 0, origin, item);
        }
    }

    fn handle_arrive(&mut self, flow: FlowId, hop: usize, origin: u64, item: Node) {
        let node = self.flows[flow].route[hop];
        if !self.flows[flow].active || !self.topo.peer(node).up {
            self.items_lost += 1;
            return;
        }
        self.trace_line(|_| format!("arr f{flow} hop={hop}"));
        self.dispatch_at(flow, hop, origin, item);
    }

    fn handle_source_emit(&mut self, source: String, idx: usize) {
        let model = &self.sources[&source];
        let (item, interarrival, more) = (
            model.items[idx].clone(),
            model.interarrival_us,
            idx + 1 < model.items.len(),
        );
        self.trace_line(|_| format!("src {source} #{idx}"));
        let origin = self.now;
        // Hand the item to every sharing group reading this source — one
        // mailbox entry per group serves all its member flows.
        let readers: Vec<usize> = self
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.sinks > 0 && matches!(&g.key, GroupKey::Source(s) if *s == source))
            .map(|(i, _)| i)
            .collect();
        for group in readers {
            self.enqueue(group, origin, item.clone());
        }
        if more {
            let next = self.now.saturating_add(interarrival);
            if next <= self.horizon_us {
                self.schedule(
                    next,
                    EventKind::SourceEmit {
                        source,
                        idx: idx + 1,
                    },
                );
            }
        }
    }

    /// Puts an item into a sharing group's input queue at its peer and
    /// kicks the server there.
    fn enqueue(&mut self, group: usize, origin: u64, item: Node) {
        let node = self.groups[group].node;
        if !self.topo.peer(node).up {
            // The entry would have served every member flow.
            self.items_lost += self.groups[group].sinks.max(1) as u64;
            return;
        }
        if self.mailboxes[node].push(group, origin, item) {
            self.schedule(self.now, EventKind::StartService { node });
        } else {
            // The refused entry would have served every member flow of the
            // group: attribute the drop to each of them, so the report can
            // say which flow (and thus which query/stream) lost data — the
            // per-peer aggregate alone cannot.
            for f in 0..self.flows.len() {
                if self.flow_group[f] == Some(group) && self.flows[f].active {
                    *self
                        .dropped_flows
                        .entry((node, self.flows[f].label.clone()))
                        .or_insert(0) += 1;
                    dss_telemetry::counter_add(
                        "runtime.mailbox.dropped",
                        || {
                            vec![
                                ("peer", self.topo.peer(node).name.clone()),
                                ("flow", self.flows[f].label.clone()),
                            ]
                        },
                        1,
                    );
                }
            }
        }
    }

    /// Phase A of a timestamp batch: an idle, unclaimed peer checks out
    /// its next live mailbox entry (and the group's DAG) for execution.
    fn try_claim(&mut self, node: NodeId, claims: &mut Vec<ServiceClaim>) {
        if !self.topo.peer(node).up || self.now < self.busy_until[node] || self.claimed[node] {
            return;
        }
        loop {
            let Some((group, origin, item)) = self.mailboxes[node].pop() else {
                return;
            };
            if self.groups[group].sinks == 0 {
                // Every member retired while the item waited.
                self.items_lost += 1;
                continue;
            }
            let dag = std::mem::take(&mut self.groups[group].dag);
            self.claimed[node] = true;
            claims.push(ServiceClaim {
                node,
                group,
                origin,
                item,
                dag,
            });
            return;
        }
    }

    /// Phase B: execute the claimed services — in parallel on the worker
    /// pool when more than one peer claimed. Results come back in claim
    /// order whatever the thread interleaving.
    fn run_services(&mut self, claims: Vec<ServiceClaim>) -> Vec<ServiceDone> {
        fn run_one(mut c: ServiceClaim) -> ServiceDone {
            let before = c.dag.total_work();
            let mut outputs: Vec<(FlowId, Vec<Node>)> = Vec::new();
            c.dag.process_into(&c.item, &mut |f, n| match outputs
                .binary_search_by_key(&f, |&(id, _)| id)
            {
                Ok(i) => outputs[i].1.push(n.clone()),
                Err(i) => outputs.insert(i, (f, vec![n.clone()])),
            });
            let work = c.dag.total_work() - before;
            ServiceDone {
                node: c.node,
                group: c.group,
                origin: c.origin,
                dag: c.dag,
                outputs,
                work,
            }
        }
        if claims.len() <= 1 {
            return claims.into_iter().map(run_one).collect();
        }
        let pool = self
            .pool
            .get_or_insert_with(|| WorkerPool::new(max_parallelism()));
        pool.run(claims, run_one)
    }

    /// Phase C: apply one completed service — return the DAG, charge the
    /// work, occupy the server, and schedule the per-flow outputs.
    fn apply_service(&mut self, done: ServiceDone) {
        let ServiceDone {
            node,
            group,
            origin,
            dag,
            outputs,
            work,
        } = done;
        self.groups[group].dag = dag;
        self.claimed[node] = false;
        let peer = self.topo.peer(node);
        let scaled = work * peer.pindex;
        let service_us = (self.cfg.per_item_overhead_us as f64 + scaled / peer.capacity * 1e6)
            .round()
            .max(1.0) as u64;
        self.node_work[node] += scaled;
        let done_at = self.now + service_us;
        self.busy_until[node] = done_at;
        let n_out: usize = outputs.iter().map(|(_, v)| v.len()).sum();
        self.trace_line(|_| format!("svc n{node} g{group} outs={n_out} busy={service_us}"));
        // Phase C runs on the control thread in claim order, so recording
        // here is deterministic (the worker pool in phase B records nothing).
        dss_telemetry::histogram_record(
            "runtime.service_us",
            || vec![("peer", self.topo.peer(node).name.clone())],
            service_us as f64,
        );
        dss_telemetry::histogram_record(
            "runtime.mailbox.depth",
            || vec![("peer", self.topo.peer(node).name.clone())],
            self.mailboxes[node].len() as f64,
        );
        for (flow, items) in outputs {
            if !items.is_empty() {
                self.schedule(
                    done_at,
                    EventKind::EmitOutputs {
                        flow,
                        origin,
                        items,
                    },
                );
            }
        }
        // Look at the mailbox again once this service is over.
        self.schedule(done_at, EventKind::StartService { node });
    }

    /// An item of `flow` is present at `route[hop]`: offer it to the taps
    /// reading the passing stream there, then either forward it one hop or
    /// — at the end of the route — count the delivery.
    fn dispatch_at(&mut self, flow: FlowId, hop: usize, origin: u64, item: Node) {
        let node = self.flows[flow].route[hop];
        // Offer the passing item to the taps reading it here: all of them
        // form one sharing group, fed by a single enqueue.
        if let Some(&g) = self.group_of.get(&(node, GroupKey::Tap(flow))) {
            if self.groups[g].sinks > 0 {
                self.enqueue(g, origin, item.clone());
            }
        }
        if hop + 1 < self.flows[flow].route.len() {
            let next = self.flows[flow].route[hop + 1];
            let edge_id = self
                .topo
                .edge_between(node, next)
                .expect("deployment validated against topology");
            let edge = self.topo.edge(edge_id);
            if !edge.up {
                self.items_lost += 1;
                return;
            }
            let bytes = serialized_size(&item) as u64;
            let tx_us = ((bytes as f64) * 8000.0 / edge.bandwidth_kbps).round() as u64;
            self.edge_bytes[edge_id] += bytes;
            let bucket = ((self.now / self.cfg.bucket_us) as usize)
                .min(self.edge_bytes_buckets[edge_id].len() - 1);
            self.edge_bytes_buckets[edge_id][bucket] += bytes;
            self.schedule(
                self.now + self.cfg.link_latency_us + tx_us,
                EventKind::Arrive {
                    flow,
                    hop: hop + 1,
                    origin,
                    item,
                },
            );
        } else if let Some(query) = self.deliveries.get(&flow).cloned() {
            let latency = self.now - origin;
            *self.delivered.entry(query.clone()).or_insert(0) += 1;
            self.latencies
                .entry(query.clone())
                .or_default()
                .push(latency);
            match self.last_origin.get(&query) {
                Some(&last) if origin < last => {
                    *self.duplicates.entry(query.clone()).or_insert(0) += 1;
                }
                _ => {
                    self.last_origin.insert(query.clone(), origin);
                }
            }
            if let Some(since) = self.recovering_since.remove(&query) {
                self.recoveries
                    .entry(query.clone())
                    .or_default()
                    .push(self.now.saturating_sub(since));
            }
            if self.cfg.record_deliveries {
                self.delivered_items
                    .entry(query.clone())
                    .or_default()
                    .push((origin, item));
            }
            self.trace_line(|_| format!("dlv {query} lat={latency}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowInput, StreamFlow};
    use crate::topology::grid_topology;
    use dss_properties::{InputProperties, Properties};

    fn items(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| {
                Node::elem(
                    "photon",
                    vec![
                        Node::leaf("en", format!("{}", 1.0 + (i % 10) as f64 / 10.0)),
                        Node::leaf("det_time", i.to_string()),
                    ],
                )
            })
            .collect()
    }

    fn one_flow_setup() -> (Topology, Deployment, BTreeMap<FlowId, String>) {
        let t = grid_topology(2, 2);
        let (sp0, sp1, sp3) = (
            t.expect_node("SP0"),
            t.expect_node("SP1"),
            t.expect_node("SP3"),
        );
        let mut d = Deployment::new();
        let f = d.add_flow(StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0, sp1, sp3],
            properties: Some(Properties::single(InputProperties::original("photons"))),
            retired: false,
        });
        let deliveries = BTreeMap::from([(f, "q".to_string())]);
        (t, d, deliveries)
    }

    fn sources(n: usize, freq: f64) -> BTreeMap<String, SourceModel> {
        BTreeMap::from([(
            "photons".to_string(),
            SourceModel::from_frequency(items(n), freq),
        )])
    }

    #[test]
    fn config_validation() {
        assert!(LiveConfig::default().validate().is_ok());
        let bad = LiveConfig {
            duration_s: 0.0,
            ..LiveConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::NonPositiveDuration(0.0)));
        let bad = LiveConfig {
            mailbox_capacity: 0,
            ..LiveConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroMailboxCapacity));
        let bad = LiveConfig {
            bucket_us: 0,
            ..LiveConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroBucket));
    }

    #[test]
    fn delivers_all_items_with_positive_latency() {
        let (t, d, deliveries) = one_flow_setup();
        let cfg = LiveConfig {
            duration_s: 30.0,
            ..LiveConfig::default()
        };
        let rt = LiveRuntime::new(t, &d, sources(20, 10.0), deliveries, cfg).unwrap();
        let (m, _) = rt.finish();
        let q = &m.queries["q"];
        assert_eq!(q.delivered, 20);
        assert_eq!(q.duplicates, 0);
        // Two hops with 200µs latency each, plus service and transmission.
        assert!(q.latency_min_us.unwrap() >= 400);
        assert!(q.latency_p99_us.unwrap() >= q.latency_min_us.unwrap());
        assert_eq!(m.items_lost, 0);
        // Both edges on the route carried every item's bytes.
        let positive = m.edge_bytes.iter().filter(|&&b| b > 0).count();
        assert_eq!(positive, 2);
        // The time buckets sum to the per-edge totals.
        for (e, total) in m.edge_bytes.iter().enumerate() {
            assert_eq!(m.edge_bytes_buckets[e].iter().sum::<u64>(), *total);
        }
        assert!(m.node_work.iter().all(|&w| w >= 0.0));
        assert!(m.queue_high_water.iter().any(|&h| h > 0));
    }

    #[test]
    fn horizon_cuts_off_late_items() {
        let (t, d, deliveries) = one_flow_setup();
        // 20 items at 1 Hz but only 5 simulated seconds: items 1..=4 are
        // emitted in time (first at t=1s), the rest never happen.
        let cfg = LiveConfig {
            duration_s: 5.0,
            ..LiveConfig::default()
        };
        let rt = LiveRuntime::new(t, &d, sources(20, 1.0), deliveries, cfg).unwrap();
        let (m, _) = rt.finish();
        assert!(m.queries["q"].delivered < 20);
        assert!(m.queries["q"].delivered >= 4);
    }

    #[test]
    fn peer_crash_loses_traffic_and_recovery_restores_it() {
        let (t, d, deliveries) = one_flow_setup();
        let sp1 = t.expect_node("SP1");
        let cfg = LiveConfig {
            duration_s: 30.0,
            ..LiveConfig::default()
        };
        let mut rt = LiveRuntime::new(t, &d, sources(25, 1.0), deliveries, cfg).unwrap();
        // Crash the middle hop for 10 simulated seconds.
        rt.run_until(fault::secs_to_us(10.0));
        rt.apply_fault(&FaultEvent {
            at_us: fault::secs_to_us(10.0),
            kind: FaultKind::PeerCrash(sp1),
        });
        rt.run_until(fault::secs_to_us(20.0));
        rt.apply_fault(&FaultEvent {
            at_us: fault::secs_to_us(20.0),
            kind: FaultKind::PeerRecover(sp1),
        });
        let (m, _) = rt.finish();
        let q = &m.queries["q"];
        assert!(m.items_lost > 0, "items crossing SP1 while down are lost");
        assert!(q.delivered > 0, "items after recovery are delivered");
        assert!(
            (q.delivered + m.items_lost) >= 25,
            "every emitted item is accounted for: {} + {}",
            q.delivered,
            m.items_lost
        );
    }

    #[test]
    fn link_down_drops_in_transit() {
        let (t, d, deliveries) = one_flow_setup();
        let e = t
            .edge_between(t.expect_node("SP1"), t.expect_node("SP3"))
            .unwrap();
        let cfg = LiveConfig {
            duration_s: 30.0,
            ..LiveConfig::default()
        };
        let mut rt = LiveRuntime::new(t, &d, sources(25, 1.0), deliveries, cfg).unwrap();
        rt.run_until(0);
        rt.apply_fault(&FaultEvent {
            at_us: 0,
            kind: FaultKind::LinkDown(e),
        });
        let (m, _) = rt.finish();
        assert_eq!(m.queries["q"].delivered, 0);
        assert_eq!(m.items_lost, 25);
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let mk = || {
            let (t, d, deliveries) = one_flow_setup();
            let cfg = LiveConfig {
                duration_s: 10.0,
                trace: true,
                ..LiveConfig::default()
            };
            let rt = LiveRuntime::new(t, &d, sources(30, 5.0), deliveries, cfg).unwrap();
            rt.finish()
        };
        let (m1, t1) = mk();
        let (m2, t2) = mk();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn tiny_mailbox_drops_bursts() {
        let (t, d, deliveries) = one_flow_setup();
        // 1000 Hz into a 1-item mailbox with 50µs overhead per item is
        // sustainable, but the shared clock granularity makes bursts; use
        // an extreme rate to force drops.
        let cfg = LiveConfig {
            duration_s: 5.0,
            mailbox_capacity: 1,
            per_item_overhead_us: 5_000,
            ..LiveConfig::default()
        };
        let sp0 = t.expect_node("SP0");
        let rt = LiveRuntime::new(t, &d, sources(200, 1000.0), deliveries, cfg).unwrap();
        let (m, _) = rt.finish();
        assert!(m.total_dropped() > 0, "overloaded mailbox must drop");
        assert!(m.queries["q"].delivered > 0);
        assert!(m.queue_high_water.contains(&1));
        // Every drop is attributed to the flow that lost data, not just to
        // the peer: the single flow here reads "photons" at SP0.
        let attributed = m
            .mailbox_dropped_flows
            .get(&(sp0, "photons".to_string()))
            .copied()
            .unwrap_or(0);
        assert_eq!(
            attributed, m.mailbox_dropped[sp0],
            "single-flow group: per-flow drops must equal the peer aggregate"
        );
        assert_eq!(
            m.mailbox_dropped_flows.values().sum::<u64>(),
            m.total_dropped(),
            "one member flow per group: attribution covers every drop"
        );
    }
}
