//! Time-aware measurements produced by the live runtime.
//!
//! Where the batch simulator's [`crate::metrics::NetworkMetrics`] reports
//! one aggregate number per edge/peer (Figures 6/7), the live runtime adds
//! the time axis: queue depths, per-query end-to-end latency percentiles,
//! bytes per edge bucketed over time, and the cost of failures (items
//! lost, duplicates, recovery times).

use std::collections::BTreeMap;

use crate::topology::{NodeId, Topology};

/// Per-query delivery statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// Result items delivered to the query's peer within the horizon.
    pub delivered: u64,
    /// Deliveries whose source timestamp precedes an already-delivered
    /// item — re-sent data after a failover re-subscription.
    pub duplicates: u64,
    /// End-to-end latency (source emission → delivery) extremes/percentile,
    /// `None` until the first delivery.
    pub latency_min_us: Option<u64>,
    pub latency_mean_us: Option<u64>,
    pub latency_p99_us: Option<u64>,
    /// For each failover that hit this query: time from the fault to the
    /// first post-re-subscription delivery (recovery time).
    pub recoveries_us: Vec<u64>,
}

impl QueryMetrics {
    /// Folds a sorted latency sample into min/mean/p99.
    pub(crate) fn set_latencies(&mut self, mut sample: Vec<u64>) {
        if sample.is_empty() {
            return;
        }
        sample.sort_unstable();
        self.latency_min_us = Some(sample[0]);
        let sum: u128 = sample.iter().map(|&l| l as u128).sum();
        self.latency_mean_us = Some((sum / sample.len() as u128) as u64);
        let idx = (sample.len() * 99).div_ceil(100).saturating_sub(1);
        self.latency_p99_us = Some(sample[idx]);
    }
}

/// Execution counters of one operator node in a peer's shared DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct OpWork {
    /// Operator kind (`select`, `project`, `aggregate`, …).
    pub name: &'static str,
    /// Depth in the sharing trie (0 = reads the group's input directly).
    pub depth: usize,
    /// How many flows shared this node at the end of the run. Values above
    /// one mean the node's work was executed once *for all of them*.
    pub sharers: usize,
    /// Items the node processed.
    pub items_in: u64,
    /// Items the node emitted.
    pub items_out: u64,
    /// Work units executed (unscaled by the peer's performance index).
    pub work: f64,
}

/// The live runtime's report: per-peer queueing behaviour, per-edge traffic
/// over time, and per-query delivery quality.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeMetrics {
    /// Simulated horizon in microseconds.
    pub horizon_us: u64,
    /// Width of one `edge_bytes_buckets` interval in microseconds.
    pub bucket_us: u64,
    /// Per-peer mailbox depth high-water marks.
    pub queue_high_water: Vec<usize>,
    /// Per-peer items dropped at a full mailbox.
    pub mailbox_dropped: Vec<u64>,
    /// Mailbox drops attributed per (peer, flow label). A refused entry
    /// would have served every active member flow of its sharing group, so
    /// each drop counts once *per member flow* here — the per-peer
    /// aggregate above cannot say which flow (query/stream) lost data.
    pub mailbox_dropped_flows: BTreeMap<(NodeId, String), u64>,
    /// Items lost to faults: drained from crashed mailboxes, dropped on
    /// down links, or addressed to dead peers/retired flows.
    pub items_lost: u64,
    /// Items moved by planned loss-free handoffs (widening/narrowing):
    /// open window accumulators and buffered window contents migrated
    /// across in-place chain rebuilds — the O(delta) movement that
    /// replaces replaying an O(window extent) of input.
    pub widen_delta_items: u64,
    /// Stateful operators whose open windows survived an in-place rebuild
    /// via migration.
    pub windows_migrated: u64,
    /// Exported window snapshots no rebuilt operator could adopt exactly:
    /// that state dropped and the affected windows restarted, as a plain
    /// rebuild would.
    pub windows_dropped: u64,
    /// Per-peer operator work executed (scaled by performance index, same
    /// unit as the batch simulator's `node_work`).
    pub node_work: Vec<f64>,
    /// Per-edge total bytes carried.
    pub edge_bytes: Vec<u64>,
    /// Per-edge bytes per time bucket (the Figure 6/7 traffic numbers as a
    /// time series).
    pub edge_bytes_buckets: Vec<Vec<u64>>,
    /// Per-query delivery statistics, keyed by query id.
    pub queries: BTreeMap<String, QueryMetrics>,
    /// Per-peer operator counters of the shared DAGs (one entry per DAG
    /// node in deterministic trie order) — where the sharing wins show.
    pub node_ops: Vec<Vec<OpWork>>,
}

impl RuntimeMetrics {
    /// Total bytes over all edges.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edge_bytes.iter().sum()
    }

    /// Total mailbox drops over all peers.
    pub fn total_dropped(&self) -> u64 {
        self.mailbox_dropped.iter().sum()
    }

    /// Work units intra-peer sharing avoided: each DAG node with `s`
    /// sharers executed once instead of `s` times, saving `(s-1)·work`.
    pub fn shared_work_saved(&self) -> f64 {
        // fold, not sum: an empty iterator's f64 sum is -0.0, which would
        // print as "-0.0 work units saved".
        self.node_ops
            .iter()
            .flatten()
            .filter(|o| o.sharers > 1)
            .map(|o| o.work * (o.sharers - 1) as f64)
            .fold(0.0, |a, b| a + b)
    }

    /// Pushes the report into the telemetry registry: per-peer queue/work
    /// gauges, per-(peer, flow) drop counters, and per-query delivery
    /// counters and latency/recovery values. No-op while recording is
    /// disabled (the caller typically guards on [`dss_telemetry::enabled`]
    /// anyway to skip the iteration).
    pub fn publish(&self, topo: &Topology) {
        for (id, &hw) in self.queue_high_water.iter().enumerate() {
            if hw > 0 {
                dss_telemetry::gauge_set(
                    "runtime.queue_high_water",
                    || vec![("peer", topo.peer(id).name.clone())],
                    hw as f64,
                );
            }
        }
        for (id, &work) in self.node_work.iter().enumerate() {
            if work > 0.0 {
                dss_telemetry::gauge_set(
                    "runtime.node_work",
                    || vec![("peer", topo.peer(id).name.clone())],
                    work,
                );
            }
        }
        for ((peer, flow), &n) in &self.mailbox_dropped_flows {
            dss_telemetry::counter_add(
                "runtime.mailbox.dropped_flow",
                || {
                    vec![
                        ("peer", topo.peer(*peer).name.clone()),
                        ("flow", flow.clone()),
                    ]
                },
                n,
            );
        }
        dss_telemetry::counter_add("runtime.items_lost", Vec::new, self.items_lost);
        dss_telemetry::counter_add(
            "runtime.widen_delta_items",
            Vec::new,
            self.widen_delta_items,
        );
        dss_telemetry::counter_add("runtime.windows_migrated", Vec::new, self.windows_migrated);
        dss_telemetry::counter_add("runtime.windows_dropped", Vec::new, self.windows_dropped);
        for (q, m) in &self.queries {
            dss_telemetry::counter_add(
                "runtime.delivered",
                || vec![("query", q.clone())],
                m.delivered,
            );
            dss_telemetry::counter_add(
                "runtime.duplicates",
                || vec![("query", q.clone())],
                m.duplicates,
            );
            if let Some(mean) = m.latency_mean_us {
                dss_telemetry::gauge_set(
                    "runtime.latency_mean_us",
                    || vec![("query", q.clone())],
                    mean as f64,
                );
            }
            for &r in &m.recoveries_us {
                dss_telemetry::histogram_record(
                    "runtime.recovery_us",
                    || vec![("query", q.clone())],
                    r as f64,
                );
            }
        }
        for (id, ops) in self.node_ops.iter().enumerate() {
            for op in ops {
                if op.sharers > 1 {
                    dss_telemetry::counter_add(
                        "runtime.shared_op_executions",
                        || {
                            vec![
                                ("peer", topo.peer(id).name.clone()),
                                ("op", op.name.to_string()),
                            ]
                        },
                        op.items_in,
                    );
                }
            }
        }
    }

    /// Human-readable report (the `peer_failure` example prints this).
    pub fn report(&self, topo: &Topology) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "runtime report over {:.1}s: {} bytes on {} edges, {} items lost, {} dropped",
            self.horizon_us as f64 / 1e6,
            self.total_edge_bytes(),
            self.edge_bytes.iter().filter(|&&b| b > 0).count(),
            self.items_lost,
            self.total_dropped(),
        );
        if self.windows_migrated > 0 || self.windows_dropped > 0 {
            let _ = writeln!(
                out,
                "  widening handoffs: {} window operator(s) migrated ({} items moved), {} dropped",
                self.windows_migrated, self.widen_delta_items, self.windows_dropped,
            );
        }
        for (q, m) in &self.queries {
            let lat = match (m.latency_min_us, m.latency_mean_us, m.latency_p99_us) {
                (Some(min), Some(mean), Some(p99)) => {
                    format!("latency µs min/mean/p99 {min}/{mean}/{p99}")
                }
                _ => "no deliveries".to_string(),
            };
            let recov = if m.recoveries_us.is_empty() {
                String::new()
            } else {
                format!(
                    ", recovered in {}",
                    m.recoveries_us
                        .iter()
                        .map(|r| format!("{:.2}s", *r as f64 / 1e6))
                        .collect::<Vec<_>>()
                        .join("+")
                )
            };
            let _ = writeln!(
                out,
                "  query {q}: {} delivered ({} duplicates), {lat}{recov}",
                m.delivered, m.duplicates
            );
        }
        for (id, &hw) in self.queue_high_water.iter().enumerate() {
            if hw > 0 {
                let _ = writeln!(
                    out,
                    "  peer {}: queue high-water {hw}, dropped {}",
                    topo.peer(id).name,
                    self.mailbox_dropped[id]
                );
            }
        }
        for ((peer, flow), n) in &self.mailbox_dropped_flows {
            let _ = writeln!(
                out,
                "    drop {} @ {}: {n} items",
                flow,
                topo.peer(*peer).name
            );
        }
        for (id, ops) in self.node_ops.iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  peer {} operators:", topo.peer(id).name);
            for op in ops {
                let _ = writeln!(
                    out,
                    "    {:indent$}{} sharers={} in={} out={} work={:.1}",
                    "",
                    op.name,
                    op.sharers,
                    op.items_in,
                    op.items_out,
                    op.work,
                    indent = op.depth * 2
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats() {
        let mut m = QueryMetrics::default();
        m.set_latencies((1..=100).collect());
        assert_eq!(m.latency_min_us, Some(1));
        assert_eq!(m.latency_mean_us, Some(50));
        assert_eq!(m.latency_p99_us, Some(99));

        let mut single = QueryMetrics::default();
        single.set_latencies(vec![42]);
        assert_eq!(single.latency_min_us, Some(42));
        assert_eq!(single.latency_mean_us, Some(42));
        assert_eq!(single.latency_p99_us, Some(42));

        let mut empty = QueryMetrics::default();
        empty.set_latencies(Vec::new());
        assert_eq!(empty.latency_min_us, None);
    }
}
