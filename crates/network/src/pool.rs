//! Hand-rolled worker pools for parallel peer execution. No external
//! dependencies: plain `std::thread` + channels.
//!
//! Determinism contract: both entry points return results indexed by input
//! position, so callers observe the same ordering however the OS schedules
//! the workers. Any worker panic propagates to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// Worker-thread budget for this host (at least 1).
pub fn max_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over `items` on up to `threads` scoped worker threads and
/// returns the results in input order. Runs inline when parallelism cannot
/// help (a single item or a single thread).
pub fn run_scoped<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    // `thread::scope` joins all workers before returning and re-raises any
    // worker panic on this thread.
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed from a shared queue. Used by the
/// live runtime, which dispatches many small same-timestamp batches — the
/// threads outlive each batch, avoiding per-batch spawn cost.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || loop {
                    // Lock only around `recv`: jobs run unlocked so workers
                    // actually proceed in parallel.
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    job();
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f` over `items` on the pool, returning results in input
    /// order. Blocks until every item completes. Runs inline for ≤1 item.
    ///
    /// # Panics
    /// Panics if a worker died (it panicked in an earlier job).
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let tx = self.tx.as_ref().expect("pool is live");
        let f = Arc::new(f);
        let (rtx, rrx) = mpsc::channel::<(usize, R)>();
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            tx.send(Box::new(move || {
                let r = f(item);
                // The receiver only disappears if the dispatching thread
                // panicked; nothing left to report to then.
                let _ = rtx.send((i, r));
            }))
            .expect("pool workers alive");
        }
        drop(rtx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rrx.recv().expect("worker completed job");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("all jobs reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends each worker's recv loop.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_results_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_scoped(items.clone(), 4, |i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_inline_paths() {
        assert_eq!(run_scoped(vec![7usize], 8, |i| i + 1), vec![8]);
        assert_eq!(run_scoped(vec![1, 2, 3], 1, |i| i * 2), vec![2, 4, 6]);
        assert!(run_scoped(Vec::<usize>::new(), 4, |i| i).is_empty());
    }

    #[test]
    fn pool_results_in_input_order() {
        let pool = WorkerPool::new(4);
        for round in 0..3usize {
            let items: Vec<usize> = (0..50).collect();
            let out = pool.run(items, move |i| i + round);
            assert_eq!(out, (0..50).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_single_item_runs_inline() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.run(vec![5usize], |i| i * i), vec![25]);
        assert!(pool.run(Vec::<usize>::new(), |i: usize| i).is_empty());
    }

    #[test]
    #[should_panic]
    fn scoped_worker_panic_propagates() {
        run_scoped(vec![1usize, 2, 3], 2, |i| {
            assert_ne!(i, 2, "boom");
            i
        });
    }
}
