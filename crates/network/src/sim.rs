//! The network simulator: pushes real XML items through the deployed
//! flows and measures actual bytes per connection and work per peer.
//!
//! The paper evaluated on a blade cluster; we substitute a discrete
//! simulator that executes the *same* operator plans over the *same* XML
//! items and charges edges by the exact serialized size of every item that
//! crosses them (the serializer defines the byte counts, see
//! `dss_xml::writer`). Peer work combines operator execution (per-item base
//! loads scaled by the peer's performance index) and forwarding work for
//! every byte a peer sends or receives — this is what makes pure data
//! shipping show elevated CPU load across all forwarding peers, as in
//! Figure 6.

use std::collections::BTreeMap;

use dss_engine::Emit;
use dss_xml::writer::serialized_size;
use dss_xml::Node;

use crate::flow::{build_flow_pipeline, Deployment, FlowId, FlowInput, FlowOp};
use crate::metrics::NetworkMetrics;
use crate::pool::{max_parallelism, run_scoped};
use crate::routing::path_edges;
use crate::shared::{FlowDag, GroupKey};
use crate::topology::{NodeId, Topology};

/// An invalid simulation or runtime configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `duration_s` must be strictly positive (and finite).
    NonPositiveDuration(f64),
    /// `forward_work_per_kb` must be non-negative.
    NegativeForwardWork(f64),
    /// Mailboxes need room for at least one item.
    ZeroMailboxCapacity,
    /// Metric time buckets must be non-empty intervals.
    ZeroBucket,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveDuration(d) => {
                write!(f, "duration_s must be positive, got {d}")
            }
            ConfigError::NegativeForwardWork(w) => {
                write!(f, "forward_work_per_kb must be non-negative, got {w}")
            }
            ConfigError::ZeroMailboxCapacity => write!(f, "mailbox_capacity must be at least 1"),
            ConfigError::ZeroBucket => write!(f, "bucket_us must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated duration of the source streams in seconds; used to convert
    /// byte/work totals into rates. Must be positive.
    pub duration_s: f64,
    /// Forwarding work units charged per kilobyte sent or received by a
    /// peer (before scaling with its performance index). Must be
    /// non-negative.
    pub forward_work_per_kb: f64,
    /// Fuse the flows sharing an input stream at a peer into one operator
    /// DAG (shared prefixes execute once) and run independent peers'
    /// DAGs in parallel. `false` runs each flow as its own pipeline — per-
    /// flow outputs are byte-identical either way, only the work accounting
    /// of shared prefixes differs.
    pub shared_ops: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            duration_s: 60.0,
            forward_work_per_kb: 1.0,
            shared_ops: true,
        }
    }
}

impl SimConfig {
    /// Builds a validated configuration (with operator sharing enabled).
    pub fn new(duration_s: f64, forward_work_per_kb: f64) -> Result<SimConfig, ConfigError> {
        let cfg = SimConfig {
            duration_s,
            forward_work_per_kb,
            shared_ops: true,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the documented invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err(ConfigError::NonPositiveDuration(self.duration_s));
        }
        if self.forward_work_per_kb.is_nan() || self.forward_work_per_kb < 0.0 {
            return Err(ConfigError::NegativeForwardWork(self.forward_work_per_kb));
        }
        Ok(())
    }
}

/// Result of a simulation run: metrics plus each flow's delivered items.
#[derive(Debug)]
pub struct SimOutcome {
    /// Per-edge / per-peer measurements.
    pub metrics: NetworkMetrics,
    /// Output items per flow (what arrived at each flow's target).
    pub flow_outputs: Vec<Vec<Node>>,
}

/// Runs the deployment over the given source streams, panicking on an
/// invalid configuration. See [`try_run`] for the fallible variant.
pub fn run(
    topo: &Topology,
    deployment: &Deployment,
    sources: &BTreeMap<String, Vec<Node>>,
    cfg: SimConfig,
) -> SimOutcome {
    try_run(topo, deployment, sources, cfg).unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
}

/// Runs the deployment over the given source streams.
///
/// `sources` maps stream names to their item sequences. Taps read the
/// parent's full output (tapping never costs extra transmission — the
/// parent stream already flows past the tap). With `cfg.shared_ops`, the
/// flows consuming one input stream at one peer are fused into a shared
/// operator DAG and independent DAGs of one tap depth run in parallel;
/// per-flow outputs are identical to unfused execution either way.
pub fn try_run(
    topo: &Topology,
    deployment: &Deployment,
    sources: &BTreeMap<String, Vec<Node>>,
    cfg: SimConfig,
) -> Result<SimOutcome, ConfigError> {
    cfg.validate()?;
    deployment.validate(topo);
    let mut metrics = NetworkMetrics::new(topo, cfg.duration_s);
    let mut flow_outputs: Vec<Vec<Node>> = vec![Vec::new(); deployment.len()];

    if cfg.shared_ops {
        run_shared(topo, deployment, sources, &mut metrics, &mut flow_outputs);
    } else {
        run_unfused(topo, deployment, sources, &mut metrics, &mut flow_outputs);
    }

    // Transmit every flow's outputs along its route, charging edges and
    // forwarding work, in flow id order.
    for (id, flow) in deployment.flows().iter().enumerate() {
        if flow.retired {
            continue;
        }
        let edges = path_edges(topo, &flow.route);
        if !edges.is_empty() {
            let total_bytes: u64 = flow_outputs[id]
                .iter()
                .map(|n| serialized_size(n) as u64)
                .sum();
            for (hop, &e) in edges.iter().enumerate() {
                let (sender, receiver) = (flow.route[hop], flow.route[hop + 1]);
                metrics.record_transmission(e, sender, receiver, total_bytes);
                let kb = total_bytes as f64 / 1024.0;
                metrics.record_work(
                    sender,
                    kb * cfg.forward_work_per_kb * topo.peer(sender).pindex,
                );
                metrics.record_work(
                    receiver,
                    kb * cfg.forward_work_per_kb * topo.peer(receiver).pindex,
                );
            }
        }
    }

    metrics.publish(topo);

    Ok(SimOutcome {
        metrics,
        flow_outputs,
    })
}

/// Unfused execution: every flow runs its own pipeline, in id order.
fn run_unfused(
    topo: &Topology,
    deployment: &Deployment,
    sources: &BTreeMap<String, Vec<Node>>,
    metrics: &mut NetworkMetrics,
    flow_outputs: &mut [Vec<Node>],
) {
    for (id, flow) in deployment.flows().iter().enumerate() {
        if flow.retired {
            continue;
        }
        let inputs: &[Node] = match &flow.input {
            FlowInput::Source { stream } => sources
                .get(stream)
                .unwrap_or_else(|| panic!("flow {} reads unknown source {stream:?}", flow.label))
                .as_slice(),
            FlowInput::Tap { parent } => flow_outputs[*parent].as_slice(),
        };
        let mut pipeline = build_flow_pipeline(&flow.ops);
        let mut sink = Emit::new();
        for item in inputs {
            pipeline.process_into(item, &mut sink);
        }
        pipeline.flush_into(&mut sink);
        let pindex = topo.peer(flow.processing_node).pindex;
        metrics.record_work(flow.processing_node, pipeline.total_work() * pindex);
        flow_outputs[id] = sink.into_vec();
    }
}

/// Fused execution: flows group by (tap depth, peer, input stream); each
/// group runs as one shared [`FlowDag`], and the independent groups of one
/// depth execute on a scoped worker pool. Results are applied in the
/// deterministic group order regardless of worker scheduling.
fn run_shared(
    topo: &Topology,
    deployment: &Deployment,
    sources: &BTreeMap<String, Vec<Node>>,
    metrics: &mut NetworkMetrics,
    flow_outputs: &mut [Vec<Node>],
) {
    let flows = deployment.flows();
    // Tap depth of each flow; `add_flow` guarantees parent ids are smaller.
    let mut depth = vec![0usize; flows.len()];
    for (id, f) in flows.iter().enumerate() {
        if let FlowInput::Tap { parent } = f.input {
            depth[id] = depth[parent] + 1;
        }
    }
    let mut groups: BTreeMap<(usize, NodeId, GroupKey), Vec<FlowId>> = BTreeMap::new();
    for (id, f) in flows.iter().enumerate() {
        if f.retired {
            continue;
        }
        groups
            .entry((depth[id], f.processing_node, GroupKey::of(&f.input)))
            .or_default()
            .push(id);
    }
    let mut levels: Vec<Vec<(NodeId, GroupKey, Vec<FlowId>)>> = Vec::new();
    for ((lvl, node, key), members) in groups {
        if lvl >= levels.len() {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].push((node, key, members));
    }

    struct Job<'a> {
        node: NodeId,
        members: Vec<(FlowId, &'a [FlowOp])>,
        inputs: &'a [Node],
    }

    let threads = max_parallelism();
    for level in &levels {
        // Resolve inputs on this thread: an unknown source must panic here,
        // not inside a worker.
        let jobs: Vec<Job> = level
            .iter()
            .map(|(node, key, members)| {
                let inputs: &[Node] = match key {
                    GroupKey::Source(stream) => sources
                        .get(stream)
                        .unwrap_or_else(|| {
                            panic!(
                                "flow {} reads unknown source {stream:?}",
                                flows[members[0]].label
                            )
                        })
                        .as_slice(),
                    GroupKey::Tap(parent) => flow_outputs[*parent].as_slice(),
                };
                Job {
                    node: *node,
                    members: members
                        .iter()
                        .map(|&id| (id, flows[id].ops.as_slice()))
                        .collect(),
                    inputs,
                }
            })
            .collect();
        let results = run_scoped(jobs, threads, |job| {
            let mut dag = FlowDag::new();
            for (id, ops) in &job.members {
                dag.register(*id, ops);
            }
            let ids: Vec<FlowId> = job.members.iter().map(|&(id, _)| id).collect();
            let mut outs: Vec<Vec<Node>> = vec![Vec::new(); ids.len()];
            for item in job.inputs {
                dag.process_into(item, &mut |f, n| {
                    let i = ids.binary_search(&f).expect("sink is a group member");
                    outs[i].push(n.clone());
                });
            }
            dag.flush_into(&mut |f, n| {
                let i = ids.binary_search(&f).expect("sink is a group member");
                outs[i].push(n.clone());
            });
            (job.node, dag.total_work(), ids, outs)
        });
        for (node, work, ids, outs) in results {
            metrics.record_work(node, work * topo.peer(node).pindex);
            for (id, out) in ids.into_iter().zip(outs) {
                flow_outputs[id] = out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowOp, StreamFlow};
    use crate::topology::grid_topology;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_properties::{InputProperties, Operator, Properties};
    use dss_xml::{Decimal, Path};

    fn items(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| {
                Node::elem(
                    "photon",
                    vec![
                        Node::leaf("en", format!("{}", 1.0 + (i % 10) as f64 / 10.0)),
                        Node::leaf("det_time", i.to_string()),
                    ],
                )
            })
            .collect()
    }

    fn selection_ge(en: &str) -> FlowOp {
        FlowOp::Standard(Operator::Selection(PredicateGraph::from_atoms(&[
            Atom::var_const(
                "en".parse::<Path>().unwrap(),
                CompOp::Ge,
                en.parse::<Decimal>().unwrap(),
            ),
        ])))
    }

    #[test]
    fn source_flow_charges_route_edges() {
        let t = grid_topology(2, 2);
        let (sp0, sp1, sp3) = (
            t.expect_node("SP0"),
            t.expect_node("SP1"),
            t.expect_node("SP3"),
        );
        let mut d = Deployment::new();
        d.add_flow(StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0, sp1, sp3],
            properties: Some(Properties::single(InputProperties::original("photons"))),
            retired: false,
        });
        let mut sources = BTreeMap::new();
        sources.insert("photons".to_string(), items(100));
        let out = run(&t, &d, &sources, SimConfig::default());
        let e01 = t.edge_between(sp0, sp1).unwrap();
        let e13 = t.edge_between(sp1, sp3).unwrap();
        assert!(out.metrics.edge_bytes[e01] > 0);
        assert_eq!(out.metrics.edge_bytes[e01], out.metrics.edge_bytes[e13]);
        assert_eq!(out.flow_outputs[0].len(), 100);
        // Forwarding work charged on every node along the route.
        assert!(out.metrics.node_work[sp0] > 0.0);
        assert!(out.metrics.node_work[sp1] > 0.0);
        assert!(out.metrics.node_work[sp3] > 0.0);
        // The middle node both receives and sends.
        assert_eq!(
            out.metrics.node_bytes_in[sp1],
            out.metrics.node_bytes_out[sp1]
        );
    }

    #[test]
    fn selection_reduces_downstream_traffic() {
        let t = grid_topology(2, 2);
        let (sp0, sp1, sp3) = (
            t.expect_node("SP0"),
            t.expect_node("SP1"),
            t.expect_node("SP3"),
        );
        let mut d = Deployment::new();
        let src = d.add_flow(StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0, sp1],
            properties: Some(Properties::single(InputProperties::original("photons"))),
            retired: false,
        });
        d.add_flow(StreamFlow {
            label: "filtered".into(),
            input: FlowInput::Tap { parent: src },
            processing_node: sp1,
            ops: vec![selection_ge("1.5")],
            route: vec![sp1, sp3],
            properties: None,
            retired: false,
        });
        let mut sources = BTreeMap::new();
        sources.insert("photons".to_string(), items(100));
        let out = run(&t, &d, &sources, SimConfig::default());
        let e01 = t.edge_between(sp0, sp1).unwrap();
        let e13 = t.edge_between(sp1, sp3).unwrap();
        assert!(out.metrics.edge_bytes[e13] < out.metrics.edge_bytes[e01]);
        // en cycles 1.0..1.9, so exactly half the items pass en >= 1.5.
        assert_eq!(out.flow_outputs[1].len(), 50);
    }

    #[test]
    fn tapping_is_free_on_the_parent_route() {
        let t = grid_topology(2, 2);
        let (sp0, sp1) = (t.expect_node("SP0"), t.expect_node("SP1"));
        let mut d = Deployment::new();
        let src = d.add_flow(StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0, sp1],
            properties: Some(Properties::single(InputProperties::original("photons"))),
            retired: false,
        });
        // A consumer at SP1 tapping the stream with a zero-length route
        // adds no transmission.
        d.add_flow(StreamFlow {
            label: "local-consumer".into(),
            input: FlowInput::Tap { parent: src },
            processing_node: sp1,
            ops: vec![selection_ge("1.5")],
            route: vec![sp1],
            properties: None,
            retired: false,
        });
        let mut sources = BTreeMap::new();
        sources.insert("photons".to_string(), items(10));
        let out = run(&t, &d, &sources, SimConfig::default());
        let without_tap: u64 = {
            let mut d2 = Deployment::new();
            d2.add_flow(StreamFlow {
                label: "photons".into(),
                input: FlowInput::Source {
                    stream: "photons".into(),
                },
                processing_node: sp0,
                ops: Vec::new(),
                route: vec![sp0, sp1],
                properties: Some(Properties::single(InputProperties::original("photons"))),
                retired: false,
            });
            run(&t, &d2, &sources, SimConfig::default())
                .metrics
                .total_edge_bytes()
        };
        assert_eq!(out.metrics.total_edge_bytes(), without_tap);
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::new(60.0, 1.0).is_ok());
        assert!(matches!(
            SimConfig::new(0.0, 1.0),
            Err(ConfigError::NonPositiveDuration(_))
        ));
        assert!(matches!(
            SimConfig::new(f64::NAN, 1.0),
            Err(ConfigError::NonPositiveDuration(_))
        ));
        assert!(matches!(
            SimConfig::new(60.0, -1.0),
            Err(ConfigError::NegativeForwardWork(_))
        ));
        assert!(SimConfig::new(60.0, 0.0).is_ok());
        assert!(SimConfig::default().validate().is_ok());
        // try_run surfaces the error instead of panicking.
        let t = grid_topology(2, 2);
        let d = Deployment::new();
        let bad = SimConfig {
            duration_s: -3.0,
            ..SimConfig::default()
        };
        assert_eq!(
            try_run(&t, &d, &BTreeMap::new(), bad).err(),
            Some(ConfigError::NonPositiveDuration(-3.0))
        );
    }

    #[test]
    #[should_panic(expected = "duration_s must be positive")]
    fn invalid_config_panics_in_run() {
        let t = grid_topology(2, 2);
        let d = Deployment::new();
        let bad = SimConfig {
            duration_s: 0.0,
            ..SimConfig::default()
        };
        run(&t, &d, &BTreeMap::new(), bad);
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn missing_source_panics() {
        let t = grid_topology(2, 2);
        let mut d = Deployment::new();
        let sp0 = t.expect_node("SP0");
        d.add_flow(StreamFlow {
            label: "ghost".into(),
            input: FlowInput::Source {
                stream: "nope".into(),
            },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0],
            properties: None,
            retired: false,
        });
        run(&t, &d, &BTreeMap::new(), SimConfig::default());
    }

    #[test]
    fn fused_matches_unfused_and_shares_work() {
        // Four flows tap the same source at SP1: two share the σ≥1.5 chain
        // exactly, the others differ. Outputs must match the unfused run
        // byte-for-byte; the shared prefix must be charged once.
        let t = grid_topology(2, 2);
        let (sp0, sp1) = (t.expect_node("SP0"), t.expect_node("SP1"));
        let mut d = Deployment::new();
        let src = d.add_flow(StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp0,
            ops: Vec::new(),
            route: vec![sp0, sp1],
            properties: Some(Properties::single(InputProperties::original("photons"))),
            retired: false,
        });
        for (label, en) in [("a", "1.5"), ("b", "1.5"), ("c", "1.7"), ("d", "1.9")] {
            d.add_flow(StreamFlow {
                label: label.into(),
                input: FlowInput::Tap { parent: src },
                processing_node: sp1,
                ops: vec![selection_ge(en)],
                route: vec![sp1],
                properties: None,
                retired: false,
            });
        }
        let mut sources = BTreeMap::new();
        sources.insert("photons".to_string(), items(100));
        let fused = run(&t, &d, &sources, SimConfig::default());
        let unfused = run(
            &t,
            &d,
            &sources,
            SimConfig {
                shared_ops: false,
                ..SimConfig::default()
            },
        );
        assert_eq!(fused.flow_outputs, unfused.flow_outputs);
        assert_eq!(
            fused.metrics.total_edge_bytes(),
            unfused.metrics.total_edge_bytes()
        );
        // The duplicate σ≥1.5 ran once when fused: SP1's work drops by
        // exactly one selection pass over the 100 tapped items.
        assert!(fused.metrics.node_work[sp1] < unfused.metrics.node_work[sp1]);
    }

    #[test]
    fn pindex_scales_work() {
        let mut t = grid_topology(2, 2);
        let sp0 = t.expect_node("SP0");
        t.peer_mut(sp0).pindex = 4.0;
        let mut d = Deployment::new();
        d.add_flow(StreamFlow {
            label: "photons".into(),
            input: FlowInput::Source {
                stream: "photons".into(),
            },
            processing_node: sp0,
            ops: vec![selection_ge("0.0")],
            route: vec![sp0],
            properties: None,
            retired: false,
        });
        let mut sources = BTreeMap::new();
        sources.insert("photons".to_string(), items(10));
        let fast = {
            let mut t2 = grid_topology(2, 2);
            t2.peer_mut(sp0).pindex = 1.0;
            run(&t2, &d, &sources, SimConfig::default())
                .metrics
                .node_work[sp0]
        };
        let slow = run(&t, &d, &sources, SimConfig::default())
            .metrics
            .node_work[sp0];
        assert!((slow - 4.0 * fast).abs() < 1e-9);
    }
}
