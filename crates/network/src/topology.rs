//! Super-peer network topologies.
//!
//! StreamGlobe's P2P overlay is a *super-peer network*: powerful, stationary
//! super-peers form the backbone; thin-peers (data sources and subscribers)
//! attach to super-peers. Peers have a maximum computational load `l(v)` and
//! a performance index `pindex(v)`; network connections have a maximum
//! bandwidth `b(e)`.

use std::collections::BTreeMap;
use std::fmt;

/// Peer identifier (dense index into the topology).
pub type NodeId = usize;

/// Edge identifier (dense index into the topology's edge list).
pub type EdgeId = usize;

/// Peer classification (Section 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerKind {
    /// Powerful stationary backbone server.
    SuperPeer,
    /// Less powerful device registering streams or subscriptions.
    ThinPeer,
}

/// A network connection between two peers.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    /// Maximum bandwidth `b(e)` in kilobits per second.
    pub bandwidth_kbps: f64,
    /// `false` while the link is down (fault injection); the planner routes
    /// around down links and the live runtime drops traffic on them.
    pub up: bool,
}

impl Edge {
    /// The endpoint opposite to `n`.
    pub fn other(&self, n: NodeId) -> NodeId {
        if self.a == n {
            self.b
        } else {
            self.a
        }
    }
}

/// A peer's static description.
#[derive(Debug, Clone, PartialEq)]
pub struct Peer {
    pub name: String,
    pub kind: PeerKind,
    /// Maximum computational load `l(v)`, in work units per second.
    pub capacity: f64,
    /// Performance index `pindex(v)`: relative cost multiplier of executing
    /// one work unit on this peer (1.0 = reference peer; larger = slower).
    pub pindex: f64,
    /// `false` while the peer is crashed (fault injection); the planner
    /// routes around down peers and the live runtime drops their traffic.
    pub up: bool,
}

/// An undirected super-peer network topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    peers: Vec<Peer>,
    by_name: BTreeMap<String, NodeId>,
    edges: Vec<Edge>,
    adj: Vec<Vec<EdgeId>>,
}

/// Default super-peer capacity (work units per second).
pub const DEFAULT_SP_CAPACITY: f64 = 100_000.0;
/// Default thin-peer capacity.
pub const DEFAULT_TP_CAPACITY: f64 = 10_000.0;
/// Default backbone bandwidth: 100 Mbit/s LAN, as in the paper's testbed.
pub const DEFAULT_BANDWIDTH_KBPS: f64 = 100_000.0;

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a peer with explicit parameters.
    pub fn add_peer_with(
        &mut self,
        name: impl Into<String>,
        kind: PeerKind,
        capacity: f64,
        pindex: f64,
    ) -> NodeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate peer name {name:?}"
        );
        let id = self.peers.len();
        self.by_name.insert(name.clone(), id);
        self.peers.push(Peer {
            name,
            kind,
            capacity,
            pindex,
            up: true,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Adds a super-peer with default parameters.
    pub fn add_super_peer(&mut self, name: impl Into<String>) -> NodeId {
        self.add_peer_with(name, PeerKind::SuperPeer, DEFAULT_SP_CAPACITY, 1.0)
    }

    /// Adds a thin-peer with default parameters.
    pub fn add_thin_peer(&mut self, name: impl Into<String>) -> NodeId {
        self.add_peer_with(name, PeerKind::ThinPeer, DEFAULT_TP_CAPACITY, 2.0)
    }

    /// Connects two peers with the given bandwidth.
    pub fn connect_with(&mut self, a: NodeId, b: NodeId, bandwidth_kbps: f64) -> EdgeId {
        assert!(a != b, "self-loop connections are not allowed");
        assert!(
            self.edge_between(a, b).is_none(),
            "peers {} and {} are already connected",
            self.peers[a].name,
            self.peers[b].name
        );
        let id = self.edges.len();
        self.edges.push(Edge {
            a,
            b,
            bandwidth_kbps,
            up: true,
        });
        self.adj[a].push(id);
        self.adj[b].push(id);
        id
    }

    /// Connects two peers with the default LAN bandwidth.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        self.connect_with(a, b, DEFAULT_BANDWIDTH_KBPS)
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Number of connections.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Peer metadata.
    pub fn peer(&self, id: NodeId) -> &Peer {
        &self.peers[id]
    }

    /// All peers in id order.
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// Mutable peer metadata (used by the admission-control experiment to
    /// cap capacities).
    pub fn peer_mut(&mut self, id: NodeId) -> &mut Peer {
        &mut self.peers[id]
    }

    /// Edge metadata.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable edge metadata.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id]
    }

    /// Looks a peer up by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Looks a peer up by name, panicking on unknown names (convenient in
    /// scenario builders and tests).
    pub fn expect_node(&self, name: &str) -> NodeId {
        self.node(name)
            .unwrap_or_else(|| panic!("unknown peer {name:?}"))
    }

    /// Edge ids incident to `n`.
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        &self.adj[n]
    }

    /// Neighbor peers of `n` in edge-insertion order.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[n].iter().map(move |&e| self.edges[e].other(n))
    }

    /// The connection between `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adj[a]
            .iter()
            .copied()
            .find(|&e| self.edges[e].other(a) == b)
    }

    /// Marks a peer as up (alive) or down (crashed). Routing skips down
    /// peers; the live runtime loses traffic addressed to them.
    pub fn set_peer_up(&mut self, id: NodeId, up: bool) {
        self.peers[id].up = up;
    }

    /// Marks a connection as up or down.
    pub fn set_edge_up(&mut self, id: EdgeId, up: bool) {
        self.edges[id].up = up;
    }

    /// Ids of all super-peers.
    pub fn super_peers(&self) -> Vec<NodeId> {
        (0..self.peers.len())
            .filter(|&i| self.peers[i].kind == PeerKind::SuperPeer)
            .collect()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology: {} peers, {} connections",
            self.peers.len(),
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -- {} ({} kbps)",
                self.peers[e.a].name, self.peers[e.b].name, e.bandwidth_kbps
            )?;
        }
        Ok(())
    }
}

/// The example network of Figures 1 and 2: eight super-peers SP0–SP7 in a
/// 2×4 backbone grid, with thin-peers P0 (the `photons` source, at SP4),
/// P1 (at SP1), P2 (at SP7), P3 (at SP3), and P4 (at SP6).
///
/// The figures render the backbone as two columns of four; the exact rung
/// placement is inferred from the described routes ("pushed into the
/// network and computed at SP4 …, routed to P1 via SP5 and SP1";
/// "reuse the stream … at SP5 … routed to P2 via SP7").
pub fn example_topology() -> Topology {
    let mut t = Topology::new();
    let sp: Vec<NodeId> = (0..8).map(|i| t.add_super_peer(format!("SP{i}"))).collect();
    // Left column: SP4 – SP0 – SP5 – SP1. Right column: SP6 – SP2 – SP7 – SP3.
    t.connect(sp[4], sp[0]);
    t.connect(sp[0], sp[5]);
    t.connect(sp[5], sp[1]);
    t.connect(sp[6], sp[2]);
    t.connect(sp[2], sp[7]);
    t.connect(sp[7], sp[3]);
    // Rungs between the columns.
    t.connect(sp[4], sp[6]);
    t.connect(sp[0], sp[2]);
    t.connect(sp[5], sp[7]);
    t.connect(sp[1], sp[3]);
    // Thin peers.
    let p0 = t.add_thin_peer("P0");
    let p1 = t.add_thin_peer("P1");
    let p2 = t.add_thin_peer("P2");
    let p3 = t.add_thin_peer("P3");
    let p4 = t.add_thin_peer("P4");
    t.connect(p0, sp[4]);
    t.connect(p1, sp[1]);
    t.connect(p2, sp[7]);
    t.connect(p3, sp[3]);
    t.connect(p4, sp[6]);
    t
}

/// An `n × m` grid of super-peers named `SP0 … SP(n·m−1)` in row-major
/// order (the paper's second scenario uses 4×4).
pub fn grid_topology(rows: usize, cols: usize) -> Topology {
    let mut t = Topology::new();
    let ids: Vec<NodeId> = (0..rows * cols)
        .map(|i| t.add_super_peer(format!("SP{i}")))
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                t.connect(ids[i], ids[i + 1]);
            }
            if r + 1 < rows {
                t.connect(ids[i], ids[i + cols]);
            }
        }
    }
    t
}

/// A hierarchical network (the paper's scalability sketch: "a hierarchical
/// network organization with several interconnected subnets"): `subnets`
/// copies of a `dim × dim` grid, with each subnet's corner super-peer
/// acting as its gateway; gateways form a ring.
///
/// Peers are named `N<k>_SP<i>`; gateway of subnet `k` is `N<k>_SP0`.
pub fn hierarchical_topology(subnets: usize, dim: usize) -> Topology {
    assert!(subnets >= 2, "a hierarchy needs at least two subnets");
    let mut t = Topology::new();
    let mut gateways = Vec::with_capacity(subnets);
    for k in 0..subnets {
        let ids: Vec<NodeId> = (0..dim * dim)
            .map(|i| t.add_super_peer(format!("N{k}_SP{i}")))
            .collect();
        for r in 0..dim {
            for c in 0..dim {
                let i = r * dim + c;
                if c + 1 < dim {
                    t.connect(ids[i], ids[i + 1]);
                }
                if r + 1 < dim {
                    t.connect(ids[i], ids[i + dim]);
                }
            }
        }
        gateways.push(ids[0]);
    }
    for k in 0..subnets {
        t.connect(gateways[k], gateways[(k + 1) % subnets]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut t = Topology::new();
        let a = t.add_super_peer("SP0");
        let b = t.add_super_peer("SP1");
        let e = t.connect(a, b);
        assert_eq!(t.peer_count(), 2);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.node("SP1"), Some(b));
        assert_eq!(t.node("SPX"), None);
        assert_eq!(t.edge_between(a, b), Some(e));
        assert_eq!(t.edge(e).other(a), b);
        assert_eq!(t.neighbors(a).collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    #[should_panic(expected = "duplicate peer name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_super_peer("SP0");
        t.add_super_peer("SP0");
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn duplicate_edges_rejected() {
        let mut t = Topology::new();
        let a = t.add_super_peer("SP0");
        let b = t.add_super_peer("SP1");
        t.connect(a, b);
        t.connect(b, a);
    }

    #[test]
    fn example_topology_shape() {
        let t = example_topology();
        assert_eq!(t.peer_count(), 13); // 8 super + 5 thin
        assert_eq!(t.super_peers().len(), 8);
        assert_eq!(t.edge_count(), 15); // 10 backbone + 5 access links
                                        // The motivating routes exist: SP4–SP0–SP5–SP1 and SP5–SP7.
        let sp4 = t.expect_node("SP4");
        let sp0 = t.expect_node("SP0");
        let sp5 = t.expect_node("SP5");
        let sp7 = t.expect_node("SP7");
        assert!(t.edge_between(sp4, sp0).is_some());
        assert!(t.edge_between(sp0, sp5).is_some());
        assert!(t.edge_between(sp5, sp7).is_some());
        assert_eq!(t.peer(t.expect_node("P0")).kind, PeerKind::ThinPeer);
    }

    #[test]
    fn grid_topology_shape() {
        let t = grid_topology(4, 4);
        assert_eq!(t.peer_count(), 16);
        assert_eq!(t.edge_count(), 24); // 2·4·3 internal connections
                                        // Corner SP0 has two neighbors; interior SP5 has four.
        assert_eq!(t.neighbors(t.expect_node("SP0")).count(), 2);
        assert_eq!(t.neighbors(t.expect_node("SP5")).count(), 4);
    }

    #[test]
    fn hierarchical_topology_shape() {
        let t = hierarchical_topology(3, 2);
        assert_eq!(t.peer_count(), 12);
        // 3 subnets × 4 internal connections + 3 ring connections.
        assert_eq!(t.edge_count(), 15);
        let g0 = t.expect_node("N0_SP0");
        let g1 = t.expect_node("N1_SP0");
        let g2 = t.expect_node("N2_SP0");
        assert!(t.edge_between(g0, g1).is_some());
        assert!(t.edge_between(g1, g2).is_some());
        assert!(t.edge_between(g2, g0).is_some());
        // Non-gateway peers of different subnets are not directly connected.
        assert!(t
            .edge_between(t.expect_node("N0_SP3"), t.expect_node("N1_SP3"))
            .is_none());
        // Cross-subnet routing goes through the gateways.
        let path =
            crate::routing::shortest_path(&t, t.expect_node("N0_SP3"), t.expect_node("N1_SP3"))
                .unwrap();
        assert!(path.contains(&g0) && path.contains(&g1));
    }

    #[test]
    #[should_panic(expected = "at least two subnets")]
    fn hierarchical_needs_subnets() {
        hierarchical_topology(1, 2);
    }

    #[test]
    fn display_lists_edges() {
        let t = grid_topology(2, 2);
        let s = t.to_string();
        assert!(s.contains("4 peers"));
        assert!(s.contains("SP0 -- SP1"));
    }
}
