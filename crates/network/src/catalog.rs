//! The stream catalog: per-peer indexes over shareable flows.
//!
//! Algorithm 1 visits peers and asks which of the streams passing each peer
//! could serve the new subscription. A deployment accumulates flows forever
//! (every registration adds at least a non-shareable delivery flow, and
//! retired flows keep their ids), so answering by scanning `Deployment`'s
//! flow list makes registration cost grow with the *total number of
//! registrations ever made* rather than with the streams actually flowing
//! past the peer. The catalog maintains, incrementally on
//! install/retire/widen:
//!
//! * per peer, the sorted list of shareable flows available there
//!   ([`Catalog::shareable_at`] — the full, unpruned candidate set);
//! * per (peer, origin stream), the same list restricted to variants of
//!   that stream ([`Catalog::variants_at`] — what widening enumerates);
//! * per (peer, origin stream, operator-kind signature), candidate flows
//!   grouped by their *interned* [`ChainSummary`]: flows carrying the
//!   identical operator chain are interchangeable for the match
//!   pre-filters, so the per-subscription lens verdict is computed once
//!   per distinct chain (cached in [`LensVerdicts`] across every peer the
//!   search visits) and whole groups are emitted or pruned wholesale.
//!   Windowed chains are further keyed by their [`WindowKey`] in a sorted
//!   map so a subscription only probes window sizes that could divide its
//!   own ([`Catalog::candidates_into`]).
//!
//! The distinction matters for scale: the number of *flows* grows without
//! bound (every uncovered registration installs another residual chain),
//! but the number of *distinct chains* saturates with the finite space of
//! operator combinations actually subscribed to. Grouping makes candidate
//! lookup proportional to distinct chains plus emitted candidates, not to
//! installed flows — the difference between near-flat and linearly
//! degrading registration latency at large subscription counts.
//!
//! Lookups return flow ids in ascending order — the same order the full
//! scan produced — so the plan search's strict `<` cost comparison picks
//! the identical winner with or without the index.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use dss_properties::{ChainSummary, QueryLens, Signature, WindowKey};

use crate::flow::{FlowId, StreamFlow};
use crate::topology::NodeId;

/// Index of an interned operator chain in the catalog's chain table.
/// Flows share a `ChainId` exactly when their input properties for the
/// stream are identical — so any pure function of those properties (the
/// lens pre-filter verdict, the full `match_input_properties` result) may
/// be memoized per chain id.
pub type ChainId = usize;

/// Inserts into a sorted id vector (ids re-enter out of order after widen
/// re-indexing, so plain `push` is not enough).
fn insert_sorted(ids: &mut Vec<usize>, id: usize) {
    if let Err(pos) = ids.binary_search(&id) {
        ids.insert(pos, id);
    }
}

fn remove_sorted(ids: &mut Vec<usize>, id: usize) {
    if let Ok(pos) = ids.binary_search(&id) {
        ids.remove(pos);
    }
}

/// Interner for operator chains. Chains are keyed by the canonical
/// `Debug` form of the flow's full `InputProperties` (plain data, so the
/// rendering is faithful) — *not* by the coarser [`ChainSummary`] — so
/// two flows share an id only when their properties are identical. The
/// table only ever grows, bounded by the number of distinct operator
/// chains ever deployed — not by flow count.
#[derive(Clone, Default)]
struct ChainInterner {
    summaries: Vec<ChainSummary>,
    ids: HashMap<String, ChainId>,
}

impl ChainInterner {
    fn intern(&mut self, key: String, summary: &ChainSummary) -> ChainId {
        *self.ids.entry(key).or_insert_with(|| {
            self.summaries.push(summary.clone());
            self.summaries.len() - 1
        })
    }
}

/// Memoized per-subscription lens verdicts, one slot per interned chain
/// summary. A chain that flows past many peers is judged once per search,
/// not once per (peer, flow).
#[derive(Debug, Default)]
pub struct LensVerdicts(Vec<Option<bool>>);

impl LensVerdicts {
    fn allows(&mut self, lens: &QueryLens, summaries: &[ChainSummary], sid: ChainId) -> bool {
        if self.0.len() <= sid {
            self.0.resize(sid + 1, None);
        }
        *self.0[sid].get_or_insert_with(|| lens.may_be_served_by(&summaries[sid]))
    }
}

/// One signature bucket of a per-(peer, stream) index: flow groups keyed
/// by interned chain summary; windowless groups in a flat sorted list,
/// windowed groups in the window-size lattice.
#[derive(Clone, Default)]
struct SigBucket {
    /// Per distinct chain: the sorted flows carrying it here.
    groups: HashMap<ChainId, Vec<FlowId>>,
    /// Groups whose chains carry no window key.
    plain: Vec<ChainId>,
    /// Windowed groups, ordered by the factor-multiple window lattice.
    by_window: BTreeMap<WindowKey, Vec<ChainId>>,
}

impl SigBucket {
    fn insert(&mut self, id: FlowId, sid: ChainId, key: Option<&WindowKey>) {
        let SigBucket {
            groups,
            plain,
            by_window,
        } = self;
        let group = groups.entry(sid).or_insert_with(|| {
            match key {
                None => insert_sorted(plain, sid),
                Some(k) => insert_sorted(by_window.entry(k.clone()).or_default(), sid),
            }
            Vec::new()
        });
        insert_sorted(group, id);
    }

    fn remove(&mut self, id: FlowId, sid: ChainId, key: Option<&WindowKey>) {
        let Some(group) = self.groups.get_mut(&sid) else {
            return;
        };
        remove_sorted(group, id);
        if !group.is_empty() {
            return;
        }
        self.groups.remove(&sid);
        match key {
            None => remove_sorted(&mut self.plain, sid),
            Some(k) => {
                if let Some(sids) = self.by_window.get_mut(k) {
                    remove_sorted(sids, sid);
                    if sids.is_empty() {
                        self.by_window.remove(k);
                    }
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Index over the variants of one origin stream available at one peer.
#[derive(Clone, Default)]
struct StreamIndex {
    /// Every variant, ascending — the widening path must see non-matching
    /// streams too, so this list is never pruned.
    all: Vec<FlowId>,
    /// Variants whose chain is widenable (selection/projection only),
    /// ascending — the only flows `widen_input` can loosen, so the
    /// widening search probes this list instead of `all`.
    widenable: Vec<FlowId>,
    by_sig: HashMap<Signature, SigBucket>,
}

/// What was indexed for one flow — kept so retire/widen can unindex the
/// exact entries even after the flow's fields changed.
#[derive(Clone)]
struct Membership {
    nodes: Vec<NodeId>,
    inputs: Vec<IndexedInput>,
}

#[derive(Clone)]
struct IndexedInput {
    stream: String,
    signature: Signature,
    window_key: Option<WindowKey>,
    summary: ChainId,
}

/// The per-peer stream-catalog index of a [`crate::flow::Deployment`].
#[derive(Clone, Default)]
pub struct Catalog {
    /// Per peer: all shareable flows available there, ascending.
    per_node: Vec<Vec<FlowId>>,
    /// Per origin stream, per peer: the signature-bucketed index.
    streams: HashMap<String, Vec<StreamIndex>>,
    members: HashMap<FlowId, Membership>,
    interner: ChainInterner,
}

impl Catalog {
    /// Indexes a flow. Retired flows and flows without shareable properties
    /// (delivery flows) are ignored.
    pub fn insert(&mut self, id: FlowId, flow: &StreamFlow) {
        debug_assert!(!self.members.contains_key(&id), "flow {id} double-indexed");
        if flow.retired {
            return;
        }
        let Some(props) = &flow.properties else {
            return;
        };
        let mut nodes: Vec<NodeId> = flow.route.clone();
        nodes.sort_unstable();
        nodes.dedup();
        let mut inputs = Vec::with_capacity(props.inputs().len());
        for input in props.inputs() {
            if inputs
                .iter()
                .any(|i: &IndexedInput| i.stream == input.stream())
            {
                continue;
            }
            let summary = ChainSummary::of(input);
            inputs.push(IndexedInput {
                stream: input.stream().to_string(),
                signature: summary.signature().clone(),
                window_key: summary.window_key(),
                summary: self.interner.intern(format!("{input:?}"), &summary),
            });
        }
        for &node in &nodes {
            if self.per_node.len() <= node {
                self.per_node.resize_with(node + 1, Vec::new);
            }
            insert_sorted(&mut self.per_node[node], id);
        }
        for input in &inputs {
            let per_node = self.streams.entry(input.stream.clone()).or_default();
            for &node in &nodes {
                if per_node.len() <= node {
                    per_node.resize_with(node + 1, StreamIndex::default);
                }
                let idx = &mut per_node[node];
                insert_sorted(&mut idx.all, id);
                if input.signature.is_widenable() {
                    insert_sorted(&mut idx.widenable, id);
                }
                idx.by_sig
                    .entry(input.signature.clone())
                    .or_default()
                    .insert(id, input.summary, input.window_key.as_ref());
            }
        }
        self.members.insert(id, Membership { nodes, inputs });
    }

    /// Unindexes a flow (no-op if it was never indexed).
    pub fn remove(&mut self, id: FlowId) {
        let Some(member) = self.members.remove(&id) else {
            return;
        };
        for &node in &member.nodes {
            if let Some(ids) = self.per_node.get_mut(node) {
                remove_sorted(ids, id);
            }
        }
        for input in &member.inputs {
            let Some(per_node) = self.streams.get_mut(&input.stream) else {
                continue;
            };
            for &node in &member.nodes {
                let Some(idx) = per_node.get_mut(node) else {
                    continue;
                };
                remove_sorted(&mut idx.all, id);
                if input.signature.is_widenable() {
                    remove_sorted(&mut idx.widenable, id);
                }
                if let Some(bucket) = idx.by_sig.get_mut(&input.signature) {
                    bucket.remove(id, input.summary, input.window_key.as_ref());
                    if bucket.is_empty() {
                        idx.by_sig.remove(&input.signature);
                    }
                }
            }
        }
    }

    /// Re-indexes a flow after in-place mutation (widening rewrites ops,
    /// properties, and label; narrowing rolls them back).
    pub fn reindex(&mut self, id: FlowId, flow: &StreamFlow) {
        self.remove(id);
        self.insert(id, flow);
    }

    /// All shareable flows available at `node`, ascending.
    pub fn shareable_at(&self, node: NodeId) -> &[FlowId] {
        self.per_node.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All variants of `stream` available at `node`, ascending — the
    /// unpruned candidate set the widening search enumerates.
    pub fn variants_at(&self, node: NodeId, stream: &str) -> &[FlowId] {
        self.streams
            .get(stream)
            .and_then(|per_node| per_node.get(node))
            .map(|idx| idx.all.as_slice())
            .unwrap_or(&[])
    }

    /// The widenable variants of `stream` at `node`, ascending: flows
    /// whose chain for the stream is selection/projection only. The
    /// widening search unions this list with the lens-matched candidates
    /// instead of enumerating every variant — a non-widenable chain can
    /// never yield a widening plan ([`dss_properties::widen_input`]
    /// rejects it), so pruning the rest loses no matches and no plans.
    pub fn widenable_at(&self, node: NodeId, stream: &str) -> &[FlowId] {
        self.streams
            .get(stream)
            .and_then(|per_node| per_node.get(node))
            .map(|idx| idx.widenable.as_slice())
            .unwrap_or(&[])
    }

    /// Collects into `out` the variants of `stream` at `node` that pass the
    /// lens's pre-filters, ascending. A flow is emitted only if a full
    /// `match_input_properties` against the lens's subscription *could*
    /// succeed; every true match is always emitted. `verdicts` memoizes
    /// per-chain judgements across the calls of one search and must not be
    /// reused with a different lens.
    pub fn candidates_into(
        &self,
        node: NodeId,
        stream: &str,
        lens: &QueryLens,
        verdicts: &mut LensVerdicts,
        out: &mut Vec<FlowId>,
    ) {
        out.clear();
        let Some(idx) = self
            .streams
            .get(stream)
            .and_then(|per_node| per_node.get(node))
        else {
            return;
        };
        let summaries = &self.interner.summaries;
        for (sig, bucket) in &idx.by_sig {
            if !sig.is_subset_of(lens.kinds()) {
                continue;
            }
            for &sid in &bucket.plain {
                if verdicts.allows(lens, summaries, sid) {
                    out.extend_from_slice(&bucket.groups[&sid]);
                }
            }
            if !bucket.by_window.is_empty() {
                for (lo, hi) in lens.window_ranges() {
                    for sids in bucket
                        .by_window
                        .range(lo.clone()..=hi.clone())
                        .map(|(_, v)| v)
                    {
                        for &sid in sids {
                            if verdicts.allows(lens, summaries, sid) {
                                out.extend_from_slice(&bucket.groups[&sid]);
                            }
                        }
                    }
                }
            }
        }
        // Bucket iteration order is arbitrary (HashMap); the search's strict
        // `<` tie-break depends on candidate order, so restore id order.
        out.sort_unstable();
    }

    /// Number of indexed (shareable) flows.
    pub fn indexed_len(&self) -> usize {
        self.members.len()
    }

    /// The interned chain id of `id`'s input for `stream`, if indexed.
    /// Two flows with the same chain id have byte-identical input
    /// properties for the stream, so property-only computations (like the
    /// full property match) can be memoized per chain id.
    pub fn chain_of(&self, id: FlowId, stream: &str) -> Option<ChainId> {
        self.members
            .get(&id)?
            .inputs
            .iter()
            .find(|i| i.stream == stream)
            .map(|i| i.summary)
    }

    /// Number of distinct chain summaries ever interned.
    pub fn distinct_chains(&self) -> usize {
        self.interner.summaries.len()
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // HashMap iteration order is nondeterministic; print stable totals
        // only so `Deployment`'s Debug output stays reproducible.
        f.debug_struct("Catalog")
            .field("indexed_flows", &self.members.len())
            .field("peers", &self.per_node.len())
            .field("streams", &self.streams.len())
            .field("distinct_chains", &self.interner.summaries.len())
            .finish()
    }
}
