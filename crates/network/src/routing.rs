//! Shortest-path routing over the super-peer backbone.

use std::collections::VecDeque;

use crate::topology::{NodeId, Topology};

/// Breadth-first shortest path (hop count) from `from` to `to`, inclusive
/// of both endpoints. Ties break deterministically toward lower-numbered
/// edges (insertion order), so repeated runs of the planner are stable.
///
/// Crashed peers and down links (fault injection, see
/// [`crate::runtime`]) are skipped, so re-planning after a failure
/// automatically routes around the dead parts of the network.
pub fn shortest_path(topo: &Topology, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let n = topo.peer_count();
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut q = VecDeque::from([from]);
    while let Some(u) = q.pop_front() {
        for &e in topo.incident(u) {
            let edge = topo.edge(e);
            if !edge.up {
                continue;
            }
            let v = edge.other(u);
            if !seen[v] && topo.peer(v).up {
                seen[v] = true;
                prev[v] = Some(u);
                if v == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = prev[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(v);
            }
        }
    }
    None
}

/// Hop distance between two peers.
pub fn distance(topo: &Topology, from: NodeId, to: NodeId) -> Option<usize> {
    shortest_path(topo, from, to).map(|p| p.len() - 1)
}

/// The edge ids along a node path.
pub fn path_edges(topo: &Topology, path: &[NodeId]) -> Vec<crate::topology::EdgeId> {
    path.windows(2)
        .map(|w| {
            topo.edge_between(w[0], w[1])
                .unwrap_or_else(|| panic!("path uses non-existent connection {}–{}", w[0], w[1]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{example_topology, grid_topology};

    #[test]
    fn trivial_and_adjacent_paths() {
        let t = grid_topology(2, 2);
        let a = t.expect_node("SP0");
        let b = t.expect_node("SP1");
        assert_eq!(shortest_path(&t, a, a), Some(vec![a]));
        assert_eq!(shortest_path(&t, a, b), Some(vec![a, b]));
        assert_eq!(distance(&t, a, b), Some(1));
    }

    #[test]
    fn paper_route_sp4_to_sp1() {
        // "its execution can be pushed into the network and computed at SP4
        // … The result is then routed to P1 via SP5 and SP1."
        let t = example_topology();
        let path = shortest_path(&t, t.expect_node("SP4"), t.expect_node("P1")).unwrap();
        let names: Vec<&str> = path.iter().map(|&n| t.peer(n).name.as_str()).collect();
        assert_eq!(names, vec!["SP4", "SP0", "SP5", "SP1", "P1"]);
    }

    #[test]
    fn grid_distances() {
        let t = grid_topology(4, 4);
        assert_eq!(
            distance(&t, t.expect_node("SP0"), t.expect_node("SP15")),
            Some(6)
        );
        assert_eq!(
            distance(&t, t.expect_node("SP0"), t.expect_node("SP5")),
            Some(2)
        );
    }

    #[test]
    fn disconnected_nodes_unroutable() {
        let mut t = grid_topology(2, 2);
        let lonely = t.add_super_peer("SPX");
        assert_eq!(shortest_path(&t, t.expect_node("SP0"), lonely), None);
        assert_eq!(distance(&t, lonely, t.expect_node("SP3")), None);
    }

    #[test]
    fn routing_avoids_down_peers_and_links() {
        let mut t = example_topology();
        let (sp4, sp5, p1) = (
            t.expect_node("SP4"),
            t.expect_node("SP5"),
            t.expect_node("P1"),
        );
        // Baseline goes through SP5 (see `paper_route_sp4_to_sp1`).
        t.set_peer_up(sp5, false);
        let path = shortest_path(&t, sp4, p1).unwrap();
        assert!(
            !path.contains(&sp5),
            "path must avoid crashed SP5: {path:?}"
        );
        assert_eq!(path.len(), 7, "detour around SP5 takes two extra hops");
        t.set_peer_up(sp5, true);
        // A down link likewise forces a detour.
        let sp0 = t.expect_node("SP0");
        let e = t.edge_between(sp0, sp5).unwrap();
        t.set_edge_up(e, false);
        let path = shortest_path(&t, sp4, p1).unwrap();
        assert_eq!(path.len(), 7);
        assert!(!path_edges(&t, &path).contains(&e));
        // Cutting every link of a peer makes it unreachable.
        for e in t.incident(sp5).to_vec() {
            t.set_edge_up(e, false);
        }
        assert_eq!(shortest_path(&t, sp4, sp5), None);
    }

    #[test]
    fn path_edges_resolves_connections() {
        let t = grid_topology(2, 2);
        let path = shortest_path(&t, t.expect_node("SP0"), t.expect_node("SP3")).unwrap();
        let edges = path_edges(&t, &path);
        assert_eq!(edges.len(), 2);
    }
}
