//! String generation from a small regex subset.
//!
//! Supported syntax — exactly what the workspace's strategies use:
//! a sequence of elements, each a literal character or a `[...]` class
//! (literal chars and `a-z` ranges), optionally followed by a `{n}` or
//! `{m,n}` repetition. Anything else panics loudly rather than generating
//! surprising data.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Element {
    /// Inclusive character ranges; a literal is a degenerate range.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Element> {
    let mut chars = pattern.chars().peekable();
    let mut elements = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in regex {pattern:?}")
                    });
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().unwrap_or_else(|| {
                            panic!("dangling '-' in character class in regex {pattern:?}")
                        });
                        assert!(lo <= hi, "inverted range {lo}-{hi} in regex {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    !ranges.is_empty(),
                    "empty character class in regex {pattern:?}"
                );
                ranges
            }
            '\\' => {
                let lit = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                vec![(lit, lit)]
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?}")
            }
            lit => vec![(lit, lit)],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut bounds = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                bounds.push(d);
            }
            match bounds.split_once(',') {
                Some((m, n)) => {
                    let m = m.trim().parse().expect("repetition lower bound");
                    let n = n.trim().parse().expect("repetition upper bound");
                    assert!(
                        m <= n,
                        "inverted repetition {{{bounds}}} in regex {pattern:?}"
                    );
                    (m, n)
                }
                None => {
                    let n = bounds.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        elements.push(Element { ranges, min, max });
    }
    elements
}

fn sample_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.usize_below(total as usize) as u32;
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("sampled valid scalar");
        }
        pick -= span;
    }
    unreachable!("pick exhausted ranges")
}

/// Samples a string matching `pattern` (see module docs for the subset).
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for el in parse(pattern) {
        let n = el.min + rng.usize_below(el.max - el.min + 1);
        for _ in 0..n {
            out.push(sample_char(&el.ranges, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic()
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-z][a-z0-9_]{0,6}", &mut r);
            assert!((1..=7).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[ -~]{0,12}", &mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_prefix_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("n[a-z0-9_]{0,5}", &mut r);
            assert!(s.starts_with('n'));
            assert!(s.len() <= 6);
        }
    }

    #[test]
    fn exact_repetition() {
        let mut r = rng();
        assert_eq!(sample_regex("x{3}", &mut r), "xxx");
    }
}
