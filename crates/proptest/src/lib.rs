//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io registry, so this workspace vendors
//! a minimal, API-compatible subset of proptest sufficient for
//! `tests/property_based.rs`: deterministic *sampling-based* property testing
//! (no shrinking — a failing case reports the sampled inputs as-is).
//! Strategies are composable via `prop_map` / `prop_filter_map` /
//! `prop_flat_map` / `prop_recursive`, tuples, ranges, a small regex subset
//! for `String` generation, and the `proptest!` / `prop_assert*` macros.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{vec, SizeRange};
    }
    pub mod option {
        pub use crate::strategy::option::of;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice between strategy arms, all producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Discard the current test case (it is resampled, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares `#[test]` functions whose arguments are sampled from strategies.
///
/// Unlike real proptest there is no shrinking: the first failing sample is
/// reported directly. Sampling is deterministic per test function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let reject_cap = config.cases.saturating_mul(20).max(1000);
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > reject_cap {
                                panic!(
                                    "proptest {}: too many rejected samples ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            msg,
                        )) => {
                            panic!(
                                "proptest {} failed after {passed} passing cases: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}
