//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io registry, so this workspace vendors
//! a minimal, API-compatible subset of proptest sufficient for
//! `tests/property_based.rs`: deterministic *sampling-based* property testing
//! (no shrinking — a failing case reports the sampled inputs as-is).
//! Strategies are composable via `prop_map` / `prop_filter_map` /
//! `prop_flat_map` / `prop_recursive`, tuples, ranges, a small regex subset
//! for `String` generation, and the `proptest!` / `prop_assert*` macros.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{vec, SizeRange};
    }
    pub mod option {
        pub use crate::strategy::option::of;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice between strategy arms, all producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Discard the current test case (it is resampled, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares `#[test]` functions whose arguments are sampled from strategies.
///
/// Unlike real proptest there is no shrinking, but every case runs from
/// its own derived seed, so a failure is reproduced by a single `u64`:
/// failing seeds are appended to the crate's
/// `proptest-regressions/<file-stem>.txt` (commit it) and replayed before
/// fresh sampling on every later run. Set `DSS_PROPTEST_SEED` to explore
/// a different deterministic case stream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let regressions = $crate::test_runner::regression_file(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                // One case from one seed; `Err` carries the failure text.
                let run_case = |seed: u64| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                let fail = |seed: u64, origin: &str, passed: u32, msg: ::std::string::String| {
                    $crate::test_runner::persist_seed(
                        &regressions,
                        stringify!($name),
                        seed,
                        &msg,
                    );
                    panic!(
                        "proptest {name} failed on {origin} seed 0x{seed:016X} after \
                         {passed} passing cases: {msg}\n(seed persisted to {path}; it \
                         replays automatically on the next run)",
                        name = stringify!($name),
                        path = regressions.display(),
                    );
                };
                // Replay every previously-failing seed first.
                let mut passed: u32 = 0;
                for seed in $crate::test_runner::stored_seeds(&regressions, stringify!($name)) {
                    match run_case(seed) {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            fail(seed, "persisted", passed, msg)
                        }
                    }
                }
                // Then the fresh deterministic stream for this run.
                let base = $crate::test_runner::base_seed();
                let mut rejected: u32 = 0;
                let reject_cap = config.cases.saturating_mul(20).max(1000);
                let mut index: u64 = 0;
                passed = 0;
                while passed < config.cases {
                    let seed = $crate::test_runner::derive_case_seed(base, index);
                    index += 1;
                    match run_case(seed) {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > reject_cap {
                                panic!(
                                    "proptest {}: too many rejected samples ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            fail(seed, "sampled", passed, msg)
                        }
                    }
                }
            }
        )*
    };
}
