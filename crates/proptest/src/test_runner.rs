//! Test-runner configuration, errors, and the deterministic RNG driving
//! sampling.

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *passing* cases each test must accumulate.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single sampled case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (resampled, not counted).
    Reject,
    /// The case failed a `prop_assert*!`.
    Fail(String),
}

/// Deterministic splitmix64 generator. Every `proptest!` test starts from the
/// same seed, so runs are reproducible without persisted failure files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0x0123_4567_89AB_CDEF,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in the half-open interval `[lo, hi)`.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        let span = (hi - lo) as u128;
        let v = (self.next_u64() as u128) % span;
        lo + v as i128
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = rng.i128_in(-25, 25);
            assert!((-25..25).contains(&v));
            assert!(rng.usize_below(7) < 7);
        }
    }
}
