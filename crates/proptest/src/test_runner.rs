//! Test-runner configuration, errors, the deterministic RNG driving
//! sampling, and seed persistence for failure replay.
//!
//! Every sampled case runs from its **own** RNG, seeded as
//! `derive_case_seed(base, index)`. A failing case is therefore fully
//! identified by one `u64`; the runner appends it to the crate's
//! `proptest-regressions/<file-stem>.txt` file (commit it!) and replays
//! every stored seed before sampling fresh cases. The base seed defaults
//! to a fixed constant and can be overridden with the `DSS_PROPTEST_SEED`
//! environment variable (decimal or `0x…` hex) to explore a different
//! deterministic stream, e.g. per-push in CI.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *passing* cases each test must accumulate.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single sampled case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (skipped, not counted).
    Reject,
    /// The case failed a `prop_assert*!`.
    Fail(String),
}

/// Default base seed when `DSS_PROPTEST_SEED` is unset.
pub const DEFAULT_BASE_SEED: u64 = 0x0123_4567_89AB_CDEF;

/// Environment variable overriding the base seed.
pub const SEED_ENV: &str = "DSS_PROPTEST_SEED";

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The historical fixed-seed constructor (kept for direct strategy
    /// sampling in unit tests).
    pub fn deterministic() -> TestRng {
        TestRng::from_seed(DEFAULT_BASE_SEED)
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in the half-open interval `[lo, hi)`.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        let span = (hi - lo) as u128;
        let v = (self.next_u64() as u128) % span;
        lo + v as i128
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Base seed for this process: `DSS_PROPTEST_SEED` if set, else
/// [`DEFAULT_BASE_SEED`]. Panics on an unparseable override — a typo'd
/// seed silently falling back would defeat the reproduction attempt.
pub fn base_seed() -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(v) => parse_seed(&v)
            .unwrap_or_else(|| panic!("{SEED_ENV}={v:?} is not a u64 (decimal or 0x… hex)")),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

/// Parses a seed in decimal or `0x…` hexadecimal (underscores allowed).
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim().replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Derives the seed of case `index` in the stream rooted at `base`
/// (splitmix64 jump so neighbouring indices share no low-bit structure).
pub fn derive_case_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Path of the regression file for the test source file `source`
/// (`file!()`) inside the crate rooted at `manifest_dir`
/// (`env!("CARGO_MANIFEST_DIR")`).
pub fn regression_file(manifest_dir: &str, source: &str) -> PathBuf {
    let stem = Path::new(source)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Seeds stored for `test_name` in the regression file. Lines have the
/// form `test_name 0xSEED`, optionally followed by a `#` comment; blank
/// lines and full-line `#` comments are ignored.
pub fn stored_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in contents.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some(test_name) {
            continue;
        }
        if let Some(seed) = parts.next().and_then(parse_seed) {
            seeds.push(seed);
        }
    }
    seeds
}

/// Appends a failing seed to the regression file (no-op if already
/// stored). Persistence is best-effort: a read-only checkout must not
/// turn the real failure into an I/O panic.
pub fn persist_seed(path: &Path, test_name: &str, seed: u64, message: &str) {
    if stored_seeds(path, test_name).contains(&seed) {
        return;
    }
    let mut line = String::new();
    let first = message.lines().next().unwrap_or("").trim();
    let _ = write!(line, "{test_name} 0x{seed:016X}");
    if !first.is_empty() {
        let _ = write!(line, " # {first}");
    }
    line.push('\n');
    let _ = std::fs::create_dir_all(path.parent().unwrap_or(Path::new(".")));
    let header = if path.exists() {
        String::new()
    } else {
        "# Seeds of proptest cases that failed at least once. Committed so\n\
         # every run replays them before sampling fresh cases. One line per\n\
         # failure: `test_name 0xSEED`. Text after `#` is ignored.\n"
            .to_string()
    };
    use std::io::Write as _;
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let _ = f.write_all(header.as_bytes());
    let _ = f.write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = rng.i128_in(-25, 25);
            assert!((-25..25).contains(&v));
            assert!(rng.usize_below(7) < 7);
        }
    }

    #[test]
    fn seeds_parse_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed("0X2a"), Some(42));
        assert_eq!(parse_seed("0x0123_4567_89AB_CDEF"), Some(DEFAULT_BASE_SEED));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn case_seeds_differ_per_index() {
        let a = derive_case_seed(DEFAULT_BASE_SEED, 0);
        let b = derive_case_seed(DEFAULT_BASE_SEED, 1);
        let c = derive_case_seed(DEFAULT_BASE_SEED ^ 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn regression_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("dss-proptest-{}", std::process::id()));
        let path = dir.join("sample.txt");
        let _ = std::fs::remove_file(&path);
        assert!(stored_seeds(&path, "t").is_empty());
        persist_seed(&path, "t", 0xDEAD, "boom: left != right\nsecond line");
        persist_seed(&path, "t", 0xDEAD, "duplicate is ignored");
        persist_seed(&path, "other", 7, "");
        assert_eq!(stored_seeds(&path, "t"), vec![0xDEAD]);
        assert_eq!(stored_seeds(&path, "other"), vec![7]);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            contents
                .lines()
                .filter(|l| l.contains("0x000000000000DEAD"))
                .count(),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_file_path_uses_file_stem() {
        let p = regression_file("/tmp/crate", "tests/property_based.rs");
        assert_eq!(
            p,
            Path::new("/tmp/crate/proptest-regressions/property_based.txt")
        );
    }
}
