//! Strategies: composable value generators.
//!
//! Everything is sampling-based: a `Strategy` produces one value per call
//! from a deterministic RNG. Combinators return [`BoxedStrategy`] (an `Rc`'d
//! sampling closure) rather than bespoke adapter types — cheap to clone and
//! sufficient for test-data generation without shrinking.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

pub trait Strategy: 'static {
    type Value: 'static;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a cloneable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy {
            sampler: Rc::new(move |rng| s.sample(rng)),
        }
    }

    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy {
            sampler: Rc::new(move |rng| f(s.sample(rng))),
        }
    }

    /// Map-and-filter: resamples until the closure returns `Some`.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        U: 'static,
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        let s = self;
        BoxedStrategy {
            sampler: Rc::new(move |rng| {
                for _ in 0..1000 {
                    if let Some(v) = f(s.sample(rng)) {
                        return v;
                    }
                }
                panic!("prop_filter_map: filter {whence:?} rejected 1000 consecutive samples");
            }),
        }
    }

    fn prop_flat_map<R, F>(self, f: F) -> BoxedStrategy<R::Value>
    where
        Self: Sized,
        R: Strategy,
        F: Fn(Self::Value) -> R + 'static,
    {
        let s = self;
        BoxedStrategy {
            sampler: Rc::new(move |rng| f(s.sample(rng)).sample(rng)),
        }
    }

    /// Recursive structures: `self` is the leaf case, `branch` builds one
    /// level on top of an inner strategy. Nesting is bounded by `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let b = branch(cur).boxed();
            let l = leaf.clone();
            // Two-thirds branch keeps trees interesting while the iteration
            // count bounds worst-case depth.
            cur = BoxedStrategy {
                sampler: Rc::new(move |rng: &mut TestRng| {
                    if rng.usize_below(3) == 0 {
                        l.sample(rng)
                    } else {
                        b.sample(rng)
                    }
                }),
            };
        }
        cur
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    pub(crate) sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among arms (used by `prop_oneof!`).
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy {
        sampler: Rc::new(move |rng| {
            let i = rng.usize_below(arms.len());
            arms[i].sample(rng)
        }),
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.i128_in(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Regex-subset string strategy: see [`crate::string::sample_regex`].
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized + 'static {
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy {
            sampler: Rc::new(|rng| rng.bool()),
        }
    }
}

pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        let size = size.into();
        BoxedStrategy {
            sampler: Rc::new(move |rng| {
                let n = size.min + rng.usize_below(size.max - size.min + 1);
                (0..n).map(|_| element.sample(rng)).collect()
            }),
        }
    }
}

pub mod option {
    use super::{BoxedStrategy, Strategy};
    use std::rc::Rc;

    /// `None` a quarter of the time, `Some(sampled)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy {
            sampler: Rc::new(move |rng| {
                if rng.usize_below(4) == 0 {
                    None
                } else {
                    Some(inner.sample(rng))
                }
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic()
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-20i64..20).sample(&mut r);
            assert!((-20..20).contains(&v));
            let u = (0usize..=3).sample(&mut r);
            assert!(u <= 3);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1i64..5)
            .prop_map(|v| v * 10)
            .prop_flat_map(|v| (v..v + 3).prop_map(Some));
        for _ in 0..100 {
            let v = s.sample(&mut r).unwrap();
            assert!((10..43).contains(&v));
        }
    }

    #[test]
    fn filter_map_respects_filter() {
        let mut r = rng();
        let s = (0i64..10).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut r = rng();
        let s = collection::vec(0i64..5, 1..=4);
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 24, 4, |inner| {
            collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut r)) <= 5);
        }
    }

    #[test]
    fn one_of_picks_every_arm() {
        let arms = vec![Just(1i64).boxed(), Just(2i64).boxed(), Just(3i64).boxed()];
        let s = one_of(arms);
        let mut seen = [false; 3];
        let mut r = rng();
        for _ in 0..200 {
            seen[(s.sample(&mut r) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
