//! The projection operator Π.

use dss_properties::ProjectionSpec;
use dss_xml::{Node, Symbol};

use crate::op::{Emit, StreamOperator};

/// Projection: prunes each item's tree to the subtrees listed in the
/// projection's *output* set. An output path keeps its complete subtree;
/// ancestors along the way are kept as structure.
#[derive(Debug)]
pub struct ProjectOp {
    spec: ProjectionSpec,
    /// Reusable stack of the symbols on the path from the item root to the
    /// node currently being pruned — avoids allocating a `Path` per child.
    stack: Vec<Symbol>,
}

impl ProjectOp {
    /// Creates a projection operator.
    pub fn new(spec: ProjectionSpec) -> ProjectOp {
        ProjectOp {
            spec,
            stack: Vec::new(),
        }
    }

    /// The projection spec.
    pub fn spec(&self) -> &ProjectionSpec {
        &self.spec
    }

    /// Projects a single node tree (standalone helper, also used by the
    /// restructurer).
    pub fn project(spec: &ProjectionSpec, item: &Node) -> Node {
        project_with_stack(spec, item, &mut Vec::new())
    }
}

/// Projects `item`, tracking the current position as a symbol stack in
/// `stack` (empty on entry and exit) instead of allocating `Path`s.
fn project_with_stack(spec: &ProjectionSpec, item: &Node, stack: &mut Vec<Symbol>) -> Node {
    fn prune(spec: &ProjectionSpec, node: &Node, stack: &mut Vec<Symbol>) -> Option<Node> {
        // A node is kept entirely if some output path covers it
        // (the output path is a prefix of the node's path).
        if spec.output.iter().any(|out| stack.starts_with(out.steps())) {
            return Some(node.clone());
        }
        // A node is kept as bare structure if it lies on the way to
        // some output path (the node's path is a prefix of an output path).
        if !spec.output.iter().any(|out| out.steps().starts_with(stack)) {
            return None;
        }
        let mut kept = Node::empty(node.symbol());
        for child in node.children() {
            stack.push(child.symbol());
            let pruned = prune(spec, child, stack);
            stack.pop();
            if let Some(c) = pruned {
                kept.push_child(c);
            }
        }
        Some(kept)
    }
    debug_assert!(stack.is_empty());
    prune(spec, item, stack).unwrap_or_else(|| Node::empty(item.symbol()))
}

impl StreamOperator for ProjectOp {
    fn name(&self) -> &'static str {
        "Π"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        out.push(project_with_stack(&self.spec, item, &mut self.stack));
    }

    fn base_load(&self) -> f64 {
        1.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamOperatorExt;
    use dss_xml::{writer::node_to_string, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn photon() -> Node {
        Node::parse(
            "<photon><phc>57</phc><coord><cel><ra>130.7</ra><dec>-46.2</dec></cel>\
             <det><dx>12</dx><dy>34</dy></det></coord><en>1.4</en>\
             <det_time>1017.5</det_time></photon>",
        )
        .unwrap()
    }

    #[test]
    fn keeps_only_output_paths() {
        let spec = ProjectionSpec::returning([p("coord/cel/ra"), p("en")]);
        let mut op = ProjectOp::new(spec);
        let out = op.process_collect(&photon());
        assert_eq!(out.len(), 1);
        assert_eq!(
            node_to_string(&out[0]),
            "<photon><coord><cel><ra>130.7</ra></cel></coord><en>1.4</en></photon>"
        );
    }

    #[test]
    fn output_subtree_kept_completely() {
        let spec = ProjectionSpec::returning([p("coord")]);
        let out = ProjectOp::project(&spec, &photon());
        assert_eq!(
            node_to_string(&out),
            "<photon><coord><cel><ra>130.7</ra><dec>-46.2</dec></cel>\
             <det><dx>12</dx><dy>34</dy></det></coord></photon>"
        );
    }

    #[test]
    fn referenced_but_unmarked_paths_are_dropped() {
        // The query filters on ra (referenced) but only returns en: the
        // produced stream only carries en.
        let spec = ProjectionSpec::returning([p("en")]).with_referenced([p("coord/cel/ra")]);
        let out = ProjectOp::project(&spec, &photon());
        assert_eq!(node_to_string(&out), "<photon><en>1.4</en></photon>");
    }

    #[test]
    fn missing_paths_leave_structure_out() {
        let spec = ProjectionSpec::returning([p("coord/det/dz"), p("en")]);
        let out = ProjectOp::project(&spec, &photon());
        // dz does not exist: coord/det is kept as empty structure on the way
        // to the requested path.
        assert_eq!(
            node_to_string(&out),
            "<photon><coord><det/></coord><en>1.4</en></photon>"
        );
    }

    #[test]
    fn empty_output_set_produces_bare_item() {
        let spec = ProjectionSpec::returning([]);
        let out = ProjectOp::project(&spec, &photon());
        assert_eq!(node_to_string(&out), "<photon/>");
    }

    #[test]
    fn projection_of_q1_output_matches_paper() {
        // Q1 returns ra, dec, phc, en, det_time — everything except the
        // detector coordinates.
        let spec = ProjectionSpec::returning([
            p("coord/cel/ra"),
            p("coord/cel/dec"),
            p("phc"),
            p("en"),
            p("det_time"),
        ]);
        let out = ProjectOp::project(&spec, &photon());
        assert_eq!(
            node_to_string(&out),
            "<photon><phc>57</phc><coord><cel><ra>130.7</ra><dec>-46.2</dec></cel></coord>\
             <en>1.4</en><det_time>1017.5</det_time></photon>"
        );
    }
}
