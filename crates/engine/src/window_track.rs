//! Shared window bookkeeping for the windowed operators.
//!
//! Both window aggregation ([`crate::aggregate::AggregateOp`]) and
//! window-contents output ([`crate::window_contents::WindowContentsOp`])
//! maintain the same sliding-window state: windows anchored on the
//! absolute grid `{k·µ}` (clamped to non-negative starts), opened on
//! demand when a reference value overlaps them, closed in ascending start
//! order once the (sorted) reference value passes their end. This module
//! factors that machinery; the operators only supply the per-window
//! accumulator type.

use std::collections::VecDeque;

use dss_properties::{WindowKind, WindowSpec};
use dss_xml::{Decimal, Node};

/// Largest grid multiple of `step` that is ≤ `v` (floor toward −∞).
pub fn grid_floor(v: Decimal, step: Decimal) -> Decimal {
    let scale = v.scale().max(step.scale());
    let (vu, su) = (v.units_at_scale(scale), step.units_at_scale(scale));
    debug_assert!(su > 0);
    let q = vu.div_euclid(su);
    Decimal::new(q * su, scale)
}

/// Sliding-window state over an ordered stream.
#[derive(Debug)]
pub struct WindowTracker<T> {
    window: WindowSpec,
    /// Open windows (start, accumulator), ascending by start.
    active: VecDeque<(Decimal, T)>,
    /// Start of the youngest window opened so far (grid-aligned).
    youngest_start: Option<Decimal>,
    /// Arrival index for `count` windows.
    items_seen: u64,
}

impl<T: Default> WindowTracker<T> {
    /// Creates a tracker for the given window specification.
    pub fn new(window: WindowSpec) -> WindowTracker<T> {
        WindowTracker {
            window,
            active: VecDeque::new(),
            youngest_start: None,
            items_seen: 0,
        }
    }

    /// The window specification.
    pub fn window(&self) -> &WindowSpec {
        &self.window
    }

    /// Reference value of an item: arrival index for `count` windows, the
    /// reference element's value for `diff` windows. `None` when a `diff`
    /// item has no readable reference value.
    pub fn reference_value(&self, item: &Node) -> Option<Decimal> {
        match self.window.kind() {
            WindowKind::Count => Some(Decimal::from_int(self.items_seen as i64)),
            WindowKind::Diff => {
                let r = self
                    .window
                    .reference()
                    .expect("diff windows carry a reference");
                r.decimal_value(item).ok()
            }
        }
    }

    /// Observes one item: closes every window whose range ended before the
    /// item's reference value (handing each to `on_closed` in ascending
    /// start order), opens the grid windows newly overlapping it, and folds
    /// the item into every open window containing it via
    /// `fold(accumulator, window_start)`.
    ///
    /// Closed windows are delivered through the callback instead of a
    /// returned `Vec`, so the common no-window-closed case allocates
    /// nothing. Items without a reference value, or with a negative one
    /// (out-of-domain), are skipped and close nothing.
    pub fn observe(
        &mut self,
        item: &Node,
        mut fold: impl FnMut(&mut T, Decimal),
        on_closed: impl FnMut(Decimal, T),
    ) {
        let Some(v) = self.reference_value(item) else {
            return;
        };
        if v < Decimal::ZERO {
            return;
        }
        self.items_seen += 1;
        self.close_before(v, on_closed);
        self.open_overlapping(v);
        let size = self.window.size();
        for (start, acc) in &mut self.active {
            if *start <= v && v < *start + size {
                fold(acc, *start);
            }
        }
    }

    /// Drains all still-open windows at end-of-stream, in ascending start
    /// order.
    pub fn flush(&mut self, mut on_closed: impl FnMut(Decimal, T)) {
        for (start, acc) in self.active.drain(..) {
            on_closed(start, acc);
        }
    }

    /// Exports the tracker's open state for migration: open windows in
    /// ascending start order, the youngest opened start, and the arrival
    /// index. The tracker is left empty.
    pub fn export_open(&mut self) -> (Vec<(Decimal, T)>, Option<Decimal>, u64) {
        let open = self.active.drain(..).collect();
        (open, self.youngest_start.take(), self.items_seen)
    }

    /// Adopts open state exported from a tracker with window spec `from`,
    /// when the adoption is exact: identical specs, or a step coarsening
    /// (same kind/reference/size Δ, new step µ' a multiple of the old µ).
    /// Under a step coarsening the coarser grid is a subset of the finer
    /// one and window extents are unchanged, so filtering the open set to
    /// the µ'-grid yields exactly the windows a continuously running
    /// tracker with `self`'s spec would hold open.
    ///
    /// Returns the number of windows adopted, or `None` (leaving the
    /// tracker untouched) when the specs are not exactly adoptable. Must
    /// only be called on a fresh tracker.
    ///
    /// # Panics
    /// Debug-asserts that every imported window start lies on the
    /// *exporter's* µ-grid — a snapshot carrying off-grid starts means the
    /// lattice step was wrong, and silently mis-tiled windows downstream.
    pub fn adopt_open(
        &mut self,
        from: &WindowSpec,
        open: Vec<(Decimal, T)>,
        youngest_start: Option<Decimal>,
        items_seen: u64,
    ) -> Option<u64> {
        if !crate::migrate::step_compatible(&self.window, from) {
            return None;
        }
        debug_assert!(
            self.active.is_empty() && self.youngest_start.is_none() && self.items_seen == 0,
            "state adopted into a non-fresh tracker"
        );
        debug_assert!(
            open.iter()
                .all(|(start, _)| WindowSpec::is_multiple_of(*start, from.step())),
            "migrated window start off the exporter's µ-grid: bad lattice step"
        );
        let step = self.window.step();
        let mut adopted = 0u64;
        for (start, acc) in open {
            if WindowSpec::is_multiple_of(start, step) {
                self.active.push_back((start, acc));
                adopted += 1;
            }
        }
        debug_assert!(
            self.active
                .iter()
                .zip(self.active.iter().skip(1))
                .all(|(a, b)| a.0 < b.0),
            "migrated windows out of ascending start order"
        );
        // The youngest start a continuous tracker on the coarser grid would
        // have recorded is the grid floor of the finer tracker's.
        self.youngest_start = youngest_start.map(|y| grid_floor(y, step));
        self.items_seen = items_seen;
        Some(adopted)
    }

    /// Closes (removes and hands to `on_closed`) every open window with
    /// `end ≤ v`.
    fn close_before(&mut self, v: Decimal, mut on_closed: impl FnMut(Decimal, T)) {
        let size = self.window.size();
        while let Some((start, _)) = self.active.front() {
            if *start + size <= v {
                let (start, acc) = self.active.pop_front().expect("front exists");
                on_closed(start, acc);
            } else {
                break;
            }
        }
    }

    /// Opens every grid window overlapping reference value `v` that is not
    /// open yet: starts in `(v − Δ, v]` on the non-negative µ-grid.
    fn open_overlapping(&mut self, v: Decimal) {
        let size = self.window.size();
        let step = self.window.step();
        let highest = grid_floor(v, step);
        let mut start = match self.youngest_start {
            Some(y) => y + step,
            None => {
                let mut s = highest;
                while s > Decimal::ZERO && v < (s - step) + size && s - step <= v {
                    s = s - step;
                }
                s
            }
        };
        while start <= highest {
            if v < start + size {
                self.active.push_back((start, T::default()));
            }
            self.youngest_start = Some(start);
            start = start + step;
        }
        if self.youngest_start.is_none() {
            self.youngest_start = Some(highest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_xml::Path;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn diff_window(size: &str, step: Option<&str>) -> WindowSpec {
        WindowSpec::diff("t".parse::<Path>().unwrap(), d(size), step.map(d)).unwrap()
    }

    fn item(t: &str) -> Node {
        Node::elem("i", vec![Node::leaf("t", t)])
    }

    #[test]
    fn counts_items_per_window() {
        let mut tr: WindowTracker<u32> = WindowTracker::new(diff_window("20", Some("10")));
        let mut closed = Vec::new();
        for t in ["5", "15", "25", "35"] {
            tr.observe(&item(t), |acc, _| *acc += 1, |s, c| closed.push((s, c)));
        }
        tr.flush(|s, c| closed.push((s, c)));
        let view: Vec<(String, u32)> = closed.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        assert_eq!(
            view,
            vec![
                ("0".into(), 2),
                ("10".into(), 2),
                ("20".into(), 2),
                ("30".into(), 1)
            ]
        );
    }

    #[test]
    fn fold_sees_window_start() {
        let mut tr: WindowTracker<Vec<String>> = WindowTracker::new(diff_window("20", Some("10")));
        tr.observe(
            &item("15"),
            |acc, start| acc.push(start.to_string()),
            |_, _| {},
        );
        let mut open: Vec<Vec<String>> = Vec::new();
        tr.flush(|_, v| open.push(v));
        assert_eq!(open, vec![vec!["0".to_string()], vec!["10".to_string()]]);
    }

    #[test]
    fn skips_unreadable_and_negative_references() {
        let mut tr: WindowTracker<u32> = WindowTracker::new(diff_window("10", None));
        let mut closed = Vec::new();
        tr.observe(
            &Node::empty("i"),
            |a, _| *a += 1,
            |s, c| closed.push((s, c)),
        );
        tr.observe(&item("-5"), |a, _| *a += 1, |s, c| closed.push((s, c)));
        assert!(closed.is_empty());
        tr.observe(&item("1"), |a, _| *a += 1, |s, c| closed.push((s, c)));
        tr.flush(|s, c| closed.push((s, c)));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].1, 1);
    }

    #[test]
    fn count_windows_use_arrival_index() {
        let spec = WindowSpec::count(d("3"), None).unwrap();
        let mut tr: WindowTracker<u32> = WindowTracker::new(spec);
        let mut closed = Vec::new();
        for _ in 0..7 {
            tr.observe(
                &Node::empty("i"),
                |a, _| *a += 1,
                |s, c| closed.push((s, c)),
            );
        }
        tr.flush(|s, c| closed.push((s, c)));
        let counts: Vec<u32> = closed.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![3, 3, 1]);
    }
}
