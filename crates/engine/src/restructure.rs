//! The restructuring (post-processing) operator.
//!
//! Per Section 2 of the paper, restructuring — introducing new elements,
//! reordering or renaming output elements — is done in a post-processing
//! step at the super-peer connected to the subscribing peer, and its output
//! is *not* considered for reuse. The operator instantiates the query's
//! `return`-clause template for every incoming item.

use dss_properties::AggOp;
use dss_xml::{Node, Path, Symbol};

use crate::agg_item::AggItem;
use crate::op::{Emit, StreamOperator};

/// A `return`-clause construction template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Template {
    /// `<t> children </t>` — a direct element constructor. The tag is
    /// interned at query-compile time so per-item instantiation never
    /// touches the name table.
    Element {
        tag: Symbol,
        children: Vec<Template>,
    },
    /// `{ $p/π }` — copies the subtree(s) reachable through π from the
    /// current item.
    Subtree(Path),
    /// `{ $a }` — the final value of the window aggregate.
    AggValue,
    /// `{ $w }` — the contents of the data window (the contained stream
    /// items, spliced in order).
    WindowContents,
    /// Literal text content.
    Text(String),
}

impl Template {
    /// Element constructor helper.
    pub fn element(tag: impl Into<Symbol>, children: Vec<Template>) -> Template {
        Template::Element {
            tag: tag.into(),
            children,
        }
    }
}

/// What kind of stream items the restructurer consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputKind {
    /// Plain stream items.
    Items,
    /// Aggregate partials; `{ $a }` renders the final value of this op.
    Aggregate(AggOp),
    /// Window-contents items; `{ $w }` splices the contained items.
    Window,
}

/// Restructures stream items (aggregate partials, window items) into the
/// final result items delivered to the subscriber.
#[derive(Debug)]
pub struct RestructureOp {
    template: Template,
    input: InputKind,
}

impl RestructureOp {
    /// Restructurer over plain stream items.
    pub fn new(template: Template) -> RestructureOp {
        RestructureOp {
            template,
            input: InputKind::Items,
        }
    }

    /// Restructurer over window-contents items: `{ $w }` splices each
    /// window's contained items into the constructed element.
    pub fn for_window(template: Template) -> RestructureOp {
        RestructureOp {
            template,
            input: InputKind::Window,
        }
    }

    /// Restructurer over aggregate partials: `{ $a }` renders the final
    /// aggregate value (computing `sum/count` for avg — exactly the paper's
    /// "the final aggregate value is computed at the super-peer at which
    /// the subscription is registered").
    pub fn for_aggregate(template: Template, op: AggOp) -> RestructureOp {
        RestructureOp {
            template,
            input: InputKind::Aggregate(op),
        }
    }

    /// Instantiates `template` against an item, an optional aggregate
    /// value, and optional window contents. Returns `None` when a required
    /// aggregate value is undefined.
    fn instantiate(
        template: &Template,
        item: &Node,
        agg_value: Option<&str>,
        window_items: Option<&[Node]>,
    ) -> Option<Node> {
        match template {
            Template::Element { tag, children } => {
                let mut node = Node::empty(*tag);
                let mut text = String::new();
                for child in children {
                    match child {
                        Template::Subtree(path) => {
                            // The constructed node owns its children, so the
                            // matched subtrees are copied out of the item.
                            path.visit(item, &mut |n| node.push_child(n.clone()));
                        }
                        Template::AggValue => {
                            text.push_str(agg_value?);
                        }
                        Template::WindowContents => {
                            for n in window_items? {
                                node.push_child(n.clone());
                            }
                        }
                        Template::Text(t) => text.push_str(t),
                        elem @ Template::Element { .. } => {
                            node.push_child(Self::instantiate(
                                elem,
                                item,
                                agg_value,
                                window_items,
                            )?);
                        }
                    }
                }
                if !text.is_empty() {
                    // Text coexists with children (it renders first) —
                    // `<x>label { $p/en }</x>` keeps its label.
                    node.set_text(text);
                }
                Some(node)
            }
            Template::Subtree(path) => path.first(item).cloned(),
            Template::AggValue => agg_value.map(|v| Node::leaf("value", v)),
            Template::WindowContents => {
                window_items.map(|items| Node::elem("window", items.to_vec()))
            }
            Template::Text(t) => Some(Node::leaf("text", t.clone())),
        }
    }
}

impl StreamOperator for RestructureOp {
    fn name(&self) -> &'static str {
        "ρ"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        let mut agg_value = None;
        let mut window_items = None;
        match self.input {
            InputKind::Aggregate(op) => {
                let Ok(partial) = AggItem::from_node(item) else {
                    return;
                };
                match partial.final_value(op) {
                    Some(v) => agg_value = Some(v.to_string()),
                    None => return,
                }
            }
            InputKind::Window => {
                let Ok(w) = crate::window_contents::WindowItem::from_node(item) else {
                    return;
                };
                window_items = Some(w.items);
            }
            InputKind::Items => {}
        }
        if let Some(n) = Self::instantiate(
            &self.template,
            item,
            agg_value.as_deref(),
            window_items.as_deref(),
        ) {
            out.push(n);
        }
    }

    fn base_load(&self) -> f64 {
        0.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamOperatorExt;
    use dss_xml::writer::node_to_string;
    use dss_xml::Decimal;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn photon() -> Node {
        Node::parse(
            "<photon><phc>57</phc><coord><cel><ra>130.7</ra><dec>-46.2</dec></cel></coord>\
             <en>1.4</en><det_time>1017.5</det_time></photon>",
        )
        .unwrap()
    }

    /// Query 1's return clause: `<vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
    /// { $p/phc } { $p/en } { $p/det_time } </vela>`.
    #[test]
    fn q1_return_clause() {
        let template = Template::element(
            "vela",
            vec![
                Template::Subtree(p("coord/cel/ra")),
                Template::Subtree(p("coord/cel/dec")),
                Template::Subtree(p("phc")),
                Template::Subtree(p("en")),
                Template::Subtree(p("det_time")),
            ],
        );
        let mut op = RestructureOp::new(template);
        let out = op.process_collect(&photon());
        assert_eq!(out.len(), 1);
        assert_eq!(
            node_to_string(&out[0]),
            "<vela><ra>130.7</ra><dec>-46.2</dec><phc>57</phc><en>1.4</en>\
             <det_time>1017.5</det_time></vela>"
        );
    }

    /// Query 3's return clause: `<avg_en> { $a } </avg_en>` over aggregate
    /// partials, with avg computed as sum/count at delivery.
    #[test]
    fn q3_return_clause_over_aggregate() {
        let template = Template::element("avg_en", vec![Template::AggValue]);
        let mut op = RestructureOp::for_aggregate(template, AggOp::Avg);
        let mut partial = AggItem::empty(Decimal::ZERO, Decimal::from_int(20));
        partial.add_value("1.2".parse().unwrap());
        partial.add_value("1.8".parse().unwrap());
        let out = op.process_collect(&partial.to_node());
        assert_eq!(out.len(), 1);
        assert_eq!(node_to_string(&out[0]), "<avg_en>1.5</avg_en>");
    }

    #[test]
    fn aggregate_restructure_skips_non_agg_items() {
        let template = Template::element("avg_en", vec![Template::AggValue]);
        let mut op = RestructureOp::for_aggregate(template, AggOp::Avg);
        assert!(op.process_collect(&photon()).is_empty());
    }

    #[test]
    fn nested_element_construction() {
        let template = Template::element(
            "report",
            vec![
                Template::element("position", vec![Template::Subtree(p("coord/cel/ra"))]),
                Template::element("energy", vec![Template::Subtree(p("en"))]),
            ],
        );
        let mut op = RestructureOp::new(template);
        let out = op.process_collect(&photon());
        assert_eq!(
            node_to_string(&out[0]),
            "<report><position><ra>130.7</ra></position><energy><en>1.4</en></energy></report>"
        );
    }

    #[test]
    fn missing_subtrees_yield_empty_spots() {
        let template = Template::element(
            "r",
            vec![Template::Subtree(p("nope")), Template::Subtree(p("en"))],
        );
        let mut op = RestructureOp::new(template);
        let out = op.process_collect(&photon());
        assert_eq!(node_to_string(&out[0]), "<r><en>1.4</en></r>");
    }

    #[test]
    fn literal_text_content() {
        let template = Template::element("label", vec![Template::Text("vela region".into())]);
        let mut op = RestructureOp::new(template);
        assert_eq!(
            node_to_string(&op.process_collect(&photon())[0]),
            "<label>vela region</label>"
        );
    }

    #[test]
    fn empty_element_constructor() {
        let template = Template::element("marker", vec![]);
        let mut op = RestructureOp::new(template);
        assert_eq!(
            node_to_string(&op.process_collect(&photon())[0]),
            "<marker/>"
        );
    }
}
