//! Builds executable pipelines from the operator chains recorded in
//! properties.

use dss_properties::Operator;
use dss_xml::Node;

use crate::aggregate::AggregateOp;
use crate::op::{Emit, Pipeline, StreamOperator};
use crate::project::ProjectOp;
use crate::select::SelectOp;

/// A deterministic user-defined operator. Unknown semantics (the system
/// only assumes determinism), modeled as an identity transform with a
/// configurable extra load — enough to exercise the sharing rules for UDFs.
#[derive(Debug)]
pub struct UdfOp {
    name: String,
    params: Vec<String>,
}

impl UdfOp {
    /// Creates the UDF operator.
    pub fn new(name: impl Into<String>, params: Vec<String>) -> UdfOp {
        UdfOp {
            name: name.into(),
            params,
        }
    }

    /// The UDF's name.
    pub fn udf_name(&self) -> &str {
        &self.name
    }

    /// The UDF's input vector (parameter list).
    pub fn params(&self) -> &[String] {
        &self.params
    }
}

impl StreamOperator for UdfOp {
    fn name(&self) -> &'static str {
        "udf"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        // Identity transform: the sink owns its items, so the passed-through
        // item is cloned out of the caller's borrow.
        out.push(item.clone());
    }

    fn base_load(&self) -> f64 {
        3.0
    }
}

/// Instantiates one executable operator from its properties description.
/// The returned operator is `Send` so shared-DAG executors can run it on a
/// worker thread; it coerces to a plain `Box<dyn StreamOperator>` wherever
/// one is expected.
pub fn build_operator(op: &Operator) -> Box<dyn StreamOperator + Send> {
    match op {
        Operator::Selection(g) => Box::new(SelectOp::new(g.clone())),
        Operator::Projection(spec) => Box::new(ProjectOp::new(spec.clone())),
        Operator::Aggregation(spec) => Box::new(AggregateOp::new(spec.clone())),
        Operator::WindowOutput(spec) => {
            Box::new(crate::window_contents::WindowContentsOp::new(spec.clone()))
        }
        Operator::Udf { name, params } => Box::new(UdfOp::new(name.clone(), params.clone())),
    }
}

/// Builds a pipeline executing an operator chain in order.
pub fn build_pipeline(ops: &[Operator]) -> Pipeline {
    let mut p = Pipeline::new();
    for op in ops {
        p.push(build_operator(op));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_properties::{AggOp, AggregationSpec, ProjectionSpec, ResultFilter, WindowSpec};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn builds_select_project_chain() {
        let ops = vec![
            Operator::Selection(PredicateGraph::from_atoms(&[Atom::var_const(
                p("en"),
                CompOp::Ge,
                d("1.3"),
            )])),
            Operator::Projection(ProjectionSpec::returning([p("en")])),
        ];
        let mut pipe = build_pipeline(&ops);
        assert_eq!(pipe.len(), 2);
        let hot = Node::elem(
            "photon",
            vec![Node::leaf("en", "1.5"), Node::leaf("det_time", "1")],
        );
        let out = pipe.process(&hot);
        assert_eq!(out.len(), 1);
        assert_eq!(
            dss_xml::writer::node_to_string(&out[0]),
            "<photon><en>1.5</en></photon>"
        );
        let cold = Node::elem("photon", vec![Node::leaf("en", "1.0")]);
        assert!(pipe.process(&cold).is_empty());
    }

    #[test]
    fn builds_aggregation_chain() {
        let spec = AggregationSpec {
            op: AggOp::Sum,
            element: p("en"),
            window: WindowSpec::diff(p("det_time"), d("10"), None).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::none(),
        };
        let mut pipe = build_pipeline(&[Operator::Aggregation(spec)]);
        for t in 0..25 {
            let item = Node::elem(
                "photon",
                vec![
                    Node::leaf("det_time", t.to_string()),
                    Node::leaf("en", "1.0"),
                ],
            );
            pipe.process(&item);
        }
        let out = pipe.flush();
        assert_eq!(out.len(), 1); // [20,30) partial; earlier two emitted during run
        assert_eq!(pipe.stats()[0].items_out, 3);
    }

    #[test]
    fn udf_is_identity_with_load() {
        let mut pipe = build_pipeline(&[Operator::Udf {
            name: "deskew".into(),
            params: vec!["7".into()],
        }]);
        let item = Node::leaf("x", "1");
        assert_eq!(pipe.process(&item), vec![item.clone()]);
        assert_eq!(pipe.base_load(), 3.0);
    }
}
