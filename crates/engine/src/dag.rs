//! A prefix-sharing operator DAG: many operator chains fused into one
//! executable trie.
//!
//! Several continuous queries consuming the same input stream at one peer
//! frequently start with the *same* leading operators (the common
//! selection/projection prefix of a query template). Executing each
//! chain as its own [`Pipeline`](crate::Pipeline) re-runs that prefix once
//! per chain and per item. An [`OpDag`] instead merges equal prefixes into
//! single trie nodes: each input item runs through every shared node
//! exactly once, and a fan-out routes node outputs to the per-chain
//! *sinks* — so per-item work grows with the number of *distinct*
//! operators, not the number of chains.
//!
//! Merging is controlled by a caller-supplied `mergeable` predicate over
//! the caller's operator keys (`K`), because only the caller knows when
//! two operator descriptions may share one instance (stateless operators:
//! structural equality; windowed operators: only when their window specs
//! match — the paper's `MatchAggregations` rule).
//!
//! Chains register and retire dynamically. [`OpDag::reregister`] replaces
//! a sink's chain while keeping the nodes of the unchanged leading prefix
//! alive — including their buffered window state — and rebuilding only the
//! suffix below the first changed operator.
//!
//! Output semantics are item-for-item identical to running each chain as
//! its own `Pipeline`: per-node short-circuiting on empty output, and
//! flushes that cascade upstream-drained items through downstream
//! operators before those drain their own state.

use std::collections::BTreeMap;

use dss_xml::Node;

use crate::migrate::{MigrationReport, OpState};
use crate::op::{Emit, OpStats, StreamOperator};

/// Identifies one registered chain's output (the caller's routing handle —
/// a flow id, typically).
pub type SinkId = usize;

/// One keyed operator chain, as passed to [`OpDag::register`] and the
/// re-registration entry points.
pub type KeyedChain<K> = Vec<(K, Box<dyn StreamOperator + Send>)>;

/// Snapshot of one DAG node's identity and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNodeStats {
    /// Depth in the trie (0 = reads the input stream directly).
    pub depth: usize,
    /// Number of registered chains currently sharing this node.
    pub sharers: usize,
    /// Execution counters, same meaning as a pipeline stage's.
    pub stats: OpStats,
}

#[derive(Debug)]
struct DagNode<K> {
    key: K,
    op: Box<dyn StreamOperator + Send>,
    /// Cached `op.base_load()`.
    load: f64,
    /// Registered chains whose path passes through this node.
    sharers: usize,
    children: Vec<usize>,
    /// Chains terminating here: their output is this node's output.
    sinks: Vec<SinkId>,
    stats: OpStats,
}

/// The prefix-sharing operator trie. See the module docs.
#[derive(Debug)]
pub struct OpDag<K> {
    /// Arena; freed slots are `None` and recycled via `free`.
    nodes: Vec<Option<DagNode<K>>>,
    free: Vec<usize>,
    /// Top-level nodes (consume the input stream directly).
    roots: Vec<usize>,
    /// Sinks of empty chains: they receive every input item verbatim.
    root_sinks: Vec<SinkId>,
    /// Each sink's node path from root to terminal (empty for root sinks).
    paths: BTreeMap<SinkId, Vec<usize>>,
    /// Per-depth scratch output buffers, reused across items.
    scratch: Vec<Emit>,
    /// Aggregated counters of pruned nodes: their work was executed, so it
    /// must not vanish from the books when the last sharer retires.
    retired: OpStats,
}

impl<K> Default for OpDag<K> {
    fn default() -> OpDag<K> {
        OpDag {
            nodes: Vec::new(),
            free: Vec::new(),
            roots: Vec::new(),
            root_sinks: Vec::new(),
            paths: BTreeMap::new(),
            scratch: Vec::new(),
            retired: OpStats {
                name: "retired",
                ..OpStats::default()
            },
        }
    }
}

impl<K> OpDag<K> {
    /// An empty DAG.
    pub fn new() -> OpDag<K> {
        OpDag::default()
    }

    fn node(&self, idx: usize) -> &DagNode<K> {
        self.nodes[idx].as_ref().expect("live DAG node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut DagNode<K> {
        self.nodes[idx].as_mut().expect("live DAG node")
    }

    fn alloc(&mut self, node: DagNode<K>) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Some(node);
                idx
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    /// Registers a chain under `sink`, merging its leading operators into
    /// existing nodes wherever `mergeable` allows. The boxed operators of
    /// merged prefix ops are dropped unused.
    ///
    /// # Panics
    /// Panics if `sink` is already registered.
    pub fn register<F>(
        &mut self,
        sink: SinkId,
        ops: Vec<(K, Box<dyn StreamOperator + Send>)>,
        mergeable: F,
    ) where
        F: Fn(&K, &K) -> bool,
    {
        assert!(
            !self.paths.contains_key(&sink),
            "sink {sink} registered twice"
        );
        let mut path = Vec::with_capacity(ops.len());
        self.extend_path(&mut path, ops.into_iter(), &mergeable, None);
        self.set_terminal(sink, &path);
    }

    /// Drops `sink`'s chain, pruning nodes it was the last sharer of.
    ///
    /// # Panics
    /// Panics if `sink` is not registered.
    pub fn retire(&mut self, sink: SinkId) {
        let path = self.paths.remove(&sink).expect("sink not registered");
        self.clear_terminal(sink, &path);
        self.release_suffix(&path, 0, None);
    }

    /// Replaces `sink`'s chain: the longest leading run of operators that
    /// `mergeable` matches against the old path keeps its existing nodes
    /// (and their state); only the diverging suffix is released and
    /// rebuilt. Registers from scratch when `sink` is unknown.
    pub fn reregister<F>(
        &mut self,
        sink: SinkId,
        ops: Vec<(K, Box<dyn StreamOperator + Send>)>,
        mergeable: F,
    ) where
        F: Fn(&K, &K) -> bool,
    {
        let Some(old_path) = self.paths.remove(&sink) else {
            self.register(sink, ops, mergeable);
            return;
        };
        self.clear_terminal(sink, &old_path);
        let mut keep = 0;
        while keep < old_path.len()
            && keep < ops.len()
            && mergeable(&self.node(old_path[keep]).key, &ops[keep].0)
        {
            keep += 1;
        }
        self.release_suffix(&old_path, keep, None);
        let mut path = old_path[..keep].to_vec();
        self.extend_path(&mut path, ops.into_iter().skip(keep), &mergeable, None);
        self.set_terminal(sink, &path);
    }

    /// [`Self::reregister`], but carrying open window state across the
    /// rebuild where doing so is exact: stateful operators pruned from the
    /// old suffix export their state ([`StreamOperator::export_state`]),
    /// and freshly built operators on the new suffix adopt the snapshots
    /// they can ([`StreamOperator::import_state`]) — moving O(open state)
    /// items instead of losing the windows and replaying O(window extent).
    ///
    /// State is only ever imported into nodes *created by this call*
    /// (merging into an existing shared node would inject foreign history
    /// into its other sharers' output). Snapshots nothing adopts are
    /// dropped, exactly as a plain [`Self::reregister`] would.
    pub fn reregister_migrating<F>(
        &mut self,
        sink: SinkId,
        ops: Vec<(K, Box<dyn StreamOperator + Send>)>,
        mergeable: F,
    ) -> MigrationReport
    where
        F: Fn(&K, &K) -> bool,
    {
        self.reregister_migrating_batch(vec![(sink, ops)], mergeable)
    }

    /// [`Self::reregister_migrating`] over several sinks as one atomic
    /// handoff: every old suffix is released (exporting state) *before* any
    /// new chain is built. This is what makes migration work for sinks that
    /// share stateful nodes — released one at a time, a shared node is
    /// still referenced by the not-yet-rebuilt sinks when the first one
    /// lets go, so its state would neither export nor survive.
    ///
    /// Exported snapshots are tagged with the releasing sink, and a fresh
    /// node only adopts snapshots from sinks whose new path runs through
    /// it. Two sinks with *equal specs but different upstream chains* can
    /// therefore never exchange state, while a node the rebuilt sinks merge
    /// back into adopts the one shared snapshot they previously co-owned.
    pub fn reregister_migrating_batch<F>(
        &mut self,
        batch: Vec<(SinkId, KeyedChain<K>)>,
        mergeable: F,
    ) -> MigrationReport
    where
        F: Fn(&K, &K) -> bool,
    {
        let mut pool: Vec<(SinkId, OpState)> = Vec::new();
        let mut staged = Vec::with_capacity(batch.len());
        // Phase 1: detach every sink and release its diverging suffix,
        // pooling whatever state the pruned operators export.
        for (sink, ops) in batch {
            let Some(old_path) = self.paths.remove(&sink) else {
                // Unknown sink: plain registration, never a migration
                // target (its fresh nodes stay off the import list, though
                // another batch member may still merge into them).
                staged.push((sink, Vec::new(), ops, 0, false));
                continue;
            };
            self.clear_terminal(sink, &old_path);
            let mut keep = 0;
            while keep < old_path.len()
                && keep < ops.len()
                && mergeable(&self.node(old_path[keep]).key, &ops[keep].0)
            {
                keep += 1;
            }
            let mut exported = Vec::new();
            self.release_suffix(&old_path, keep, Some(&mut exported));
            // Pruning collects bottom-up; match snapshots to the new path
            // top-down so chains with repeated specs pair up in stream
            // order.
            exported.reverse();
            pool.extend(exported.into_iter().map(|st| (sink, st)));
            staged.push((sink, old_path[..keep].to_vec(), ops, keep, true));
        }
        // Phase 2: rebuild every chain, recording freshly created nodes.
        let mut fresh = Vec::new();
        let mut migrating_sinks = Vec::new();
        for (sink, mut path, ops, keep, migrates) in staged {
            self.extend_path(
                &mut path,
                ops.into_iter().skip(keep),
                &mergeable,
                migrates.then_some(&mut fresh),
            );
            self.set_terminal(sink, &path);
            if migrates {
                migrating_sinks.push(sink);
            }
        }
        // Phase 3: first-fit import, gated on path ownership.
        let mut report = MigrationReport {
            ops_exported: pool.len() as u64,
            ..MigrationReport::default()
        };
        for idx in fresh {
            debug_assert_eq!(
                self.node(idx).stats.items_in,
                0,
                "state imported into a node that already processed items"
            );
            let owners: Vec<SinkId> = migrating_sinks
                .iter()
                .copied()
                .filter(|s| self.paths[s].contains(&idx))
                .collect();
            let node = self.node_mut(idx);
            let mut taken = None;
            for (pos, (tag, st)) in pool.iter().enumerate() {
                if !owners.contains(tag) {
                    continue;
                }
                if let Some(items) = node.op.import_state(st) {
                    taken = Some((pos, items));
                    break;
                }
            }
            if let Some((pos, items)) = taken {
                pool.remove(pos);
                report.ops_migrated += 1;
                report.items_moved += items;
            }
        }
        report.ops_dropped = pool.len() as u64;
        report
    }

    /// Walks/creates nodes for `ops` below the last node of `path`,
    /// appending the visited node indices to `path`. Indices of nodes
    /// *created* (not merged into) are also appended to `fresh` when given
    /// — only those may adopt migrated state.
    fn extend_path<F>(
        &mut self,
        path: &mut Vec<usize>,
        ops: impl Iterator<Item = (K, Box<dyn StreamOperator + Send>)>,
        mergeable: &F,
        mut fresh: Option<&mut Vec<usize>>,
    ) where
        F: Fn(&K, &K) -> bool,
    {
        let mut parent = path.last().copied();
        for (key, op) in ops {
            let siblings = match parent {
                None => &self.roots,
                Some(p) => &self.node(p).children,
            };
            let found = siblings
                .iter()
                .copied()
                .find(|&c| mergeable(&self.node(c).key, &key));
            let idx = match found {
                Some(c) => {
                    self.node_mut(c).sharers += 1;
                    c
                }
                None => {
                    let idx = self.alloc(DagNode {
                        load: op.base_load(),
                        stats: OpStats {
                            name: op.name(),
                            ..OpStats::default()
                        },
                        key,
                        op,
                        sharers: 1,
                        children: Vec::new(),
                        sinks: Vec::new(),
                    });
                    match parent {
                        None => self.roots.push(idx),
                        Some(p) => self.node_mut(p).children.push(idx),
                    }
                    if let Some(fresh) = fresh.as_deref_mut() {
                        fresh.push(idx);
                    }
                    idx
                }
            };
            path.push(idx);
            parent = Some(idx);
        }
    }

    fn set_terminal(&mut self, sink: SinkId, path: &[usize]) {
        match path.last() {
            None => self.root_sinks.push(sink),
            Some(&t) => self.node_mut(t).sinks.push(sink),
        }
        self.paths.insert(sink, path.to_vec());
    }

    fn clear_terminal(&mut self, sink: SinkId, path: &[usize]) {
        match path.last() {
            None => self.root_sinks.retain(|&s| s != sink),
            Some(&t) => self.node_mut(t).sinks.retain(|&s| s != sink),
        }
    }

    /// Decrements sharer counts on `path[from..]` and prunes the nodes
    /// that dropped to zero, bottom-up. Sharer counts never increase with
    /// depth, so pruning stops at the first still-shared node. When
    /// `exported` is given, pruned operators export their open window
    /// state into it (bottom-up order) instead of dropping it.
    fn release_suffix(
        &mut self,
        path: &[usize],
        from: usize,
        mut exported: Option<&mut Vec<OpState>>,
    ) {
        for &idx in &path[from..] {
            self.node_mut(idx).sharers -= 1;
        }
        for i in (from..path.len()).rev() {
            let idx = path[i];
            if self.node(idx).sharers > 0 {
                break;
            }
            debug_assert!(
                self.node(idx).children.is_empty() && self.node(idx).sinks.is_empty(),
                "pruned DAG node still referenced"
            );
            if let Some(pool) = exported.as_deref_mut() {
                if let Some(st) = self.node_mut(idx).op.export_state() {
                    pool.push(st);
                }
            }
            match i.checked_sub(1) {
                None => self.roots.retain(|&r| r != idx),
                Some(pi) => {
                    let p = path[pi];
                    self.node_mut(p).children.retain(|&c| c != idx);
                }
            }
            let stats = self.node(idx).stats.clone();
            self.retired.absorb(&stats);
            self.nodes[idx] = None;
            self.free.push(idx);
        }
    }

    /// Pushes one item through the DAG. Every (sink, output item) pair is
    /// reported through `out`; a sink's call sequence is byte-identical to
    /// what its chain would emit as a standalone pipeline.
    pub fn process_into(&mut self, item: &Node, out: &mut dyn FnMut(SinkId, &Node)) {
        for i in 0..self.root_sinks.len() {
            out(self.root_sinks[i], item);
        }
        for i in 0..self.roots.len() {
            let r = self.roots[i];
            self.run_node(r, std::slice::from_ref(item), 0, out);
        }
    }

    fn run_node(
        &mut self,
        idx: usize,
        inputs: &[Node],
        depth: usize,
        out: &mut dyn FnMut(SinkId, &Node),
    ) {
        if depth == self.scratch.len() {
            self.scratch.push(Emit::new());
        }
        let mut buf = std::mem::take(&mut self.scratch[depth]);
        debug_assert!(buf.is_empty());
        {
            let node = self.node_mut(idx);
            for item in inputs {
                node.stats.items_in += 1;
                node.stats.work += node.load;
                node.op.process_into(item, &mut buf);
            }
            node.stats.items_out += buf.len() as u64;
        }
        // Short-circuit on empty output, exactly like a pipeline stage.
        if !buf.is_empty() {
            for si in 0..self.node(idx).sinks.len() {
                let sink = self.node(idx).sinks[si];
                for item in buf.as_slice() {
                    out(sink, item);
                }
            }
            for ci in 0..self.node(idx).children.len() {
                let c = self.node(idx).children[ci];
                self.run_node(c, buf.as_slice(), depth + 1, out);
            }
        }
        buf.clear();
        self.scratch[depth] = buf;
    }

    /// End-of-stream flush: carried upstream items run through each node
    /// *before* the node drains its own buffered state, matching
    /// `Pipeline::flush_into` ordering per chain.
    pub fn flush_into(&mut self, out: &mut dyn FnMut(SinkId, &Node)) {
        for i in 0..self.roots.len() {
            let r = self.roots[i];
            self.flush_node(r, &[], 0, out);
        }
    }

    fn flush_node(
        &mut self,
        idx: usize,
        carried: &[Node],
        depth: usize,
        out: &mut dyn FnMut(SinkId, &Node),
    ) {
        if depth == self.scratch.len() {
            self.scratch.push(Emit::new());
        }
        let mut buf = std::mem::take(&mut self.scratch[depth]);
        debug_assert!(buf.is_empty());
        {
            let node = self.node_mut(idx);
            for item in carried {
                node.stats.items_in += 1;
                node.stats.work += node.load;
                node.op.process_into(item, &mut buf);
            }
            node.op.flush_into(&mut buf);
            node.stats.items_out += buf.len() as u64;
        }
        for si in 0..self.node(idx).sinks.len() {
            let sink = self.node(idx).sinks[si];
            for item in buf.as_slice() {
                out(sink, item);
            }
        }
        // No short-circuit here: children may hold buffered state of their
        // own that must drain even when this node flushed nothing.
        for ci in 0..self.node(idx).children.len() {
            let c = self.node(idx).children[ci];
            self.flush_node(c, buf.as_slice(), depth + 1, out);
        }
        buf.clear();
        self.scratch[depth] = buf;
    }

    /// Number of registered sinks.
    pub fn sink_count(&self) -> usize {
        self.paths.len()
    }

    /// `true` when no chain is registered.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// `true` when `sink` has a registered chain.
    pub fn contains(&self, sink: SinkId) -> bool {
        self.paths.contains_key(&sink)
    }

    /// Number of live operator nodes (shared prefixes count once).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Total accumulated work across live nodes — each shared node's work
    /// counted once, however many sinks ride it.
    pub fn total_work(&self) -> f64 {
        self.nodes.iter().flatten().map(|n| n.stats.work).sum()
    }

    /// Aggregated counters of every node pruned so far (named "retired").
    /// [`Self::node_stats`] reports live nodes only; without this, the
    /// counters of a fully-retired chain would silently disappear.
    pub fn retired_stats(&self) -> &OpStats {
        &self.retired
    }

    /// Per-node counters in deterministic DFS (pre-)order.
    pub fn node_stats(&self) -> Vec<DagNodeStats> {
        let mut acc = Vec::with_capacity(self.node_count());
        let mut stack: Vec<(usize, usize)> = self.roots.iter().rev().map(|&r| (r, 0)).collect();
        while let Some((idx, depth)) = stack.pop() {
            let n = self.node(idx);
            acc.push(DagNodeStats {
                depth,
                sharers: n.sharers,
                stats: n.stats.clone(),
            });
            for &c in n.children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Pipeline;

    /// Emits each input `n` times — stateless test operator.
    #[derive(Debug)]
    struct Echo(u32);

    impl StreamOperator for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn process_into(&mut self, item: &Node, out: &mut Emit) {
            for _ in 0..self.0 {
                out.push(item.clone());
            }
        }
        fn base_load(&self) -> f64 {
            1.0
        }
    }

    /// Buffers items, emitting them on flush — stateful test operator.
    #[derive(Debug, Default)]
    struct Hold(Vec<Node>);

    impl StreamOperator for Hold {
        fn name(&self) -> &'static str {
            "hold"
        }
        fn process_into(&mut self, item: &Node, _out: &mut Emit) {
            self.0.push(item.clone());
        }
        fn flush_into(&mut self, out: &mut Emit) {
            for item in self.0.drain(..) {
                out.push(item);
            }
        }
        fn base_load(&self) -> f64 {
            2.0
        }
    }

    fn op(key: &'static str) -> (&'static str, Box<dyn StreamOperator + Send>) {
        match key {
            "hold" => (key, Box::new(Hold::default())),
            "drop" => (key, Box::new(Echo(0))),
            "dup" => (key, Box::new(Echo(2))),
            _ => (key, Box::new(Echo(1))),
        }
    }

    fn chain(keys: &[&'static str]) -> Vec<(&'static str, Box<dyn StreamOperator + Send>)> {
        keys.iter().map(|&k| op(k)).collect()
    }

    fn eq(a: &&'static str, b: &&'static str) -> bool {
        a == b
    }

    fn collect(dag: &mut OpDag<&'static str>, items: &[Node]) -> BTreeMap<SinkId, Vec<Node>> {
        let mut out: BTreeMap<SinkId, Vec<Node>> = BTreeMap::new();
        for item in items {
            dag.process_into(item, &mut |s, n| out.entry(s).or_default().push(n.clone()));
        }
        dag.flush_into(&mut |s, n| out.entry(s).or_default().push(n.clone()));
        out
    }

    fn items(n: usize) -> Vec<Node> {
        (0..n).map(|i| Node::leaf("x", i.to_string())).collect()
    }

    #[test]
    fn shared_prefix_merges_into_one_node() {
        let mut dag = OpDag::new();
        dag.register(0, chain(&["a", "b"]), eq);
        dag.register(1, chain(&["a", "c"]), eq);
        dag.register(2, chain(&["a", "b"]), eq);
        // "a" once, "b" once (sinks 0 and 2 share it), "c" once.
        assert_eq!(dag.node_count(), 3);
        let stats = dag.node_stats();
        assert_eq!(stats[0].sharers, 3, "the 'a' prefix is shared by all");
        let out = collect(&mut dag, &items(4));
        assert_eq!(out[&0].len(), 4);
        assert_eq!(out[&0], out[&2]);
        assert_eq!(out[&1].len(), 4);
        // The shared "a" node ran each item once, not three times.
        assert_eq!(dag.node_stats()[0].stats.items_in, 4);
    }

    #[test]
    fn matches_standalone_pipelines() {
        let chains: Vec<Vec<&'static str>> = vec![
            vec![],
            vec!["dup"],
            vec!["dup", "hold"],
            vec!["dup", "drop", "dup"],
            vec!["hold", "dup"],
            vec!["dup", "hold"],
        ];
        let input = items(7);
        let mut dag = OpDag::new();
        for (sink, keys) in chains.iter().enumerate() {
            dag.register(sink, chain(keys), eq);
        }
        let fused = collect(&mut dag, &input);
        for (sink, keys) in chains.iter().enumerate() {
            let mut p = Pipeline::new();
            for &k in keys {
                p.push(op(k).1);
            }
            let mut expect = Vec::new();
            let mut sinkbuf = Emit::new();
            for item in &input {
                p.process_into(item, &mut sinkbuf);
            }
            p.flush_into(&mut sinkbuf);
            expect.extend(sinkbuf.into_vec());
            assert_eq!(
                fused.get(&sink).cloned().unwrap_or_default(),
                expect,
                "chain {keys:?} diverged from its standalone pipeline"
            );
        }
    }

    #[test]
    fn retire_prunes_exclusive_suffix_only() {
        let mut dag = OpDag::new();
        dag.register(0, chain(&["a", "b", "c"]), eq);
        dag.register(1, chain(&["a", "b", "d"]), eq);
        assert_eq!(dag.node_count(), 4);
        dag.retire(0);
        // "c" was exclusive to sink 0; "a"/"b" survive for sink 1.
        assert_eq!(dag.node_count(), 3);
        assert!(!dag.contains(0));
        let out = collect(&mut dag, &items(3));
        assert_eq!(out[&1].len(), 3);
        dag.retire(1);
        assert!(dag.is_empty());
        assert_eq!(dag.node_count(), 0);
    }

    #[test]
    fn retired_counters_survive_pruning() {
        let mut dag = OpDag::new();
        dag.register(0, chain(&["a", "b"]), eq);
        let _ = collect(&mut dag, &items(3));
        let live = dag.node_stats();
        let executed: f64 = live.iter().map(|s| s.stats.work).sum();
        let fed: u64 = live.iter().map(|s| s.stats.items_in).sum();
        assert!(executed > 0.0);
        dag.retire(0);
        assert_eq!(dag.node_count(), 0, "both nodes pruned");
        let retired = dag.retired_stats();
        assert_eq!(retired.name, "retired");
        assert_eq!(
            retired.work, executed,
            "pruned nodes' executed work must not vanish from the books"
        );
        assert_eq!(retired.items_in, fed);
    }

    #[test]
    fn reregister_keeps_prefix_state() {
        let mut dag = OpDag::new();
        dag.register(0, chain(&["hold", "a"]), eq);
        let mut sunk = Vec::new();
        for item in items(3) {
            dag.process_into(&item, &mut |_, n| sunk.push(n.clone()));
        }
        assert!(sunk.is_empty(), "hold buffers everything until flush");
        // Change only the suffix below the stateful prefix.
        dag.reregister(0, chain(&["hold", "dup"]), eq);
        let mut out = Vec::new();
        dag.flush_into(&mut |_, n| out.push(n.clone()));
        // The 3 held items survived the re-registration and now pass the
        // new "dup" suffix: 6 outputs. A full rebuild would emit 0.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn reregister_rebuilds_below_first_change() {
        let mut dag = OpDag::new();
        dag.register(0, chain(&["a", "hold"]), eq);
        for item in items(2) {
            dag.process_into(&item, &mut |_, _| {});
        }
        // The first operator changes: the whole chain (and its held state)
        // must be rebuilt — the stream content feeding "hold" changed.
        dag.reregister(0, chain(&["dup", "hold"]), eq);
        let mut out = Vec::new();
        dag.flush_into(&mut |_, n| out.push(n.clone()));
        assert!(out.is_empty(), "state below a changed operator is dropped");
        assert_eq!(dag.node_count(), 2);
    }

    #[test]
    fn work_counts_shared_nodes_once() {
        let input = items(10);
        let mut dag = OpDag::new();
        for sink in 0..4 {
            dag.register(sink, chain(&["a", "b"]), eq);
        }
        let _ = collect(&mut dag, &input);
        // 2 nodes × 10 items × load 1.0, regardless of 4 sinks.
        assert_eq!(dag.total_work(), 20.0);
    }

    #[test]
    fn empty_chain_is_identity_fanout() {
        let mut dag = OpDag::new();
        dag.register(7, Vec::new(), eq);
        dag.register(9, Vec::new(), eq);
        let input = items(2);
        let out = collect(&mut dag, &input);
        assert_eq!(out[&7], input);
        assert_eq!(out[&9], input);
        dag.retire(7);
        let out = collect(&mut dag, &input);
        assert!(!out.contains_key(&7));
        assert_eq!(out[&9], input);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_sink_rejected() {
        let mut dag = OpDag::new();
        dag.register(0, chain(&["a"]), eq);
        dag.register(0, chain(&["b"]), eq);
    }

    mod migrating {
        use super::*;
        use crate::aggregate::AggregateOp;
        use dss_predicate::PredicateGraph;
        use dss_properties::{AggOp, AggregationSpec, ResultFilter, WindowSpec};
        use dss_xml::Decimal;

        fn d(s: &str) -> Decimal {
            s.parse().unwrap()
        }

        fn agg_spec(size: &str, step: Option<&str>) -> AggregationSpec {
            AggregationSpec {
                op: AggOp::Sum,
                element: "en".parse().unwrap(),
                window: WindowSpec::diff("t".parse().unwrap(), d(size), step.map(d)).unwrap(),
                pre_selection: PredicateGraph::new(),
                result_filter: ResultFilter::none(),
            }
        }

        fn agg_op(
            key: &'static str,
            size: &str,
            step: Option<&str>,
        ) -> (&'static str, Box<dyn StreamOperator + Send>) {
            (key, Box::new(AggregateOp::new(agg_spec(size, step))))
        }

        fn photon(t: u32) -> Node {
            Node::elem(
                "photon",
                vec![
                    Node::leaf("t", t.to_string()),
                    Node::leaf("en", "1.0".to_string()),
                ],
            )
        }

        fn drain(dag: &mut OpDag<&'static str>, items: &[Node]) -> Vec<Node> {
            let mut out = Vec::new();
            for item in items {
                dag.process_into(item, &mut |_, n| out.push(n.clone()));
            }
            out
        }

        /// A widening child patch: the leading operator changes (keep = 0)
        /// but the windowed suffix keeps its exact spec, so its open
        /// windows migrate and the output equals an uninterrupted run.
        #[test]
        fn migrating_reregister_is_loss_free() {
            let early: Vec<Node> = (0..5).map(|i| photon(i * 7)).collect();
            let late: Vec<Node> = (5..10).map(|i| photon(i * 7)).collect();

            // Continuous reference: the same windowed chain, never rebuilt.
            let mut cont = OpDag::new();
            cont.register(0, vec![op("a"), agg_op("phi", "20", Some("10"))], eq);
            let mut expect = drain(&mut cont, &early);
            expect.extend(drain(&mut cont, &late));
            cont.flush_into(&mut |_, n| expect.push(n.clone()));

            let mut dag = OpDag::new();
            dag.register(0, vec![op("a"), agg_op("phi", "20", Some("10"))], eq);
            let mut got = drain(&mut dag, &early);
            // Leading operator changes (a → b): keep = 0, whole chain
            // rebuilt — but the Φ state is carried across.
            let report =
                dag.reregister_migrating(0, vec![op("b"), agg_op("phi", "20", Some("10"))], eq);
            assert_eq!(report.ops_exported, 1);
            assert_eq!(report.ops_migrated, 1);
            assert_eq!(report.ops_dropped, 0);
            assert!(report.items_moved > 0, "open windows moved");
            got.extend(drain(&mut dag, &late));
            dag.flush_into(&mut |_, n| got.push(n.clone()));
            // "a" and "b" are both Echo(1), so the stream content is
            // unchanged and a loss-free handoff reproduces the continuous
            // run byte-for-byte. A plain reregister drops the open windows.
            assert_eq!(got, expect);
        }

        #[test]
        fn plain_reregister_still_drops_state() {
            let early: Vec<Node> = (0..5).map(|i| photon(i * 7)).collect();
            let mut dag = OpDag::new();
            dag.register(0, vec![op("a"), agg_op("phi", "20", Some("10"))], eq);
            let with_state = drain(&mut dag, &early);
            assert!(!with_state.is_empty(), "sanity: windows closed pre-switch");
            dag.reregister(0, vec![op("b"), agg_op("phi", "20", Some("10"))], eq);
            let mut flushed = Vec::new();
            dag.flush_into(&mut |_, n| flushed.push(n.clone()));
            assert!(
                flushed.is_empty(),
                "the non-migrating path must keep dropping rebuilt state"
            );
        }

        #[test]
        fn step_coarsening_migrates_filtered_windows() {
            let early: Vec<Node> = (0..6).map(|i| photon(i * 6)).collect();
            let late: Vec<Node> = (6..12).map(|i| photon(i * 6)).collect();

            let mut cont = OpDag::new();
            cont.register(0, vec![agg_op("phi20", "20", Some("20"))], eq);
            let mut expect = drain(&mut cont, &early);
            expect.extend(drain(&mut cont, &late));
            cont.flush_into(&mut |_, n| expect.push(n.clone()));

            // Start with step 10, widen the step to 20 mid-stream. Windows
            // on the coarser grid survive; off-grid ones are discarded.
            let mut dag = OpDag::new();
            dag.register(0, vec![agg_op("phi10", "20", Some("10"))], eq);
            for item in &early {
                dag.process_into(item, &mut |_, _| {});
            }
            let report = dag.reregister_migrating(0, vec![agg_op("phi20", "20", Some("20"))], eq);
            assert_eq!(report.ops_migrated, 1);
            let mut got = drain(&mut dag, &late);
            dag.flush_into(&mut |_, n| got.push(n.clone()));
            // Only compare windows still open at the switch (start ≥ 20):
            // earlier ones closed pre-switch, where the fine chain also
            // emits off-grid starts by design.
            let tail = |v: &[Node]| -> Vec<Node> {
                v.iter()
                    .filter(|n| {
                        crate::AggItem::from_node(n)
                            .map(|a| a.start >= d("20"))
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect()
            };
            assert_eq!(tail(&got), tail(&expect));
        }

        #[test]
        fn incompatible_window_state_is_dropped() {
            let early: Vec<Node> = (0..5).map(|i| photon(i * 7)).collect();
            let mut dag = OpDag::new();
            dag.register(0, vec![agg_op("phi", "20", Some("10"))], eq);
            for item in &early {
                dag.process_into(item, &mut |_, _| {});
            }
            // Size coarsening is off the exact lattice: state must drop.
            let report = dag.reregister_migrating(0, vec![agg_op("phi40", "40", Some("10"))], eq);
            assert_eq!(report.ops_exported, 1);
            assert_eq!(report.ops_migrated, 0);
            assert_eq!(report.ops_dropped, 1);
        }

        #[test]
        fn migration_never_touches_shared_nodes() {
            let early: Vec<Node> = (0..5).map(|i| photon(i * 7)).collect();
            let mut dag = OpDag::new();
            dag.register(0, vec![op("a"), agg_op("phi", "20", Some("10"))], eq);
            dag.register(1, vec![op("b"), agg_op("phi", "20", Some("10"))], eq);
            for item in &early {
                dag.process_into(item, &mut |_, _| {});
            }
            // Sink 0 moves under the "b" prefix. The Φ there already has
            // sharers *and* processed items, so the exported state must
            // not be injected into it.
            let report =
                dag.reregister_migrating(0, vec![op("b"), agg_op("phi", "20", Some("10"))], eq);
            assert_eq!(report.ops_exported, 1);
            assert_eq!(report.ops_migrated, 0, "merged node must not adopt");
            assert_eq!(report.ops_dropped, 1);
        }

        /// Two sinks sharing one windowed node are rebuilt as a batch: the
        /// shared snapshot exports when the *last* sharer releases it and
        /// lands in the merged replacement node, so both outputs match a
        /// continuous run. (Rebuilt one at a time, the first rebuild finds
        /// the node still shared and the state never exports.)
        #[test]
        fn batch_migrates_state_shared_between_sinks() {
            let early: Vec<Node> = (0..5).map(|i| photon(i * 7)).collect();
            let late: Vec<Node> = (5..10).map(|i| photon(i * 7)).collect();
            let chain = |k| vec![op(k), agg_op("phi", "20", Some("10"))];

            let mut cont = OpDag::new();
            cont.register(0, chain("a"), eq);
            cont.register(1, chain("a"), eq);
            let mut expect: BTreeMap<SinkId, Vec<Node>> = BTreeMap::new();
            for item in early.iter().chain(&late) {
                cont.process_into(item, &mut |s, n| {
                    expect.entry(s).or_default().push(n.clone())
                });
            }
            cont.flush_into(&mut |s, n| expect.entry(s).or_default().push(n.clone()));

            let mut dag = OpDag::new();
            dag.register(0, chain("a"), eq);
            dag.register(1, chain("a"), eq);
            let mut got: BTreeMap<SinkId, Vec<Node>> = BTreeMap::new();
            for item in &early {
                dag.process_into(item, &mut |s, n| got.entry(s).or_default().push(n.clone()));
            }
            let report = dag.reregister_migrating_batch(vec![(0, chain("b")), (1, chain("b"))], eq);
            assert_eq!(report.ops_exported, 1, "one shared snapshot");
            assert_eq!(report.ops_migrated, 1);
            assert_eq!(report.ops_dropped, 0);
            assert!(report.items_moved > 0);
            for item in &late {
                dag.process_into(item, &mut |s, n| got.entry(s).or_default().push(n.clone()));
            }
            dag.flush_into(&mut |s, n| got.entry(s).or_default().push(n.clone()));
            assert_eq!(got, expect);
        }

        /// Ownership gating: two sinks with *equal specs* but separate
        /// nodes (different histories) rebuilt as one batch must never
        /// exchange state, even when first-fit pool order would pair them
        /// up wrong.
        #[test]
        fn batch_never_exchanges_state_across_sinks() {
            let early: Vec<Node> = (0..5).map(|i| photon(i * 7)).collect();
            let mid: Vec<Node> = (5..8).map(|i| photon(i * 7)).collect();
            let late: Vec<Node> = (8..12).map(|i| photon(i * 7)).collect();

            let mut cont = OpDag::new();
            cont.register(0, vec![op("a"), agg_op("phi", "20", Some("10"))], eq);
            for item in &early {
                cont.process_into(item, &mut |_, _| {});
            }
            cont.register(1, vec![op("c"), agg_op("phi", "20", Some("10"))], eq);
            let mut expect = Vec::new();
            let keep1 = |s: SinkId, n: &Node, out: &mut Vec<Node>| {
                if s == 1 {
                    out.push(n.clone());
                }
            };
            for item in mid.iter().chain(&late) {
                cont.process_into(item, &mut |s, n| keep1(s, n, &mut expect));
            }
            cont.flush_into(&mut |s, n| keep1(s, n, &mut expect));

            let mut dag = OpDag::new();
            dag.register(0, vec![op("a"), agg_op("phi", "20", Some("10"))], eq);
            for item in &early {
                dag.process_into(item, &mut |_, _| {});
            }
            dag.register(1, vec![op("c"), agg_op("phi", "20", Some("10"))], eq);
            let mut got = Vec::new();
            for item in &mid {
                dag.process_into(item, &mut |s, n| keep1(s, n, &mut got));
            }
            // Sink 0 drops its aggregation; sink 1 keeps its spec. Sink 0's
            // older snapshot sits first in the pool and is spec-compatible
            // with sink 1's fresh node — but it carries windows from before
            // sink 1 existed, so it must drop rather than leak across.
            let report = dag.reregister_migrating_batch(
                vec![
                    (0, vec![op("b")]),
                    (1, vec![op("d"), agg_op("phi", "20", Some("10"))]),
                ],
                eq,
            );
            assert_eq!(report.ops_exported, 2);
            assert_eq!(report.ops_migrated, 1, "sink 1 adopts only its own state");
            assert_eq!(report.ops_dropped, 1, "sink 0's orphaned snapshot drops");
            for item in &late {
                dag.process_into(item, &mut |s, n| keep1(s, n, &mut got));
            }
            dag.flush_into(&mut |s, n| keep1(s, n, &mut got));
            assert_eq!(got, expect);
        }

        #[cfg(debug_assertions)]
        #[test]
        #[should_panic(expected = "bad lattice step")]
        fn off_grid_migrated_start_fails_loudly() {
            use crate::migrate::OpState;
            use crate::AggItem;
            // A snapshot whose open-window start is off its own µ-grid —
            // the footgun a silent migration would turn into mis-tiled
            // windows. The import must debug-assert instead.
            let bad = OpState::Agg {
                spec: agg_spec("20", Some("10")),
                open: vec![(d("15"), AggItem::empty(d("15"), d("20")))],
                youngest_start: Some(d("15")),
                items_seen: 1,
            };
            let mut fresh = AggregateOp::new(agg_spec("20", Some("10")));
            let _ = fresh.import_state(&bad);
        }
    }
}
