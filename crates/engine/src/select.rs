//! The selection operator σ.

use dss_predicate::PredicateGraph;
use dss_xml::Node;

use crate::op::{Emit, StreamOperator};

/// Selection: passes items satisfying a conjunctive predicate.
#[derive(Debug)]
pub struct SelectOp {
    predicate: PredicateGraph,
}

impl SelectOp {
    /// Creates a selection from a predicate graph.
    pub fn new(predicate: PredicateGraph) -> SelectOp {
        SelectOp { predicate }
    }

    /// The predicate.
    pub fn predicate(&self) -> &PredicateGraph {
        &self.predicate
    }
}

impl StreamOperator for SelectOp {
    fn name(&self) -> &'static str {
        "σ"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        if self.predicate.evaluate(item) {
            // The sink owns what it receives, so a passing item is cloned
            // out of the caller's borrow; dropped items cost nothing.
            out.push(item.clone());
        }
    }

    fn base_load(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamOperatorExt;
    use dss_predicate::{Atom, CompOp};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn item(en: &str) -> Node {
        Node::elem("photon", vec![Node::leaf("en", en)])
    }

    #[test]
    fn filters_items() {
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        let mut op = SelectOp::new(g);
        assert_eq!(op.process_collect(&item("1.5")).len(), 1);
        assert_eq!(op.process_collect(&item("1.3")).len(), 1);
        assert!(op.process_collect(&item("1.2")).is_empty());
        assert!(op.process_collect(&Node::empty("photon")).is_empty());
        assert!(op.flush_collect().is_empty());
    }

    #[test]
    fn trivial_predicate_passes_all() {
        let mut op = SelectOp::new(PredicateGraph::new());
        assert_eq!(op.process_collect(&item("0")).len(), 1);
    }
}
