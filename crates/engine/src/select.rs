//! The selection operator σ.

use dss_predicate::PredicateGraph;
use dss_xml::Node;

use crate::op::StreamOperator;

/// Selection: passes items satisfying a conjunctive predicate.
#[derive(Debug)]
pub struct SelectOp {
    predicate: PredicateGraph,
}

impl SelectOp {
    /// Creates a selection from a predicate graph.
    pub fn new(predicate: PredicateGraph) -> SelectOp {
        SelectOp { predicate }
    }

    /// The predicate.
    pub fn predicate(&self) -> &PredicateGraph {
        &self.predicate
    }
}

impl StreamOperator for SelectOp {
    fn name(&self) -> &'static str {
        "σ"
    }

    fn process(&mut self, item: &Node) -> Vec<Node> {
        if self.predicate.evaluate(item) {
            vec![item.clone()]
        } else {
            Vec::new()
        }
    }

    fn base_load(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_predicate::{Atom, CompOp};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn item(en: &str) -> Node {
        Node::elem("photon", vec![Node::leaf("en", en)])
    }

    #[test]
    fn filters_items() {
        let g = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        let mut op = SelectOp::new(g);
        assert_eq!(op.process(&item("1.5")).len(), 1);
        assert_eq!(op.process(&item("1.3")).len(), 1);
        assert!(op.process(&item("1.2")).is_empty());
        assert!(op.process(&Node::empty("photon")).is_empty());
        assert!(op.flush().is_empty());
    }

    #[test]
    fn trivial_predicate_passes_all() {
        let mut op = SelectOp::new(PredicateGraph::new());
        assert_eq!(op.process(&item("0")).len(), 1);
    }
}
