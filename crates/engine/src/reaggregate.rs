//! The re-aggregation operator: computes a coarse window aggregate from the
//! shared partial results of a finer one (Figure 5 of the paper).
//!
//! Input items are [`AggItem`]s produced by an upstream [`AggregateOp`]
//! (possibly at another peer) with window spec `(Δ, µ)`. The operator
//! assembles each new window `[w, w + Δ')` (with `w` on the µ'-grid) from
//! the non-overlapping tiles `[w + jΔ, w + (j+1)Δ)`, `j = 0 … Δ'/Δ − 1`.
//! The shareability conditions `Δ' mod Δ = 0`, `Δ mod µ = 0`, and
//! `µ' mod µ = 0` guarantee these tiles exist in the reused stream (other
//! incoming partials are simply ignored, as the paper describes).
//!
//! Because upstream emits partials in ascending start order and skips empty
//! windows, a tile is treated as empty once any partial with a later start
//! has been seen.

use std::collections::BTreeMap;

use dss_properties::{AggregationSpec, WindowSpec};
use dss_xml::{Decimal, Node};

use crate::agg_item::AggItem;
use crate::aggregate::filter_accepts;
use crate::migrate::OpState;
use crate::op::{Emit, StreamOperator};
use crate::window_track::grid_floor;

/// Re-aggregation from shared fine partials to a coarser window spec.
#[derive(Debug)]
pub struct ReAggregateOp {
    /// Spec of the reused (incoming) aggregate stream.
    reused: AggregationSpec,
    /// Spec of the aggregate to produce.
    new: AggregationSpec,
    /// Buffered tiles by start (only starts on the Δ-tiling of some pending
    /// window are kept).
    tiles: BTreeMap<Decimal, AggItem>,
    /// Start of the oldest new window not yet finalized (on the µ'-grid).
    next_window: Option<Decimal>,
    /// Highest partial start seen (monotone).
    max_seen: Option<Decimal>,
}

impl ReAggregateOp {
    /// Creates the operator.
    ///
    /// # Panics
    /// Panics if the window specs are not shareable — the planner must only
    /// install re-aggregations that `MatchAggregations` approved.
    pub fn new(reused: AggregationSpec, new: AggregationSpec) -> ReAggregateOp {
        assert!(
            new.window.shareable_from(&reused.window),
            "re-aggregation requires shareable windows ({} from {})",
            new.window,
            reused.window,
        );
        ReAggregateOp {
            reused,
            new,
            tiles: BTreeMap::new(),
            next_window: None,
            max_seen: None,
        }
    }

    /// The produced aggregation spec.
    pub fn spec(&self) -> &AggregationSpec {
        &self.new
    }

    fn delta(&self) -> Decimal {
        self.reused.window.size()
    }

    fn delta_new(&self) -> Decimal {
        self.new.window.size()
    }

    fn mu_new(&self) -> Decimal {
        self.new.window.step()
    }

    /// `true` if `start` is a tile position of the window at `w`.
    fn is_tile_of(&self, start: Decimal, w: Decimal) -> bool {
        if start < w || start >= w + self.delta_new() {
            return false;
        }
        WindowSpec::is_multiple_of(start - w, self.delta())
    }

    /// Finalizes every pending window whose last tile is certainly
    /// available or empty: all tiles with start < `horizon` are final.
    fn finalize_ready(&mut self, horizon: Decimal, out: &mut Emit) {
        let Some(mut w) = self.next_window else {
            return;
        };
        // A window [w, w+Δ') is final once its last tile start (w+Δ'−Δ) is
        // strictly below the horizon.
        while w + self.delta_new() - self.delta() < horizon {
            self.finalize_window(w, out);
            w = w + self.mu_new();
            self.next_window = Some(w);
        }
        // Garbage-collect tiles no longer needed by any pending window.
        let keep_from = w;
        self.tiles.retain(|start, _| *start >= keep_from);
    }

    fn finalize_window(&mut self, w: Decimal, out: &mut Emit) {
        let mut merged = AggItem::empty(w, self.delta_new());
        let mut tile = w;
        while tile < w + self.delta_new() {
            if let Some(part) = self.tiles.get(&tile) {
                merged.merge(part);
            }
            tile = tile + self.delta();
        }
        if merged.count == 0 {
            return;
        }
        if filter_accepts(self.new.op, &merged, &self.new.result_filter) {
            out.push(merged.to_node());
        }
    }
}

impl StreamOperator for ReAggregateOp {
    fn name(&self) -> &'static str {
        "Φ↺"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        let Ok(partial) = AggItem::from_node(item) else {
            return;
        };
        let s = partial.start;
        self.max_seen = Some(match self.max_seen {
            Some(m) if m > s => m,
            _ => s,
        });
        if self.next_window.is_none() {
            // Oldest new window that can use the first partial as a tile:
            // w ≤ s ≤ w + Δ' − Δ, so the smallest µ'-grid value
            // ≥ s − Δ' + Δ. Windows before it have only empty tiles.
            let lo = s - self.delta_new() + self.delta();
            let mut w = grid_floor(lo, self.mu_new());
            if w < lo {
                w = w + self.mu_new();
            }
            // Window starts are clamped to the non-negative grid, matching
            // the direct aggregation operator.
            if w < Decimal::ZERO {
                w = Decimal::ZERO;
            }
            self.next_window = Some(w);
        }
        // Everything strictly below s is now final.
        self.finalize_ready(s, out);
        // Keep the partial if it tiles some pending (or future) window.
        if let Some(w0) = self.next_window {
            let mut w = w0;
            let mut needed = false;
            while w <= s {
                if self.is_tile_of(s, w) {
                    needed = true;
                    break;
                }
                w = w + self.mu_new();
            }
            if needed {
                self.tiles.insert(s, partial);
            }
        }
    }

    fn flush_into(&mut self, out: &mut Emit) {
        if let Some(max) = self.max_seen {
            // All tiles are final now; finalize every window that could be
            // non-empty (w ≤ max_seen). The horizon overshoots by design —
            // empty windows are filtered at emission.
            self.finalize_ready(max + self.delta_new() + self.delta(), out);
        }
    }

    fn base_load(&self) -> f64 {
        0.5
    }

    fn export_state(&mut self) -> Option<OpState> {
        if self.tiles.is_empty() && self.next_window.is_none() && self.max_seen.is_none() {
            return None;
        }
        Some(OpState::ReAgg {
            reused: self.reused.clone(),
            new: self.new.clone(),
            tiles: std::mem::take(&mut self.tiles).into_iter().collect(),
            next_window: self.next_window.take(),
            max_seen: self.max_seen.take(),
        })
    }

    fn import_state(&mut self, state: &OpState) -> Option<u64> {
        let OpState::ReAgg {
            reused,
            new,
            tiles,
            next_window,
            max_seen,
        } = state
        else {
            return None;
        };
        // Tile retention and finalization both follow the produced spec's
        // grid, so only an identical re-aggregation adopts exactly.
        if *reused != self.reused || *new != self.new {
            return None;
        }
        debug_assert!(
            self.tiles.is_empty() && self.next_window.is_none() && self.max_seen.is_none(),
            "state adopted into a non-fresh re-aggregation operator"
        );
        self.tiles = tiles.iter().cloned().collect();
        self.next_window = *next_window;
        self.max_seen = *max_seen;
        Some(self.tiles.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateOp;
    use crate::op::StreamOperatorExt;
    use dss_predicate::{CompOp, PredicateGraph};
    use dss_properties::{AggOp, ResultFilter};
    use dss_xml::Path;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn photon(t: &str, en: &str) -> Node {
        Node::elem(
            "photon",
            vec![Node::leaf("det_time", t), Node::leaf("en", en)],
        )
    }

    fn diff_spec(
        op: AggOp,
        size: &str,
        step: Option<&str>,
        filter: ResultFilter,
    ) -> AggregationSpec {
        AggregationSpec {
            op,
            element: p("en"),
            window: WindowSpec::diff(p("det_time"), d(size), step.map(d)).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: filter,
        }
    }

    /// Runs items through `fine` aggregation, feeds the partials into a
    /// re-aggregation to `coarse`, and also runs the same items directly
    /// through `coarse`; returns (shared, direct) results.
    fn shared_vs_direct(
        fine: AggregationSpec,
        coarse: AggregationSpec,
        items: &[(f64, f64)],
    ) -> (Vec<AggItem>, Vec<AggItem>) {
        let mut fine_op = AggregateOp::new(fine.clone());
        let mut re_op = ReAggregateOp::new(fine, coarse.clone());
        let mut direct_op = AggregateOp::new(coarse);

        let mut shared = Vec::new();
        let mut direct = Vec::new();
        for (t, en) in items {
            let item = photon(&format!("{t}"), &format!("{en}"));
            for partial in fine_op.process_collect(&item) {
                shared.extend(re_op.process_collect(&partial));
            }
            direct.extend(direct_op.process_collect(&item));
        }
        for partial in fine_op.flush_collect() {
            shared.extend(re_op.process_collect(&partial));
        }
        shared.extend(re_op.flush_collect());
        direct.extend(direct_op.flush_collect());

        let parse = |v: Vec<Node>| v.iter().map(|n| AggItem::from_node(n).unwrap()).collect();
        (parse(shared), parse(direct))
    }

    /// Figure 5: Query 4 (|diff 60 step 40|) assembled from Query 3
    /// (|diff 20 step 10|) equals computing Query 4 directly.
    #[test]
    fn figure5_shared_equals_direct() {
        let q3 = diff_spec(AggOp::Avg, "20", Some("10"), ResultFilter::none());
        let q4 = diff_spec(AggOp::Avg, "60", Some("40"), ResultFilter::none());
        let items: Vec<(f64, f64)> = (0..200)
            .map(|i| (i as f64 * 1.7 + 3.0, 1.0 + (i % 7) as f64 * 0.2))
            .collect();
        let (shared, direct) = shared_vs_direct(q3, q4, &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    fn shared_equals_direct_with_result_filter() {
        let q3 = diff_spec(AggOp::Avg, "20", Some("10"), ResultFilter::none());
        let q4 = diff_spec(
            AggOp::Avg,
            "60",
            Some("40"),
            ResultFilter::single(CompOp::Ge, d("1.3")),
        );
        let items: Vec<(f64, f64)> = (0..300)
            .map(|i| (i as f64 * 0.9, 1.0 + (i % 10) as f64 * 0.1))
            .collect();
        let (shared, direct) = shared_vs_direct(q3, q4, &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    fn tumbling_from_tumbling() {
        let fine = diff_spec(AggOp::Sum, "10", None, ResultFilter::none());
        let coarse = diff_spec(AggOp::Sum, "30", None, ResultFilter::none());
        let items: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0)).collect();
        let (shared, direct) = shared_vs_direct(fine, coarse, &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    fn min_max_reaggregation() {
        for op in [AggOp::Min, AggOp::Max, AggOp::Count, AggOp::Sum] {
            let fine = diff_spec(op, "5", None, ResultFilter::none());
            let coarse = diff_spec(op, "20", Some("10"), ResultFilter::none());
            let items: Vec<(f64, f64)> = (0..150)
                .map(|i| (i as f64 * 0.8, (i % 13) as f64 * 0.5))
                .collect();
            let (shared, direct) = shared_vs_direct(fine, coarse, &items);
            assert!(!direct.is_empty(), "{op}");
            assert_eq!(shared, direct, "{op}");
        }
    }

    #[test]
    fn data_not_starting_at_zero() {
        let fine = diff_spec(AggOp::Avg, "20", Some("10"), ResultFilter::none());
        let coarse = diff_spec(AggOp::Avg, "60", Some("40"), ResultFilter::none());
        // Data begins at t = 1234.5 — grid anchoring must keep shared and
        // direct aligned.
        let items: Vec<(f64, f64)> = (0..200)
            .map(|i| (1234.5 + i as f64 * 1.1, 1.0 + (i % 5) as f64 * 0.3))
            .collect();
        let (shared, direct) = shared_vs_direct(fine, coarse, &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    fn gaps_in_data() {
        let fine = diff_spec(AggOp::Sum, "10", None, ResultFilter::none());
        let coarse = diff_spec(AggOp::Sum, "40", None, ResultFilter::none());
        // Two bursts with a long silent gap between them.
        let mut items: Vec<(f64, f64)> = (0..30).map(|i| (i as f64, 1.0)).collect();
        items.extend((0..30).map(|i| (500.0 + i as f64, 2.0)));
        let (shared, direct) = shared_vs_direct(fine, coarse, &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    fn avg_partials_serve_sum_subscription() {
        // The paper's relaxation: avg is shipped as (sum, count), so its
        // partials can compute a sum aggregate.
        let fine = diff_spec(AggOp::Avg, "10", None, ResultFilter::none());
        let coarse_sum = diff_spec(AggOp::Sum, "20", None, ResultFilter::none());
        let items: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.5)).collect();
        let (shared, direct) = shared_vs_direct(fine, coarse_sum, &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    #[should_panic(expected = "shareable")]
    fn incompatible_windows_rejected() {
        let fine = diff_spec(AggOp::Sum, "20", Some("15"), ResultFilter::none());
        let coarse = diff_spec(AggOp::Sum, "60", None, ResultFilter::none());
        let _ = ReAggregateOp::new(fine, coarse);
    }

    #[test]
    fn non_agg_items_ignored() {
        let fine = diff_spec(AggOp::Sum, "10", None, ResultFilter::none());
        let coarse = diff_spec(AggOp::Sum, "20", None, ResultFilter::none());
        let mut op = ReAggregateOp::new(fine, coarse);
        assert!(op.process_collect(&photon("1", "1.0")).is_empty());
        assert!(op.flush_collect().is_empty());
    }
}
