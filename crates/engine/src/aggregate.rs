//! The window-based aggregation operator Φ.
//!
//! Windows are anchored on an *absolute grid*: a window with step µ and
//! size Δ starts at `k·µ` for integer `k` (possibly negative) and covers
//! reference values in `[k·µ, k·µ + Δ)`. For `count` windows the reference
//! value is the item's arrival index; for `diff` windows it is the value of
//! the ordered reference element (the stream must be sorted by it, as the
//! paper requires).
//!
//! Grid anchoring is what makes *sharing* work: two aggregates over the same
//! stream with compatible windows (`Δ' mod Δ = 0`, `Δ mod µ = 0`,
//! `µ' mod µ = 0`) automatically produce alignable windows regardless of
//! where the data happens to start, so the re-aggregation operator can tile
//! coarse windows from fine partials (Figure 5).
//!
//! Empty windows (no contributing values) are never emitted; consumers —
//! including the re-aggregation operator — treat a missing partial as empty
//! once a later partial has been seen (streams of partials are ordered by
//! window start).

use dss_properties::{AggOp, AggregationSpec, ResultFilter};
use dss_xml::{Decimal, Node};

use crate::agg_item::AggItem;
use crate::migrate::OpState;
use crate::op::{Emit, StreamOperator};
use crate::window_track::WindowTracker;

pub use crate::window_track::grid_floor;

/// Applies a result filter to a closed window under the given aggregate
/// operator. Empty windows fail every non-trivial filter (fail-closed);
/// `avg` filters are evaluated exactly via cross-multiplication.
pub fn filter_accepts(op: AggOp, item: &AggItem, filter: &ResultFilter) -> bool {
    if filter.is_trivial() {
        return true;
    }
    match op {
        AggOp::Avg => filter
            .conditions
            .iter()
            .all(|(cmp, c)| item.avg_compare(*cmp, *c)),
        _ => match item.final_value(op) {
            Some(v) => filter.accepts(v),
            None => false,
        },
    }
}

/// Window-based aggregation from raw stream items.
#[derive(Debug)]
pub struct AggregateOp {
    spec: AggregationSpec,
    tracker: WindowTracker<AggItem>,
    /// Reusable scratch for the matched element values of one item.
    values: Vec<Decimal>,
}

impl AggregateOp {
    /// Creates the operator. The spec's `pre_selection` is *not* applied
    /// here — a separate upstream [`SelectOp`](crate::select::SelectOp)
    /// does that, mirroring the operator chains recorded in properties.
    pub fn new(spec: AggregationSpec) -> AggregateOp {
        let tracker = WindowTracker::new(spec.window.clone());
        AggregateOp {
            spec,
            tracker,
            values: Vec::new(),
        }
    }

    /// The aggregation spec.
    pub fn spec(&self) -> &AggregationSpec {
        &self.spec
    }
}

/// Finalizes a closed window: patches its coordinates, drops empty windows,
/// applies the result filter, serializes. A free function (not a method) so
/// the tracker callbacks can borrow `spec` while the tracker is borrowed
/// mutably.
fn emit_window(spec: &AggregationSpec, start: Decimal, mut window: AggItem, out: &mut Emit) {
    if window.count == 0 {
        return; // empty windows are never emitted
    }
    window.start = start;
    window.size = spec.window.size();
    if filter_accepts(spec.op, &window, &spec.result_filter) {
        out.push(window.to_node());
    }
}

impl StreamOperator for AggregateOp {
    fn name(&self) -> &'static str {
        "Φ"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        let AggregateOp {
            spec,
            tracker,
            values,
        } = self;
        // Gather every matched element value into the reused scratch, then
        // fold them into the windows containing the item's reference value.
        values.clear();
        spec.element.visit(item, &mut |n| {
            if let Ok(v) = n.decimal_value() {
                values.push(v);
            }
        });
        tracker.observe(
            item,
            |acc, _| {
                for v in values.iter() {
                    acc.add_value(*v);
                }
            },
            |start, window| emit_window(spec, start, window, out),
        );
    }

    fn flush_into(&mut self, out: &mut Emit) {
        let AggregateOp { spec, tracker, .. } = self;
        tracker.flush(|start, window| emit_window(spec, start, window, out));
    }

    fn base_load(&self) -> f64 {
        2.0
    }

    fn export_state(&mut self) -> Option<OpState> {
        let (open, youngest_start, items_seen) = self.tracker.export_open();
        if open.is_empty() && youngest_start.is_none() && items_seen == 0 {
            return None;
        }
        Some(OpState::Agg {
            spec: self.spec.clone(),
            open,
            youngest_start,
            items_seen,
        })
    }

    fn import_state(&mut self, state: &OpState) -> Option<u64> {
        let OpState::Agg {
            spec,
            open,
            youngest_start,
            items_seen,
        } = state
        else {
            return None;
        };
        // Accumulation depends only on the window grid and the aggregated
        // element (op/filter/pre-selection shape emission, not state), so
        // equal element + adoptable window ⇒ exact.
        if spec.element != self.spec.element {
            return None;
        }
        self.tracker
            .adopt_open(&spec.window, open.clone(), *youngest_start, *items_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamOperatorExt;
    use dss_predicate::{CompOp, PredicateGraph};
    use dss_properties::WindowSpec;
    use dss_xml::Path;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn photon(t: &str, en: &str) -> Node {
        Node::elem(
            "photon",
            vec![Node::leaf("det_time", t), Node::leaf("en", en)],
        )
    }

    fn diff_spec(
        op: AggOp,
        size: &str,
        step: Option<&str>,
        filter: ResultFilter,
    ) -> AggregationSpec {
        AggregationSpec {
            op,
            element: p("en"),
            window: WindowSpec::diff(p("det_time"), d(size), step.map(d)).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: filter,
        }
    }

    fn count_spec(op: AggOp, size: &str, step: Option<&str>) -> AggregationSpec {
        AggregationSpec {
            op,
            element: p("en"),
            window: WindowSpec::count(d(size), step.map(d)).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::none(),
        }
    }

    fn run(op: &mut AggregateOp, items: &[(&str, &str)]) -> Vec<AggItem> {
        let mut out = Vec::new();
        for (t, en) in items {
            out.extend(op.process_collect(&photon(t, en)));
        }
        out.extend(op.flush_collect());
        out.iter().map(|n| AggItem::from_node(n).unwrap()).collect()
    }

    #[test]
    fn grid_floor_behaviour() {
        assert_eq!(grid_floor(d("35"), d("10")), d("30"));
        assert_eq!(grid_floor(d("30"), d("10")), d("30"));
        assert_eq!(grid_floor(d("-5"), d("10")), d("-10"));
        assert_eq!(grid_floor(d("7.5"), d("2.5")), d("7.5"));
        assert_eq!(grid_floor(d("7.4"), d("2.5")), d("5"));
        assert_eq!(grid_floor(d("0"), d("40")), d("0"));
    }

    #[test]
    fn tumbling_diff_window_sums() {
        // Window |det_time diff 10|: [0,10), [10,20), …
        let mut op = AggregateOp::new(diff_spec(AggOp::Sum, "10", None, ResultFilter::none()));
        let out = run(
            &mut op,
            &[
                ("1", "1.0"),
                ("5", "2.0"),
                ("12", "4.0"),
                ("15", "8.0"),
                ("23", "16.0"),
            ],
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].start, d("0"));
        assert_eq!(out[0].sum, Some(d("3")));
        assert_eq!(out[1].start, d("10"));
        assert_eq!(out[1].sum, Some(d("12")));
        assert_eq!(out[2].start, d("20"));
        assert_eq!(out[2].sum, Some(d("16")));
    }

    #[test]
    fn sliding_diff_window_overlaps() {
        // |diff 20 step 10| (Query 3's window): starts 0, 10, 20, …
        let mut op = AggregateOp::new(diff_spec(
            AggOp::Count,
            "20",
            Some("10"),
            ResultFilter::none(),
        ));
        let out = run(
            &mut op,
            &[("5", "1"), ("15", "1"), ("25", "1"), ("35", "1")],
        );
        // Windows: [0,20)→2, [10,30)→2, [20,40)→2, [30,50)→1.
        let starts: Vec<Decimal> = out.iter().map(|a| a.start).collect();
        assert_eq!(starts, vec![d("0"), d("10"), d("20"), d("30")]);
        let counts: Vec<u64> = out.iter().map(|a| a.count).collect();
        assert_eq!(counts, vec![2, 2, 2, 1]);
    }

    #[test]
    fn windows_align_to_absolute_grid_regardless_of_data_start() {
        // First item at t = 35 with |diff 20 step 10|: the first windows
        // containing it are [20,40) and [30,50) — grid-aligned, not
        // data-aligned.
        let mut op = AggregateOp::new(diff_spec(
            AggOp::Count,
            "20",
            Some("10"),
            ResultFilter::none(),
        ));
        let out = run(&mut op, &[("35", "1"), ("36", "1")]);
        let starts: Vec<Decimal> = out.iter().map(|a| a.start).collect();
        assert_eq!(starts, vec![d("20"), d("30")]);
        assert_eq!(out[0].count, 2);
    }

    #[test]
    fn empty_windows_not_emitted_across_gaps() {
        let mut op = AggregateOp::new(diff_spec(AggOp::Sum, "10", None, ResultFilter::none()));
        let out = run(&mut op, &[("5", "1.0"), ("95", "2.0")]);
        let starts: Vec<Decimal> = out.iter().map(|a| a.start).collect();
        assert_eq!(starts, vec![d("0"), d("90")]);
    }

    #[test]
    fn count_window_tumbling() {
        // |count 3|: windows over item indices [0,3), [3,6), …
        let mut op = AggregateOp::new(count_spec(AggOp::Sum, "3", None));
        let items: Vec<(String, String)> =
            (0..7).map(|i| (i.to_string(), "1.0".to_string())).collect();
        let refs: Vec<(&str, &str)> = items
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let out = run(&mut op, &refs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].count, 3);
        assert_eq!(out[1].count, 3);
        assert_eq!(out[2].count, 1); // flush of the open window
    }

    #[test]
    fn count_window_sliding() {
        // |count 20 step 10| from the paper's window example: the window
        // always contains 20 items, updated every 10.
        let mut op = AggregateOp::new(count_spec(AggOp::Count, "20", Some("10")));
        let items: Vec<(String, String)> = (0..40)
            .map(|i| (i.to_string(), "1.0".to_string()))
            .collect();
        let refs: Vec<(&str, &str)> = items
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let out = run(&mut op, &refs);
        // Complete windows at starts 0 and 10 and 20 (closed by items 20–39)
        // plus flush of [30,50) partial.
        let starts: Vec<Decimal> = out.iter().map(|a| a.start).collect();
        assert_eq!(starts, vec![d("0"), d("10"), d("20"), d("30")]);
        assert_eq!(out[0].count, 20);
        assert_eq!(out[1].count, 20);
        assert_eq!(out[3].count, 10);
    }

    #[test]
    fn avg_carried_as_sum_and_count() {
        let mut op = AggregateOp::new(diff_spec(AggOp::Avg, "10", None, ResultFilter::none()));
        let out = run(&mut op, &[("1", "1.0"), ("2", "2.0")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sum, Some(d("3")));
        assert_eq!(out[0].count, 2);
        assert_eq!(out[0].final_value(AggOp::Avg), Some(d("1.5")));
    }

    #[test]
    fn result_filter_drops_windows() {
        // Query 4 style: avg(en) >= 1.3.
        let filter = ResultFilter::single(CompOp::Ge, d("1.3"));
        let mut op = AggregateOp::new(diff_spec(AggOp::Avg, "10", None, filter));
        let out = run(
            &mut op,
            &[
                ("1", "1.0"),
                ("2", "1.2"),
                ("11", "1.4"),
                ("12", "1.6"),
                ("21", "1.3"),
            ],
        );
        // [0,10): avg 1.1 dropped; [10,20): avg 1.5 kept; [20,30): 1.3 kept.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].start, d("10"));
        assert_eq!(out[1].start, d("20"));
    }

    #[test]
    fn min_max_windows() {
        let mut op = AggregateOp::new(diff_spec(AggOp::Min, "10", None, ResultFilter::none()));
        let out = run(&mut op, &[("1", "3.0"), ("2", "1.5"), ("3", "2.0")]);
        assert_eq!(out[0].min, Some(d("1.5")));
        assert_eq!(out[0].max, Some(d("3")));
    }

    #[test]
    fn items_without_reference_value_are_skipped() {
        let mut op = AggregateOp::new(diff_spec(AggOp::Sum, "10", None, ResultFilter::none()));
        let mut out = Vec::new();
        out.extend(op.process_collect(&Node::elem("photon", vec![Node::leaf("en", "1.0")])));
        out.extend(op.process_collect(&photon("5", "2.0")));
        out.extend(op.flush_collect());
        let items: Vec<AggItem> = out.iter().map(|n| AggItem::from_node(n).unwrap()).collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].sum, Some(d("2")));
    }

    #[test]
    fn items_without_aggregated_element_do_not_count() {
        let mut op = AggregateOp::new(diff_spec(AggOp::Count, "10", None, ResultFilter::none()));
        let mut out = Vec::new();
        out.extend(op.process_collect(&Node::elem("photon", vec![Node::leaf("det_time", "1")])));
        out.extend(op.process_collect(&photon("2", "1.0")));
        out.extend(op.flush_collect());
        let items: Vec<AggItem> = out.iter().map(|n| AggItem::from_node(n).unwrap()).collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].count, 1);
    }

    #[test]
    fn fractional_diff_windows() {
        let mut op = AggregateOp::new(diff_spec(AggOp::Sum, "0.5", None, ResultFilter::none()));
        let out = run(&mut op, &[("0.1", "1.0"), ("0.4", "1.0"), ("0.6", "1.0")]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].start, d("0"));
        assert_eq!(out[0].sum, Some(d("2")));
        assert_eq!(out[1].start, d("0.5"));
    }
}
