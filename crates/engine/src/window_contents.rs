//! Window-contents output: queries returning the raw contents of data
//! windows (`for $w in … |window| return <wnd> { $w } </wnd>`).
//!
//! This is the cost model's third result class ("For queries returning the
//! contents of data windows, the average size of a data window needs to be
//! determined"). Window contents compose exactly like distributive
//! aggregates: a coarse window's contents are the concatenation of its
//! non-overlapping tiles, so the same three shareability conditions apply
//! and a [`ReWindowOp`] can assemble coarser windows from a shared
//! finer-windowed stream.

use std::collections::BTreeMap;

use dss_properties::{WindowOutputSpec, WindowSpec};
use dss_xml::{Decimal, Node, XmlError};

use crate::migrate::OpState;
use crate::op::{Emit, StreamOperator};
use crate::window_track::{grid_floor, WindowTracker};

/// One window's contents, as shipped between peers:
///
/// ```xml
/// <window>
///   <start>40</start><size>60</size>
///   <items> …stream items… </items>
/// </window>
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowItem {
    /// Window start (reference value / arrival index).
    pub start: Decimal,
    /// Window size Δ.
    pub size: Decimal,
    /// The contained stream items, in arrival order.
    pub items: Vec<Node>,
}

impl WindowItem {
    /// An empty window `[start, start + size)`.
    pub fn empty(start: Decimal, size: Decimal) -> WindowItem {
        WindowItem {
            start,
            size,
            items: Vec::new(),
        }
    }

    /// Appends an adjacent tile's contents (ascending-order composition).
    /// Clones are required: the tile stays buffered for the other windows
    /// it still tiles.
    pub fn merge(&mut self, other: &WindowItem) {
        self.items.extend(other.items.iter().cloned());
    }

    /// Serializes the window as a stream item.
    pub fn to_node(&self) -> Node {
        WindowItem {
            start: self.start,
            size: self.size,
            items: self.items.clone(),
        }
        .into_node()
    }

    /// Serializes the window, consuming it — the contained items move into
    /// the produced node instead of being cloned.
    pub fn into_node(self) -> Node {
        Node::elem(
            "window",
            vec![
                Node::decimal_leaf("start", self.start),
                Node::decimal_leaf("size", self.size),
                Node::elem("items", self.items),
            ],
        )
    }

    /// Parses a window item back.
    pub fn from_node(node: &Node) -> Result<WindowItem, XmlError> {
        let field = |name: &str| -> Result<Decimal, XmlError> {
            node.child(name)
                .ok_or_else(|| XmlError::ValueParse {
                    value: format!("<window> missing <{name}>"),
                    wanted: "window item",
                })?
                .decimal_value()
        };
        let items = node
            .child("items")
            .ok_or_else(|| XmlError::ValueParse {
                value: "<window> missing <items>".into(),
                wanted: "window item",
            })?
            .children()
            .to_vec();
        Ok(WindowItem {
            start: field("start")?,
            size: field("size")?,
            items,
        })
    }

    /// `true` if `node` looks like a window item.
    pub fn is_window_node(node: &Node) -> bool {
        node.name() == "window" && node.child("start").is_some() && node.child("items").is_some()
    }
}

/// Produces window-contents items from raw stream items.
#[derive(Debug)]
pub struct WindowContentsOp {
    spec: WindowOutputSpec,
    tracker: WindowTracker<Vec<Node>>,
}

impl WindowContentsOp {
    /// Creates the operator. Like aggregation, the spec's `pre_selection`
    /// runs as a separate upstream selection operator.
    pub fn new(spec: WindowOutputSpec) -> WindowContentsOp {
        let tracker = WindowTracker::new(spec.window.clone());
        WindowContentsOp { spec, tracker }
    }

    /// The window-output spec.
    pub fn spec(&self) -> &WindowOutputSpec {
        &self.spec
    }
}

/// Finalizes a closed window. A free function so the tracker callbacks can
/// borrow `spec` while the tracker is borrowed mutably.
fn emit_contents(spec: &WindowOutputSpec, start: Decimal, items: Vec<Node>, out: &mut Emit) {
    if items.is_empty() {
        return; // empty windows are never emitted (as with aggregates)
    }
    out.push(
        WindowItem {
            start,
            size: spec.window.size(),
            items,
        }
        .into_node(),
    );
}

impl StreamOperator for WindowContentsOp {
    fn name(&self) -> &'static str {
        "ω"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        let WindowContentsOp { spec, tracker } = self;
        tracker.observe(
            item,
            // The window accumulator owns its contents, so each covered
            // window stores its own clone of the item.
            |acc, _| acc.push(item.clone()),
            |start, items| emit_contents(spec, start, items, out),
        );
    }

    fn flush_into(&mut self, out: &mut Emit) {
        let WindowContentsOp { spec, tracker } = self;
        tracker.flush(|start, items| emit_contents(spec, start, items, out));
    }

    fn base_load(&self) -> f64 {
        1.5
    }

    fn export_state(&mut self) -> Option<OpState> {
        let (open, youngest_start, items_seen) = self.tracker.export_open();
        if open.is_empty() && youngest_start.is_none() && items_seen == 0 {
            return None;
        }
        Some(OpState::Window {
            spec: self.spec.clone(),
            open,
            youngest_start,
            items_seen,
        })
    }

    fn import_state(&mut self, state: &OpState) -> Option<u64> {
        let OpState::Window {
            spec,
            open,
            youngest_start,
            items_seen,
        } = state
        else {
            return None;
        };
        self.tracker
            .adopt_open(&spec.window, open.clone(), *youngest_start, *items_seen)
    }
}

/// Re-windowing: assembles coarser window contents from a shared
/// finer-windowed stream, mirroring [`crate::reaggregate::ReAggregateOp`].
#[derive(Debug)]
pub struct ReWindowOp {
    reused: WindowOutputSpec,
    new: WindowOutputSpec,
    /// Buffered tiles by start.
    tiles: BTreeMap<Decimal, WindowItem>,
    /// Start of the oldest new window not yet finalized (µ'-grid).
    next_window: Option<Decimal>,
    /// Highest tile start seen (monotone).
    max_seen: Option<Decimal>,
}

impl ReWindowOp {
    /// Creates the operator.
    ///
    /// # Panics
    /// Panics if the windows are not shareable.
    pub fn new(reused: WindowOutputSpec, new: WindowOutputSpec) -> ReWindowOp {
        assert!(
            new.window.shareable_from(&reused.window),
            "re-windowing requires shareable windows ({} from {})",
            new.window,
            reused.window,
        );
        ReWindowOp {
            reused,
            new,
            tiles: BTreeMap::new(),
            next_window: None,
            max_seen: None,
        }
    }

    fn delta(&self) -> Decimal {
        self.reused.window.size()
    }

    fn delta_new(&self) -> Decimal {
        self.new.window.size()
    }

    fn mu_new(&self) -> Decimal {
        self.new.window.step()
    }

    fn is_tile_of(&self, start: Decimal, w: Decimal) -> bool {
        if start < w || start >= w + self.delta_new() {
            return false;
        }
        WindowSpec::is_multiple_of(start - w, self.delta())
    }

    fn finalize_ready(&mut self, horizon: Decimal, out: &mut Emit) {
        let Some(mut w) = self.next_window else {
            return;
        };
        while w + self.delta_new() - self.delta() < horizon {
            self.finalize_window(w, out);
            w = w + self.mu_new();
            self.next_window = Some(w);
        }
        let keep_from = w;
        self.tiles.retain(|start, _| *start >= keep_from);
    }

    fn finalize_window(&mut self, w: Decimal, out: &mut Emit) {
        let mut merged = WindowItem::empty(w, self.delta_new());
        let mut tile = w;
        while tile < w + self.delta_new() {
            if let Some(part) = self.tiles.get(&tile) {
                merged.merge(part);
            }
            tile = tile + self.delta();
        }
        if !merged.items.is_empty() {
            out.push(merged.into_node());
        }
    }
}

impl StreamOperator for ReWindowOp {
    fn name(&self) -> &'static str {
        "ω↺"
    }

    fn process_into(&mut self, item: &Node, out: &mut Emit) {
        let Ok(tile) = WindowItem::from_node(item) else {
            return;
        };
        let s = tile.start;
        self.max_seen = Some(match self.max_seen {
            Some(m) if m > s => m,
            _ => s,
        });
        if self.next_window.is_none() {
            let lo = s - self.delta_new() + self.delta();
            let mut w = grid_floor(lo, self.mu_new());
            if w < lo {
                w = w + self.mu_new();
            }
            if w < Decimal::ZERO {
                w = Decimal::ZERO;
            }
            self.next_window = Some(w);
        }
        self.finalize_ready(s, out);
        if let Some(w0) = self.next_window {
            let mut w = w0;
            while w <= s {
                if self.is_tile_of(s, w) {
                    self.tiles.insert(s, tile);
                    break;
                }
                w = w + self.mu_new();
            }
        }
    }

    fn flush_into(&mut self, out: &mut Emit) {
        if let Some(max) = self.max_seen {
            self.finalize_ready(max + self.delta_new() + self.delta(), out);
        }
    }

    fn base_load(&self) -> f64 {
        0.7
    }

    fn export_state(&mut self) -> Option<OpState> {
        if self.tiles.is_empty() && self.next_window.is_none() && self.max_seen.is_none() {
            return None;
        }
        Some(OpState::ReWindow {
            reused: self.reused.clone(),
            new: self.new.clone(),
            tiles: std::mem::take(&mut self.tiles).into_iter().collect(),
            next_window: self.next_window.take(),
            max_seen: self.max_seen.take(),
        })
    }

    fn import_state(&mut self, state: &OpState) -> Option<u64> {
        let OpState::ReWindow {
            reused,
            new,
            tiles,
            next_window,
            max_seen,
        } = state
        else {
            return None;
        };
        // Tile retention and finalization both follow the produced spec's
        // grid, so only an identical re-windowing adopts exactly.
        if *reused != self.reused || *new != self.new {
            return None;
        }
        debug_assert!(
            self.tiles.is_empty() && self.next_window.is_none() && self.max_seen.is_none(),
            "state adopted into a non-fresh re-windowing operator"
        );
        self.tiles = tiles.iter().cloned().collect();
        self.next_window = *next_window;
        self.max_seen = *max_seen;
        Some(self.tiles.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamOperatorExt;
    use dss_predicate::PredicateGraph;
    use dss_xml::Path;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn spec(size: &str, step: Option<&str>) -> WindowOutputSpec {
        WindowOutputSpec {
            window: WindowSpec::diff("t".parse::<Path>().unwrap(), d(size), step.map(d)).unwrap(),
            pre_selection: PredicateGraph::new(),
        }
    }

    fn item(t: u32, v: u32) -> Node {
        Node::elem(
            "i",
            vec![
                Node::leaf("t", t.to_string()),
                Node::leaf("v", v.to_string()),
            ],
        )
    }

    fn run_contents(spec: WindowOutputSpec, items: &[Node]) -> Vec<WindowItem> {
        let mut op = WindowContentsOp::new(spec);
        let mut out = Vec::new();
        for i in items {
            out.extend(op.process_collect(i));
        }
        out.extend(op.flush_collect());
        out.iter()
            .map(|n| WindowItem::from_node(n).unwrap())
            .collect()
    }

    #[test]
    fn window_item_round_trip() {
        let w = WindowItem {
            start: d("40"),
            size: d("60"),
            items: vec![item(41, 1), item(55, 2)],
        };
        let n = w.to_node();
        assert!(WindowItem::is_window_node(&n));
        assert_eq!(WindowItem::from_node(&n).unwrap(), w);
        assert!(WindowItem::from_node(&Node::empty("window")).is_err());
    }

    #[test]
    fn contents_windows_partition_items() {
        let items: Vec<Node> = (0..10).map(|i| item(i * 5, i)).collect();
        let windows = run_contents(spec("10", None), &items);
        // Tumbling [0,10): t ∈ {0,5}; [10,20): {10,15}; … 5 windows.
        assert_eq!(windows.len(), 5);
        assert!(windows.iter().all(|w| w.items.len() == 2));
        assert_eq!(windows[0].items, vec![item(0, 0), item(5, 1)]);
    }

    #[test]
    fn sliding_contents_overlap() {
        let items: Vec<Node> = (0..4).map(|i| item(i * 10 + 5, i)).collect();
        let windows = run_contents(spec("20", Some("10")), &items);
        // Windows [0,20), [10,30), [20,40), [30,50).
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].items.len(), 2);
        assert_eq!(windows[1].items, vec![item(15, 1), item(25, 2)]);
    }

    #[test]
    fn empty_windows_not_emitted() {
        let items = vec![item(5, 0), item(95, 1)];
        let windows = run_contents(spec("10", None), &items);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start, d("0"));
        assert_eq!(windows[1].start, d("90"));
    }

    fn shared_vs_direct(
        fine: WindowOutputSpec,
        coarse: WindowOutputSpec,
        items: &[Node],
    ) -> (Vec<WindowItem>, Vec<WindowItem>) {
        let direct = run_contents(coarse.clone(), items);
        let mut fine_op = WindowContentsOp::new(fine.clone());
        let mut re_op = ReWindowOp::new(fine, coarse);
        let mut shared = Vec::new();
        for i in items {
            for tile in fine_op.process_collect(i) {
                shared.extend(re_op.process_collect(&tile));
            }
        }
        for tile in fine_op.flush_collect() {
            shared.extend(re_op.process_collect(&tile));
        }
        shared.extend(re_op.flush_collect());
        (
            shared
                .iter()
                .map(|n| WindowItem::from_node(n).unwrap())
                .collect(),
            direct,
        )
    }

    #[test]
    fn rewindow_equals_direct() {
        let items: Vec<Node> = (0..120).map(|i| item(i * 3 + 1, i)).collect();
        let (shared, direct) =
            shared_vs_direct(spec("20", Some("10")), spec("60", Some("40")), &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    fn rewindow_with_data_gaps() {
        let mut items: Vec<Node> = (0..20).map(|i| item(i, i)).collect();
        items.extend((0..20).map(|i| item(700 + i, i)));
        let (shared, direct) = shared_vs_direct(spec("10", None), spec("40", None), &items);
        assert!(!direct.is_empty());
        assert_eq!(shared, direct);
    }

    #[test]
    #[should_panic(expected = "shareable")]
    fn rewindow_rejects_incompatible() {
        let _ = ReWindowOp::new(spec("20", Some("15")), spec("60", None));
    }

    #[test]
    fn rewindow_ignores_non_window_items() {
        let mut op = ReWindowOp::new(spec("10", None), spec("20", None));
        assert!(op.process_collect(&item(1, 1)).is_empty());
        assert!(op.flush_collect().is_empty());
    }
}
