//! The wire format of window-aggregate values.
//!
//! Following Section 3.3, `avg` aggregates are internally represented — and
//! actually transmitted in the super-peer network — by their `sum` and
//! `count` values; the final `sum/count` is computed only at the subscriber's
//! super-peer. We generalize this: every aggregate item carries its window
//! coordinates (`start`, `size` — enabling window composition when sharing)
//! plus the partial values needed to merge it into coarser windows.

use dss_properties::AggOp;
use dss_xml::{Decimal, Node, XmlError};

/// One window-aggregate partial result, as shipped between peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggItem {
    /// Window start (reference value for `diff` windows, item index for
    /// `count` windows).
    pub start: Decimal,
    /// Window size Δ.
    pub size: Decimal,
    /// Number of items that fell into the window.
    pub count: u64,
    /// Sum of the aggregated element's values (present for sum/avg).
    pub sum: Option<Decimal>,
    /// Minimum (present for min).
    pub min: Option<Decimal>,
    /// Maximum (present for max).
    pub max: Option<Decimal>,
}

impl Default for AggItem {
    /// A coordinate-less empty partial; the window tracker patches
    /// `start`/`size` at emission.
    fn default() -> AggItem {
        AggItem::empty(Decimal::ZERO, Decimal::ZERO)
    }
}

impl AggItem {
    /// An empty partial for a window `[start, start + size)`.
    pub fn empty(start: Decimal, size: Decimal) -> AggItem {
        AggItem {
            start,
            size,
            count: 0,
            sum: None,
            min: None,
            max: None,
        }
    }

    /// Folds one value into the partial.
    pub fn add_value(&mut self, v: Decimal) {
        self.count += 1;
        self.sum = Some(match self.sum {
            Some(s) => s + v,
            None => v,
        });
        self.min = Some(match self.min {
            Some(m) => m.min(v),
            None => v,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(v),
            None => v,
        });
    }

    /// Merges an adjacent/contained partial into `self` (window
    /// composition for sharing; Figure 5). Window coordinates of `self` are
    /// kept.
    pub fn merge(&mut self, other: &AggItem) {
        self.count += other.count;
        self.sum = match (self.sum, other.sum) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// The final aggregate value under `op`, if defined for this partial.
    /// `avg` is *not* divided here — use [`avg_value`](Self::avg_value) —
    /// because `sum/count` may not terminate in decimal; filters use exact
    /// cross-multiplied comparisons instead.
    pub fn final_value(&self, op: AggOp) -> Option<Decimal> {
        match op {
            AggOp::Count => Some(Decimal::from_int(self.count as i64)),
            AggOp::Sum => self.sum.or(Some(Decimal::ZERO)),
            AggOp::Min => self.min,
            AggOp::Max => self.max,
            AggOp::Avg => self.avg_value(6),
        }
    }

    /// `sum/count` rounded (half away from zero) to `scale` decimal
    /// places, computed exactly in integer arithmetic; `None` for an empty
    /// window or when the intermediate scaling overflows.
    pub fn avg_value(&self, scale: u32) -> Option<Decimal> {
        let sum = self.sum?;
        if self.count == 0 {
            return None;
        }
        let target = scale.max(sum.scale());
        // numerator = sum at `target+…` precision; divide by count with
        // rounding. Work at one extra digit for the rounding step.
        let extra = (target + 1).min(dss_xml::decimal::MAX_SCALE);
        let numerator = sum
            .units()
            .checked_mul(10i128.checked_pow(extra - sum.scale())?)?;
        let q = numerator / self.count as i128;
        // Round the last digit away from zero.
        let rounded = if q >= 0 { (q + 5) / 10 } else { (q - 5) / 10 };
        let value = Decimal::new(rounded, extra - 1);
        // Reduce to the requested display scale if coarser.
        if value.scale() <= scale {
            Some(value)
        } else {
            // Re-round to `scale` digits.
            let u = value.units();
            let div = 10i128.pow(value.scale() - scale);
            let half = div / 2;
            let r = if u >= 0 {
                (u + half) / div
            } else {
                (u - half) / div
            };
            Some(Decimal::new(r, scale))
        }
    }

    /// Exact comparison `avg θ c` evaluated as `sum θ c·count` (count > 0),
    /// avoiding any division. Falls back to `false` on empty windows.
    pub fn avg_compare(&self, op: dss_predicate::CompOp, c: Decimal) -> bool {
        let Some(sum) = self.sum else {
            return false;
        };
        if self.count == 0 {
            return false;
        }
        // c·count, exactly; an overflowing product means the comparison is
        // out of any realistic domain — fail closed.
        let Some(units) = c.units().checked_mul(self.count as i128) else {
            return false;
        };
        op.evaluate(sum, Decimal::new(units, c.scale()))
    }

    /// Serializes the partial as an XML stream item.
    pub fn to_node(&self) -> Node {
        let mut children = vec![
            Node::decimal_leaf("start", self.start),
            Node::decimal_leaf("size", self.size),
            Node::leaf("count", self.count.to_string()),
        ];
        if let Some(s) = self.sum {
            children.push(Node::decimal_leaf("sum", s));
        }
        if let Some(m) = self.min {
            children.push(Node::decimal_leaf("min", m));
        }
        if let Some(m) = self.max {
            children.push(Node::decimal_leaf("max", m));
        }
        Node::elem("agg", children)
    }

    /// Parses a partial from its XML item form.
    pub fn from_node(node: &Node) -> Result<AggItem, XmlError> {
        let get = |name: &str| -> Result<Decimal, XmlError> {
            node.child(name)
                .ok_or_else(|| XmlError::ValueParse {
                    value: format!("<agg> missing <{name}>"),
                    wanted: "agg item",
                })?
                .decimal_value()
        };
        let opt = |name: &str| -> Result<Option<Decimal>, XmlError> {
            node.child(name).map(|n| n.decimal_value()).transpose()
        };
        let count_dec = get("count")?;
        let count: u64 = if count_dec.is_integer() {
            count_dec
                .units()
                .try_into()
                .map_err(|_| XmlError::ValueParse {
                    value: count_dec.to_string(),
                    wanted: "count within u64 range",
                })?
        } else {
            return Err(XmlError::ValueParse {
                value: count_dec.to_string(),
                wanted: "non-negative integer count",
            });
        };
        Ok(AggItem {
            start: get("start")?,
            size: get("size")?,
            count,
            sum: opt("sum")?,
            min: opt("min")?,
            max: opt("max")?,
        })
    }

    /// `true` if `node` looks like an aggregate item.
    pub fn is_agg_node(node: &Node) -> bool {
        node.name() == "agg" && node.child("start").is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_predicate::CompOp;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn add_values_and_final() {
        let mut a = AggItem::empty(d("0"), d("20"));
        for v in ["1.0", "2.0", "3.0"] {
            a.add_value(d(v));
        }
        assert_eq!(a.count, 3);
        assert_eq!(a.final_value(AggOp::Sum), Some(d("6")));
        assert_eq!(a.final_value(AggOp::Count), Some(d("3")));
        assert_eq!(a.final_value(AggOp::Min), Some(d("1")));
        assert_eq!(a.final_value(AggOp::Max), Some(d("3")));
        assert_eq!(a.final_value(AggOp::Avg), Some(d("2")));
    }

    #[test]
    fn empty_window_finals() {
        let a = AggItem::empty(d("0"), d("20"));
        assert_eq!(a.final_value(AggOp::Count), Some(d("0")));
        assert_eq!(a.final_value(AggOp::Sum), Some(d("0")));
        assert_eq!(a.final_value(AggOp::Min), None);
        assert_eq!(a.final_value(AggOp::Avg), None);
    }

    #[test]
    fn merge_combines_partials() {
        let mut a = AggItem::empty(d("0"), d("20"));
        a.add_value(d("1.0"));
        a.add_value(d("5.0"));
        let mut b = AggItem::empty(d("20"), d("20"));
        b.add_value(d("3.0"));
        let mut merged = AggItem::empty(d("0"), d("40"));
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, Some(d("9")));
        assert_eq!(merged.min, Some(d("1")));
        assert_eq!(merged.max, Some(d("5")));
    }

    #[test]
    fn merge_matches_direct_aggregation() {
        // Aggregating [1,2] and [3,4] separately then merging equals
        // aggregating [1,2,3,4] directly.
        let mut left = AggItem::empty(d("0"), d("2"));
        left.add_value(d("1"));
        left.add_value(d("2"));
        let mut right = AggItem::empty(d("2"), d("2"));
        right.add_value(d("3"));
        right.add_value(d("4"));
        let mut combined = AggItem::empty(d("0"), d("4"));
        combined.merge(&left);
        combined.merge(&right);

        let mut direct = AggItem::empty(d("0"), d("4"));
        for v in ["1", "2", "3", "4"] {
            direct.add_value(d(v));
        }
        assert_eq!(combined.count, direct.count);
        assert_eq!(combined.sum, direct.sum);
        assert_eq!(combined.min, direct.min);
        assert_eq!(combined.max, direct.max);
    }

    #[test]
    fn avg_value_is_exactly_rounded() {
        let mk = |sum: &str, count: u64| AggItem {
            start: Decimal::ZERO,
            size: d("10"),
            count,
            sum: Some(sum.parse().unwrap()),
            min: None,
            max: None,
        };
        assert_eq!(mk("1", 3).avg_value(6), Some(d("0.333333")));
        assert_eq!(mk("2", 3).avg_value(6), Some(d("0.666667"))); // rounds up
        assert_eq!(mk("2", 4).avg_value(6), Some(d("0.5")));
        assert_eq!(mk("-1", 3).avg_value(6), Some(d("-0.333333")));
        assert_eq!(mk("-2", 3).avg_value(6), Some(d("-0.666667")));
        assert_eq!(mk("10.5", 2).avg_value(2), Some(d("5.25")));
        // Exact at count = 1 regardless of magnitude.
        assert_eq!(
            mk("123456789.123", 1).avg_value(6),
            Some(d("123456789.123"))
        );
        // Coarse display scale re-rounds.
        assert_eq!(mk("1", 3).avg_value(1), Some(d("0.3")));
        assert_eq!(mk("2", 3).avg_value(1), Some(d("0.7")));
    }

    #[test]
    fn from_node_rejects_overflowing_count() {
        let bad = Node::elem(
            "agg",
            vec![
                Node::leaf("start", "0"),
                Node::leaf("size", "10"),
                Node::leaf("count", "99999999999999999999"), // > u64::MAX
            ],
        );
        assert!(AggItem::from_node(&bad).is_err());
    }

    #[test]
    fn avg_compare_is_exact() {
        let mut a = AggItem::empty(d("0"), d("20"));
        a.add_value(d("1.0"));
        a.add_value(d("2.0")); // avg = 1.5
        assert!(a.avg_compare(CompOp::Ge, d("1.5")));
        assert!(!a.avg_compare(CompOp::Gt, d("1.5")));
        assert!(a.avg_compare(CompOp::Lt, d("1.6")));
        // A third value making avg = 10/3 — no finite decimal expansion.
        a.add_value(d("7.0"));
        assert!(a.avg_compare(CompOp::Gt, d("3.3333")));
        assert!(a.avg_compare(CompOp::Lt, d("3.3334")));
        assert!(!a.avg_compare(CompOp::Eq, d("3.3333")));
    }

    #[test]
    fn node_round_trip() {
        let mut a = AggItem::empty(d("40"), d("60"));
        a.add_value(d("1.3"));
        a.add_value(d("2.1"));
        let n = a.to_node();
        assert!(AggItem::is_agg_node(&n));
        assert_eq!(AggItem::from_node(&n).unwrap(), a);
    }

    #[test]
    fn empty_partial_round_trip() {
        let a = AggItem::empty(d("0"), d("10"));
        assert_eq!(AggItem::from_node(&a.to_node()).unwrap(), a);
    }

    #[test]
    fn from_node_rejects_malformed() {
        assert!(AggItem::from_node(&Node::empty("agg")).is_err());
        let bad = Node::elem(
            "agg",
            vec![
                Node::leaf("start", "0"),
                Node::leaf("size", "10"),
                Node::leaf("count", "-1"),
            ],
        );
        assert!(AggItem::from_node(&bad).is_err());
        let frac = Node::elem(
            "agg",
            vec![
                Node::leaf("start", "0"),
                Node::leaf("size", "10"),
                Node::leaf("count", "1.5"),
            ],
        );
        assert!(AggItem::from_node(&frac).is_err());
    }
}
