//! Executable continuous-query operators over XML data streams.
//!
//! This crate turns the *descriptions* stored in properties
//! ([`dss_properties`]) into running operators: selection, projection,
//! window-based aggregation, re-aggregation of shared partial aggregates
//! (Figure 5 of the paper), and the restructuring post-processing step that
//! materializes each query's `return` clause.
//!
//! Operators implement [`op::StreamOperator`] and compose into
//! [`op::Pipeline`]s, which also account for the per-operator work that
//! feeds the cost model's peer-load estimates.

pub mod agg_item;
pub mod aggregate;
pub mod build;
pub mod dag;
pub mod migrate;
pub mod op;
pub mod project;
pub mod reaggregate;
pub mod restructure;
pub mod select;
pub mod window_contents;
pub mod window_track;

pub use agg_item::AggItem;
pub use aggregate::AggregateOp;
pub use build::{build_operator, build_pipeline, UdfOp};
pub use dag::{DagNodeStats, OpDag, SinkId};
pub use migrate::{MigrationReport, OpState};
pub use op::{Emit, OpStats, Pipeline, StreamOperator, StreamOperatorExt};
pub use project::ProjectOp;
pub use reaggregate::ReAggregateOp;
pub use restructure::{RestructureOp, Template};
pub use select::SelectOp;
pub use window_contents::{ReWindowOp, WindowContentsOp, WindowItem};
pub use window_track::WindowTracker;
