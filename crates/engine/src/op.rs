//! The stream-operator abstraction and operator pipelines.
//!
//! # Memory model
//!
//! Operators are *sink-based*: instead of returning a freshly allocated
//! `Vec<Node>` per input item, [`StreamOperator::process_into`] appends its
//! outputs to a caller-owned [`Emit`] buffer. The caller decides the
//! buffer's lifetime and reuses it across items, so a steady-state pipeline
//! performs no per-item buffer allocation at all. [`Pipeline`] owns two
//! scratch [`Emit`] buffers and ping-pongs stage outputs between them; the
//! last stage writes directly into the caller's sink.

use std::fmt;

use dss_xml::Node;

use crate::migrate::OpState;

/// A caller-owned output sink for stream operators.
///
/// A thin wrapper around a `Vec<Node>` that only exposes appending from the
/// operator side; clearing and draining belong to whoever owns the buffer.
/// Operators must only ever *append* — the items already in the sink belong
/// to earlier calls.
#[derive(Debug, Default)]
pub struct Emit {
    items: Vec<Node>,
}

impl Emit {
    /// An empty sink.
    pub fn new() -> Emit {
        Emit::default()
    }

    /// An empty sink with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Emit {
        Emit {
            items: Vec::with_capacity(n),
        }
    }

    /// Appends one output item.
    pub fn push(&mut self, item: Node) {
        self.items.push(item);
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all buffered items, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The buffered items.
    pub fn as_slice(&self) -> &[Node] {
        &self.items
    }

    /// Removes and returns all buffered items, keeping the allocation.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Node> {
        self.items.drain(..)
    }

    /// Consumes the sink, returning the buffered items.
    pub fn into_vec(self) -> Vec<Node> {
        self.items
    }

    /// Takes the buffered items out, leaving the sink empty (the backing
    /// allocation moves out with the items).
    pub fn take(&mut self) -> Vec<Node> {
        std::mem::take(&mut self.items)
    }
}

impl std::ops::Deref for Emit {
    type Target = [Node];

    fn deref(&self) -> &[Node] {
        &self.items
    }
}

impl<'a> IntoIterator for &'a Emit {
    type Item = &'a Node;
    type IntoIter = std::slice::Iter<'a, Node>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl From<Emit> for Vec<Node> {
    fn from(e: Emit) -> Vec<Node> {
        e.items
    }
}

/// A continuous-query operator over a stream of XML items.
///
/// Operators are push-based: [`process_into`](StreamOperator::process_into)
/// consumes one input item and appends zero or more output items to the
/// caller's sink (zero for filtered items and open windows, several when a
/// window step emits multiple results).
/// [`flush_into`](StreamOperator::flush_into) drains buffered state at
/// end-of-stream into the same kind of sink.
pub trait StreamOperator: fmt::Debug {
    /// Short operator name for metrics and logs (e.g. `σ`, `Π`, `Φ`).
    fn name(&self) -> &'static str;

    /// Processes one input item, appending outputs to `out`.
    fn process_into(&mut self, item: &Node, out: &mut Emit);

    /// Drains any buffered state at end-of-stream into `out`.
    fn flush_into(&mut self, _out: &mut Emit) {}

    /// Relative base computational load `bload(o)` of this operator per
    /// input item, used by the cost model (Section 3.2). Unit: the load of
    /// a plain selection.
    fn base_load(&self) -> f64;

    /// Exports the operator's open window state for migration across a
    /// chain rebuild, leaving the operator empty. `None` (the default) for
    /// stateless operators and operators with nothing buffered.
    fn export_state(&mut self) -> Option<OpState> {
        None
    }

    /// Adopts state exported by a pruned operator, when doing so is
    /// *exact*: afterwards the operator's state must be bit-identical to
    /// what it would hold had it consumed the whole stream itself (see
    /// [`crate::migrate`]). Returns the number of state items adopted, or
    /// `None` — leaving the operator untouched — when the snapshot is not
    /// exactly adoptable. Must only be called before the operator has
    /// processed any input.
    fn import_state(&mut self, _state: &OpState) -> Option<u64> {
        None
    }
}

/// Vec-returning conveniences over the sink API, for tests and one-shot
/// callers that do not care about buffer reuse.
pub trait StreamOperatorExt: StreamOperator {
    /// [`process_into`](StreamOperator::process_into) collected into a fresh
    /// `Vec` (allocates — not for hot paths).
    fn process_collect(&mut self, item: &Node) -> Vec<Node> {
        let mut out = Emit::new();
        self.process_into(item, &mut out);
        out.into_vec()
    }

    /// [`flush_into`](StreamOperator::flush_into) collected into a fresh
    /// `Vec` (allocates — not for hot paths).
    fn flush_collect(&mut self) -> Vec<Node> {
        let mut out = Emit::new();
        self.flush_into(&mut out);
        out.into_vec()
    }
}

impl<T: StreamOperator + ?Sized> StreamOperatorExt for T {}

/// Per-operator execution statistics gathered by a [`Pipeline`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    /// Operator name.
    pub name: &'static str,
    /// Items fed into the operator.
    pub items_in: u64,
    /// Items the operator emitted.
    pub items_out: u64,
    /// Accumulated work: `items_in × base_load`.
    pub work: f64,
}

impl OpStats {
    /// Folds another operator's counters into this one, keeping `self`'s
    /// name. Used to aggregate the counters of pruned DAG nodes, whose
    /// per-node identity is gone but whose executed work still happened.
    pub fn absorb(&mut self, other: &OpStats) {
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.work += other.work;
    }
}

/// A chain of operators applied in order.
///
/// The pipeline owns two scratch [`Emit`] buffers that stage outputs
/// ping-pong between, so a steady-state
/// [`process_into`](Pipeline::process_into) call allocates nothing beyond
/// the [`Node`]s the operators themselves emit. Both buffers are empty
/// between calls (capacity retained).
#[derive(Debug, Default)]
pub struct Pipeline {
    ops: Vec<Box<dyn StreamOperator>>,
    stats: Vec<OpStats>,
    /// Scratch buffer holding the current stage's *input* items.
    scratch_in: Emit,
    /// Scratch buffer collecting the current stage's *output* items.
    scratch_out: Emit,
}

impl Pipeline {
    /// The empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends an operator.
    pub fn push(&mut self, op: Box<dyn StreamOperator>) {
        self.stats.push(OpStats {
            name: op.name(),
            ..OpStats::default()
        });
        self.ops.push(op);
    }

    /// Builder-style [`push`](Pipeline::push).
    pub fn with(mut self, op: Box<dyn StreamOperator>) -> Pipeline {
        self.push(op);
        self
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the pipeline is the identity.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Pushes one item through the chain, appending the emitted items to
    /// `out`. Stages short-circuit: as soon as one stage emits nothing, the
    /// remaining operators are not consulted at all.
    pub fn process_into(&mut self, item: &Node, out: &mut Emit) {
        let Pipeline {
            ops,
            stats,
            scratch_in,
            scratch_out,
        } = self;
        let Some(last) = ops.len().checked_sub(1) else {
            out.push(item.clone());
            return;
        };
        debug_assert!(scratch_in.is_empty() && scratch_out.is_empty());
        for (i, (op, st)) in ops.iter_mut().zip(stats.iter_mut()).enumerate() {
            // The last stage writes straight into the caller's sink; inner
            // stages collect into the scratch buffer.
            let target: &mut Emit = if i == last {
                &mut *out
            } else {
                &mut *scratch_out
            };
            let before = target.len();
            if i == 0 {
                // The first operator reads the caller's item by reference —
                // no up-front clone for items a leading selection drops.
                st.items_in += 1;
                st.work += op.base_load();
                op.process_into(item, target);
            } else {
                if scratch_in.is_empty() {
                    return; // short-circuit: nothing survived the prior stage
                }
                for it in scratch_in.as_slice() {
                    st.items_in += 1;
                    st.work += op.base_load();
                    op.process_into(it, target);
                }
            }
            st.items_out += (target.len() - before) as u64;
            scratch_in.clear();
            if i != last {
                std::mem::swap(scratch_in, scratch_out);
            }
        }
    }

    /// Flushes all operators in order, cascading drained items downstream
    /// and appending the final outputs to `out`.
    pub fn flush_into(&mut self, out: &mut Emit) {
        let Pipeline {
            ops,
            stats,
            scratch_in,
            scratch_out,
        } = self;
        let Some(last) = ops.len().checked_sub(1) else {
            return;
        };
        debug_assert!(scratch_in.is_empty() && scratch_out.is_empty());
        for (i, (op, st)) in ops.iter_mut().zip(stats.iter_mut()).enumerate() {
            let target: &mut Emit = if i == last {
                &mut *out
            } else {
                &mut *scratch_out
            };
            let before = target.len();
            // Items carried from upstream flushes run through operator i…
            for it in scratch_in.as_slice() {
                st.items_in += 1;
                st.work += op.base_load();
                op.process_into(it, target);
            }
            // …then operator i's own buffered state drains.
            op.flush_into(target);
            st.items_out += (target.len() - before) as u64;
            scratch_in.clear();
            if i != last {
                std::mem::swap(scratch_in, scratch_out);
            }
        }
    }

    /// [`process_into`](Pipeline::process_into) collected into a fresh
    /// `Vec` (allocates — convenience for tests and one-shot callers).
    pub fn process(&mut self, item: &Node) -> Vec<Node> {
        let mut out = Emit::new();
        self.process_into(item, &mut out);
        out.into_vec()
    }

    /// [`flush_into`](Pipeline::flush_into) collected into a fresh `Vec`
    /// (allocates — convenience for tests and one-shot callers).
    pub fn flush(&mut self) -> Vec<Node> {
        let mut out = Emit::new();
        self.flush_into(&mut out);
        out.into_vec()
    }

    /// Execution statistics per operator.
    pub fn stats(&self) -> &[OpStats] {
        &self.stats
    }

    /// Total accumulated work across operators.
    pub fn total_work(&self) -> f64 {
        self.stats.iter().map(|s| s.work).sum()
    }

    /// Sum of per-item base loads — the cost model's `Σ bload(o)` for the
    /// operators installed at one peer by this pipeline.
    pub fn base_load(&self) -> f64 {
        self.ops.iter().map(|o| o.base_load()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_xml::Node;

    /// Doubles every item (emits it twice) — test helper.
    #[derive(Debug)]
    struct Echo(u32);

    impl StreamOperator for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn process_into(&mut self, item: &Node, out: &mut Emit) {
            for _ in 0..self.0 {
                out.push(item.clone());
            }
        }
        fn base_load(&self) -> f64 {
            1.0
        }
    }

    /// Buffers items, emitting them all on flush.
    #[derive(Debug, Default)]
    struct Hold(Vec<Node>);

    impl StreamOperator for Hold {
        fn name(&self) -> &'static str {
            "hold"
        }
        fn process_into(&mut self, item: &Node, _out: &mut Emit) {
            self.0.push(item.clone());
        }
        fn flush_into(&mut self, out: &mut Emit) {
            for item in self.0.drain(..) {
                out.push(item);
            }
        }
        fn base_load(&self) -> f64 {
            2.0
        }
    }

    /// Panicking operator — proves downstream stages are short-circuited.
    #[derive(Debug)]
    struct Bomb;

    impl StreamOperator for Bomb {
        fn name(&self) -> &'static str {
            "bomb"
        }
        fn process_into(&mut self, _item: &Node, _out: &mut Emit) {
            panic!("downstream stage must not run on empty input");
        }
        fn base_load(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        let item = Node::leaf("x", "1");
        assert_eq!(p.process(&item), vec![item.clone()]);
        assert!(p.flush().is_empty());
        assert!(p.is_empty());
    }

    #[test]
    fn fanout_compounds() {
        let mut p = Pipeline::new()
            .with(Box::new(Echo(2)))
            .with(Box::new(Echo(3)));
        let item = Node::leaf("x", "1");
        assert_eq!(p.process(&item).len(), 6);
        assert_eq!(p.stats()[0].items_in, 1);
        assert_eq!(p.stats()[0].items_out, 2);
        assert_eq!(p.stats()[1].items_in, 2);
        assert_eq!(p.stats()[1].items_out, 6);
    }

    #[test]
    fn flush_cascades_downstream() {
        let mut p = Pipeline::new()
            .with(Box::new(Hold::default()))
            .with(Box::new(Echo(2)));
        let item = Node::leaf("x", "1");
        assert!(p.process(&item).is_empty());
        assert!(p.process(&item).is_empty());
        let out = p.flush();
        assert_eq!(out.len(), 4); // 2 held items × echo 2
                                  // The downstream echo saw the flushed items as regular input.
        assert_eq!(p.stats()[1].items_in, 2);
    }

    #[test]
    fn work_accounting() {
        let mut p = Pipeline::new()
            .with(Box::new(Echo(1)))
            .with(Box::new(Hold::default()));
        let item = Node::leaf("x", "1");
        p.process(&item);
        p.process(&item);
        assert_eq!(p.stats()[0].work, 2.0); // 2 items × bload 1.0
        assert_eq!(p.stats()[1].work, 4.0); // 2 items × bload 2.0
        assert_eq!(p.total_work(), 6.0);
        assert_eq!(p.base_load(), 3.0);
    }

    #[test]
    fn process_into_appends_without_clearing() {
        let mut p = Pipeline::new().with(Box::new(Echo(1)));
        let mut out = Emit::new();
        let item = Node::leaf("x", "1");
        p.process_into(&item, &mut out);
        p.process_into(&item, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_stage_output_short_circuits_downstream() {
        let mut p = Pipeline::new().with(Box::new(Echo(0))).with(Box::new(Bomb));
        let item = Node::leaf("x", "1");
        // Echo(0) emits nothing; Bomb would panic if it ever ran.
        assert!(p.process(&item).is_empty());
        assert_eq!(p.stats()[1].items_in, 0);
    }

    #[test]
    fn scratch_buffers_are_empty_between_calls() {
        let mut p = Pipeline::new()
            .with(Box::new(Echo(3)))
            .with(Box::new(Echo(2)));
        let item = Node::leaf("x", "1");
        let mut out = Emit::new();
        for _ in 0..4 {
            p.process_into(&item, &mut out);
            assert!(p.scratch_in.is_empty());
            assert!(p.scratch_out.is_empty());
        }
        assert_eq!(out.len(), 4 * 6);
        p.flush_into(&mut out);
        assert!(p.scratch_in.is_empty() && p.scratch_out.is_empty());
    }

    #[test]
    fn operator_ext_collects() {
        let mut op = Hold::default();
        let item = Node::leaf("x", "1");
        assert!(op.process_collect(&item).is_empty());
        assert_eq!(op.flush_collect(), vec![item]);
    }
}
