//! The stream-operator abstraction and operator pipelines.

use std::fmt;

use dss_xml::Node;

/// A continuous-query operator over a stream of XML items.
///
/// Operators are push-based: [`process`](StreamOperator::process) consumes
/// one input item and produces zero or more output items (zero for filtered
/// items and open windows, several when a window step emits multiple
/// results). [`flush`](StreamOperator::flush) signals end-of-stream.
pub trait StreamOperator: fmt::Debug {
    /// Short operator name for metrics and logs (e.g. `σ`, `Π`, `Φ`).
    fn name(&self) -> &'static str;

    /// Processes one input item.
    fn process(&mut self, item: &Node) -> Vec<Node>;

    /// Drains any buffered state at end-of-stream.
    fn flush(&mut self) -> Vec<Node> {
        Vec::new()
    }

    /// Relative base computational load `bload(o)` of this operator per
    /// input item, used by the cost model (Section 3.2). Unit: the load of
    /// a plain selection.
    fn base_load(&self) -> f64;
}

/// Per-operator execution statistics gathered by a [`Pipeline`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    /// Operator name.
    pub name: &'static str,
    /// Items fed into the operator.
    pub items_in: u64,
    /// Items the operator emitted.
    pub items_out: u64,
    /// Accumulated work: `items_in × base_load`.
    pub work: f64,
}

/// A chain of operators applied in order.
#[derive(Debug, Default)]
pub struct Pipeline {
    ops: Vec<Box<dyn StreamOperator>>,
    stats: Vec<OpStats>,
}

impl Pipeline {
    /// The empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends an operator.
    pub fn push(&mut self, op: Box<dyn StreamOperator>) {
        self.stats.push(OpStats { name: op.name(), ..OpStats::default() });
        self.ops.push(op);
    }

    /// Builder-style [`push`](Pipeline::push).
    pub fn with(mut self, op: Box<dyn StreamOperator>) -> Pipeline {
        self.push(op);
        self
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the pipeline is the identity.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Pushes one item through the chain, returning the emitted items.
    pub fn process(&mut self, item: &Node) -> Vec<Node> {
        let Some((first, rest)) = self.ops.split_first_mut() else {
            return vec![item.clone()];
        };
        // The first operator reads the caller's item by reference — no
        // up-front clone for items a leading selection drops anyway.
        self.stats[0].items_in += 1;
        self.stats[0].work += first.base_load();
        let mut current = first.process(item);
        self.stats[0].items_out += current.len() as u64;
        for (op, stats) in rest.iter_mut().zip(&mut self.stats[1..]) {
            if current.is_empty() {
                return current;
            }
            let mut next = Vec::with_capacity(current.len());
            for item in &current {
                stats.items_in += 1;
                stats.work += op.base_load();
                next.extend(op.process(item));
            }
            stats.items_out += next.len() as u64;
            current = next;
        }
        current
    }

    /// Flushes all operators in order, cascading drained items downstream.
    pub fn flush(&mut self) -> Vec<Node> {
        let mut carried: Vec<Node> = Vec::new();
        for i in 0..self.ops.len() {
            // Items carried from upstream flushes run through operator i…
            let mut produced = Vec::new();
            for item in &carried {
                self.stats[i].items_in += 1;
                self.stats[i].work += self.ops[i].base_load();
                produced.extend(self.ops[i].process(item));
            }
            // …then operator i's own buffered state drains.
            produced.extend(self.ops[i].flush());
            self.stats[i].items_out += produced.len() as u64;
            carried = produced;
        }
        carried
    }

    /// Execution statistics per operator.
    pub fn stats(&self) -> &[OpStats] {
        &self.stats
    }

    /// Total accumulated work across operators.
    pub fn total_work(&self) -> f64 {
        self.stats.iter().map(|s| s.work).sum()
    }

    /// Sum of per-item base loads — the cost model's `Σ bload(o)` for the
    /// operators installed at one peer by this pipeline.
    pub fn base_load(&self) -> f64 {
        self.ops.iter().map(|o| o.base_load()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_xml::Node;

    /// Doubles every item (emits it twice) — test helper.
    #[derive(Debug)]
    struct Echo(u32);

    impl StreamOperator for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn process(&mut self, item: &Node) -> Vec<Node> {
            (0..self.0).map(|_| item.clone()).collect()
        }
        fn base_load(&self) -> f64 {
            1.0
        }
    }

    /// Buffers items, emitting them all on flush.
    #[derive(Debug, Default)]
    struct Hold(Vec<Node>);

    impl StreamOperator for Hold {
        fn name(&self) -> &'static str {
            "hold"
        }
        fn process(&mut self, item: &Node) -> Vec<Node> {
            self.0.push(item.clone());
            Vec::new()
        }
        fn flush(&mut self) -> Vec<Node> {
            std::mem::take(&mut self.0)
        }
        fn base_load(&self) -> f64 {
            2.0
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        let item = Node::leaf("x", "1");
        assert_eq!(p.process(&item), vec![item.clone()]);
        assert!(p.flush().is_empty());
        assert!(p.is_empty());
    }

    #[test]
    fn fanout_compounds() {
        let mut p = Pipeline::new().with(Box::new(Echo(2))).with(Box::new(Echo(3)));
        let item = Node::leaf("x", "1");
        assert_eq!(p.process(&item).len(), 6);
        assert_eq!(p.stats()[0].items_in, 1);
        assert_eq!(p.stats()[0].items_out, 2);
        assert_eq!(p.stats()[1].items_in, 2);
        assert_eq!(p.stats()[1].items_out, 6);
    }

    #[test]
    fn flush_cascades_downstream() {
        let mut p = Pipeline::new().with(Box::new(Hold::default())).with(Box::new(Echo(2)));
        let item = Node::leaf("x", "1");
        assert!(p.process(&item).is_empty());
        assert!(p.process(&item).is_empty());
        let out = p.flush();
        assert_eq!(out.len(), 4); // 2 held items × echo 2
        // The downstream echo saw the flushed items as regular input.
        assert_eq!(p.stats()[1].items_in, 2);
    }

    #[test]
    fn work_accounting() {
        let mut p = Pipeline::new().with(Box::new(Echo(1))).with(Box::new(Hold::default()));
        let item = Node::leaf("x", "1");
        p.process(&item);
        p.process(&item);
        assert_eq!(p.stats()[0].work, 2.0); // 2 items × bload 1.0
        assert_eq!(p.stats()[1].work, 4.0); // 2 items × bload 2.0
        assert_eq!(p.total_work(), 6.0);
        assert_eq!(p.base_load(), 3.0);
    }
}
