//! Operator state migration: carrying open window state across a chain
//! rebuild instead of dropping it.
//!
//! Widening and re-subscription replace a flow's operator chain in its
//! [`OpDag`](crate::OpDag). The default rebuild drops every stateful
//! operator below the first changed operator and replays nothing — windows
//! open at the switch point are lost, and recovering them by replay costs
//! O(window extent) items. Stream sharing makes this expensive exactly when
//! it matters: the shared chains are the windowed ones.
//!
//! This module provides the delta path. A stateful operator being pruned
//! exports its open state as an [`OpState`] snapshot; a freshly built
//! operator on the replacement path *imports* it when — and only when — the
//! adoption is **exact**: the imported accumulators are bit-identical to
//! what the new operator would hold had it consumed the whole stream
//! itself. Exactness is decided per operator (see
//! [`StreamOperator::import_state`](crate::StreamOperator::import_state)
//! implementations); anything not provably exact is rejected, and the
//! caller falls back to the plain rebuild for that operator. Moving an open
//! window costs O(open state) — the delta — never O(window extent).
//!
//! The exact cases mirror the paper's window-compatibility lattice
//! (`Δ' mod Δ = 0`, `Δ mod µ = 0`, `µ' mod µ = 0`):
//!
//! * **Identical spec** — the rebuilt chain re-instantiates the same
//!   windowed operator (the widening case: a selection/projection patch was
//!   prepended upstream, restoring byte-identical input). The whole
//!   snapshot is adopted.
//! * **Step coarsening** — same window kind, reference, and size Δ, with
//!   the new step µ' a multiple of the old µ. The coarser grid is a subset
//!   of the finer one and window extents are unchanged, so the new
//!   operator's open set is exactly the old open set filtered to the
//!   µ'-grid.
//! * Anything else — in particular size (Δ) coarsening — is rejected:
//!   tiles of a coarser window that closed before the switch are already
//!   emitted and gone, so the delta-merge cannot be exact from open state.

use dss_properties::{AggregationSpec, WindowOutputSpec, WindowSpec};
use dss_xml::{Decimal, Node};

use crate::agg_item::AggItem;
use crate::window_contents::WindowItem;

/// Snapshot of one stateful operator's open window state, as exported by
/// [`StreamOperator::export_state`](crate::StreamOperator::export_state).
#[derive(Debug, Clone)]
pub enum OpState {
    /// Open state of an aggregation operator Φ.
    Agg {
        /// The exporting operator's spec (window drives adoption checks).
        spec: AggregationSpec,
        /// Open windows `(start, accumulator)`, ascending by start.
        open: Vec<(Decimal, AggItem)>,
        /// Start of the youngest window opened so far.
        youngest_start: Option<Decimal>,
        /// Arrival index for `count` windows.
        items_seen: u64,
    },
    /// Open state of a window-contents operator ω.
    Window {
        /// The exporting operator's spec.
        spec: WindowOutputSpec,
        /// Open windows `(start, contents)`, ascending by start.
        open: Vec<(Decimal, Vec<Node>)>,
        /// Start of the youngest window opened so far.
        youngest_start: Option<Decimal>,
        /// Arrival index for `count` windows.
        items_seen: u64,
    },
    /// Buffered tiles of a re-aggregation operator Φ↺.
    ReAgg {
        /// Spec of the reused (incoming) partial stream.
        reused: AggregationSpec,
        /// Spec the exporting operator produced.
        new: AggregationSpec,
        /// Buffered tiles by start, ascending.
        tiles: Vec<(Decimal, AggItem)>,
        /// Start of the oldest window not yet finalized.
        next_window: Option<Decimal>,
        /// Highest tile start seen.
        max_seen: Option<Decimal>,
    },
    /// Buffered tiles of a re-windowing operator ω↺.
    ReWindow {
        /// Spec of the reused (incoming) window stream.
        reused: WindowOutputSpec,
        /// Spec the exporting operator produced.
        new: WindowOutputSpec,
        /// Buffered tiles by start, ascending.
        tiles: Vec<(Decimal, WindowItem)>,
        /// Start of the oldest window not yet finalized.
        next_window: Option<Decimal>,
        /// Highest tile start seen.
        max_seen: Option<Decimal>,
    },
}

impl OpState {
    /// Number of state items (open windows / buffered tiles) the snapshot
    /// carries — the O(delta) quantity a migration moves.
    pub fn items(&self) -> u64 {
        match self {
            OpState::Agg { open, .. } => open.len() as u64,
            OpState::Window { open, .. } => open.len() as u64,
            OpState::ReAgg { tiles, .. } => tiles.len() as u64,
            OpState::ReWindow { tiles, .. } => tiles.len() as u64,
        }
    }
}

/// Outcome counters of one migrating re-registration
/// ([`OpDag::reregister_migrating`](crate::OpDag::reregister_migrating)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Stateful operators pruned from the old path that exported state.
    pub ops_exported: u64,
    /// Exported snapshots adopted by an operator on the new path.
    pub ops_migrated: u64,
    /// Exported snapshots no new operator could adopt exactly — their
    /// state was dropped, as in a plain rebuild.
    pub ops_dropped: u64,
    /// Open windows / tiles carried across, summed over adopted snapshots.
    pub items_moved: u64,
}

impl MigrationReport {
    /// Folds another report's counters into this one.
    pub fn absorb(&mut self, other: &MigrationReport) {
        self.ops_exported += other.ops_exported;
        self.ops_migrated += other.ops_migrated;
        self.ops_dropped += other.ops_dropped;
        self.items_moved += other.items_moved;
    }
}

/// `true` when open windows tracked under `from` can be adopted verbatim-
/// or-filtered by a tracker with window spec `to`: identical specs, or a
/// pure step coarsening (same kind/reference/size, `µ' mod µ = 0`).
pub fn step_compatible(to: &WindowSpec, from: &WindowSpec) -> bool {
    to.kind() == from.kind()
        && to.reference() == from.reference()
        && to.size() == from.size()
        && WindowSpec::is_multiple_of(to.step(), from.step())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_xml::Path;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn diff(size: &str, step: Option<&str>) -> WindowSpec {
        WindowSpec::diff("t".parse::<Path>().unwrap(), d(size), step.map(d)).unwrap()
    }

    #[test]
    fn step_compatibility_lattice() {
        // Identical specs are compatible.
        assert!(step_compatible(
            &diff("20", Some("10")),
            &diff("20", Some("10"))
        ));
        // Step coarsening µ → kµ with equal Δ is compatible…
        assert!(step_compatible(
            &diff("20", Some("20")),
            &diff("20", Some("10"))
        ));
        // …but step refinement is not (finer grid has windows the old
        // tracker never opened).
        assert!(!step_compatible(
            &diff("20", Some("10")),
            &diff("20", Some("20"))
        ));
        // Size coarsening is never adoptable from open state.
        assert!(!step_compatible(
            &diff("40", Some("10")),
            &diff("20", Some("10"))
        ));
        // Off-lattice steps are rejected.
        assert!(!step_compatible(
            &diff("20", Some("15")),
            &diff("20", Some("10"))
        ));
        // Kind/reference mismatches are rejected.
        assert!(!step_compatible(
            &WindowSpec::count(d("20"), Some(d("10"))).unwrap(),
            &diff("20", Some("10"))
        ));
    }

    #[test]
    fn op_state_items_counts_open_state() {
        let spec = AggregationSpec {
            op: dss_properties::AggOp::Sum,
            element: "en".parse::<Path>().unwrap(),
            window: diff("20", Some("10")),
            pre_selection: dss_predicate::PredicateGraph::new(),
            result_filter: dss_properties::ResultFilter::none(),
        };
        let st = OpState::Agg {
            spec,
            open: vec![
                (d("0"), AggItem::empty(d("0"), d("20"))),
                (d("10"), AggItem::empty(d("10"), d("20"))),
            ],
            youngest_start: Some(d("10")),
            items_seen: 7,
        };
        assert_eq!(st.items(), 2);
    }
}
