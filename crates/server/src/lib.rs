//! `dss-server`: the real networked deployment mode.
//!
//! One OS process per super-peer ([`serve`]), speaking the `dss-proto`
//! binary wire protocol over TCP. The process map is a pure function of
//! the topology name ([`spec::NetMap`]), the control plane is a replicated
//! registration log (every process replays the coordinator's deterministic
//! planner decisions), and the data plane replays each source stream
//! through the same sharing groups the batch simulator forms — which is
//! why a loopback deployment reproduces `StreamGlobe::run_simulation`'s
//! per-query outputs byte for byte.

mod client;
mod cluster;
mod data;
mod peer;
mod signal;
pub mod spec;
mod wire;

pub use client::{Client, ClientEvent, RunOutput, SubscribeReply};
pub use cluster::LocalCluster;
pub use data::{Forwarder, Plane, PlaneFlow};
pub use peer::{serve, PeerOptions};
pub use spec::{NetMap, ServeSpec, DEFAULT_PORT_BASE};
pub use wire::Conn;

use dss_proto::{ProtoError, WireStrategy};

/// Errors from serving, dialing, or driving a deployment.
#[derive(Debug)]
pub enum ServerError {
    Io(std::io::Error),
    Proto(ProtoError),
    /// The remote spoke, but not the expected message.
    Handshake(String),
    Timeout(String),
    /// The remote rejected a request with a typed `Fault`.
    Fault {
        context: String,
        message: String,
    },
    /// Bad deployment configuration (unknown topology/peer, ...).
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Proto(e) => write!(f, "protocol error: {e}"),
            ServerError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ServerError::Timeout(m) => write!(f, "timed out {m}"),
            ServerError::Fault { context, message } => {
                write!(f, "remote fault in {context}: {message}")
            }
            ServerError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<ProtoError> for ServerError {
    fn from(e: ProtoError) -> ServerError {
        ServerError::Proto(e)
    }
}

/// Wire strategy -> planner strategy.
pub fn to_core_strategy(s: WireStrategy) -> dss_core::Strategy {
    match s {
        WireStrategy::DataShipping => dss_core::Strategy::DataShipping,
        WireStrategy::QueryShipping => dss_core::Strategy::QueryShipping,
        WireStrategy::StreamSharing => dss_core::Strategy::StreamSharing,
    }
}

/// Planner strategy -> wire strategy.
pub fn to_wire_strategy(s: dss_core::Strategy) -> WireStrategy {
    match s {
        dss_core::Strategy::DataShipping => WireStrategy::DataShipping,
        dss_core::Strategy::QueryShipping => WireStrategy::QueryShipping,
        dss_core::Strategy::StreamSharing => WireStrategy::StreamSharing,
    }
}
