//! One super-peer server process (`dss serve <topology> --peer <id>`).
//!
//! ## Control plane: replicated registration
//!
//! Every process builds the identical deterministic base system from the
//! topology name ([`ServeSpec::build_globe`]). The *coordinator* (process
//! 0, the first super-peer) is the client gateway: it serializes
//! `Subscribe`/`Unsubscribe` under a control lock, applies them to its own
//! replica, and broadcasts sequenced `Deploy`/`Undeploy` records that
//! every other process replays through the same deterministic planner
//! (`register_query`). Identical base state + identical log + identical
//! planner ⇒ identical deployments and sharing decisions everywhere, so
//! plans and operator graphs never cross the wire — only the query text.
//!
//! ## Data plane: batch replay runs
//!
//! `StartRun` is two-phase: every process builds its share of the data
//! plane ([`Plane`]) and acks before `RunGo` releases the sources, so no
//! item can reach a process whose groups don't exist yet. Items travel as
//! `StreamItemBatch` frames along each flow's planned route; a full
//! mailbox blocks the enqueuing reader thread, which stops reading the
//! connection, fills the kernel receive window, and stalls the sender —
//! TCP backpressure mapped onto the bounded-mailbox semantics. The run
//! completes when every registered query's delivery flow has reported
//! end-of-stream to the coordinator.

use std::collections::{BTreeMap, BTreeSet};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dss_core::StreamGlobe;
use dss_network::{FlowId, Topology};
use dss_proto::{negotiate, read_message, Message, Role, VERSION_MAX, VERSION_MIN};
use dss_xml::Node;

use crate::data::{Forwarder, Plane};
use crate::spec::{NetMap, ServeSpec};
use crate::wire::{self, Conn};
use crate::{to_core_strategy, ServerError};

/// How long the coordinator waits for the fleet to ack a broadcast.
const ACK_TIMEOUT: Duration = Duration::from_secs(30);
/// How long shutdown waits for an in-flight run to drain before warning.
const RUN_DRAIN_TIMEOUT: Duration = Duration::from_secs(300);
/// `Ack.seq` used for the unsequenced `Shutdown` broadcast.
const SHUTDOWN_SEQ: u64 = 0;

/// Configuration of one `dss serve` process.
#[derive(Debug, Clone)]
pub struct PeerOptions {
    pub spec: ServeSpec,
    /// Which super-peer this process serves (e.g. `SP0`).
    pub peer: String,
    /// Bounded mailbox capacity per hosted node.
    pub mailbox_capacity: usize,
    /// Where to write the final telemetry snapshot on shutdown.
    pub metrics_out: Option<PathBuf>,
}

impl PeerOptions {
    pub fn new(spec: ServeSpec, peer: impl Into<String>) -> PeerOptions {
        PeerOptions {
            spec,
            peer: peer.into(),
            mailbox_capacity: 1024,
            metrics_out: None,
        }
    }
}

/// Coordinator-side bookkeeping of the active run.
struct ActiveRun {
    id: u64,
    /// Client connection that sent `StartRun` (gets the `RunDone`).
    requester: Option<u64>,
    /// Queries whose delivery flow has not reported end-of-stream yet.
    pending: BTreeSet<String>,
    delivered: u64,
}

#[derive(Clone, Copy)]
enum ConnCtx {
    Peer,
    Client(u64),
}

struct Server {
    spec: ServeSpec,
    map: NetMap,
    topo: Topology,
    me: usize,
    my_name: String,
    globe: Mutex<StreamGlobe>,
    /// Serializes registration/run-start so every peer connection sees
    /// control messages in the same (seq) order.
    control: Mutex<()>,
    peer_conns: Mutex<Vec<Option<Arc<Conn>>>>,
    next_seq: AtomicU64,
    acks: Mutex<BTreeMap<u64, usize>>,
    acks_cv: Condvar,
    clients: Mutex<BTreeMap<u64, Arc<Conn>>>,
    next_client: AtomicU64,
    /// query id -> subscribing client connection (coordinator only).
    subs: Mutex<BTreeMap<String, u64>>,
    plane: Mutex<Option<Arc<Plane>>>,
    run: Mutex<Option<ActiveRun>>,
    run_cv: Condvar,
    shutting_down: AtomicBool,
    done: AtomicBool,
    mailbox_capacity: usize,
    metrics_out: Option<PathBuf>,
}

/// Runs one peer process until a clean shutdown (wire message or signal).
pub fn serve(opts: PeerOptions) -> Result<(), ServerError> {
    dss_telemetry::set_enabled(true);
    let globe = opts.spec.build_globe();
    let topo = globe.topology().clone();
    let map = NetMap::new(&topo);
    let me = map.index_of_name(&topo, &opts.peer).ok_or_else(|| {
        ServerError::Config(format!(
            "{:?} is not a super-peer of topology {:?}",
            opts.peer, opts.spec.topology
        ))
    })?;
    let addr = map.addr(&opts.spec, me);
    let listener = TcpListener::bind(&addr).map_err(ServerError::Io)?;
    listener.set_nonblocking(true).map_err(ServerError::Io)?;
    let n = map.process_count();
    let server = Arc::new(Server {
        spec: opts.spec,
        map,
        topo,
        me,
        my_name: opts.peer.clone(),
        globe: Mutex::new(globe),
        control: Mutex::new(()),
        peer_conns: Mutex::new(vec![None; n]),
        next_seq: AtomicU64::new(1),
        acks: Mutex::new(BTreeMap::new()),
        acks_cv: Condvar::new(),
        clients: Mutex::new(BTreeMap::new()),
        next_client: AtomicU64::new(1),
        subs: Mutex::new(BTreeMap::new()),
        plane: Mutex::new(None),
        run: Mutex::new(None),
        run_cv: Condvar::new(),
        shutting_down: AtomicBool::new(false),
        done: AtomicBool::new(false),
        mailbox_capacity: opts.mailbox_capacity,
        metrics_out: opts.metrics_out,
    });
    crate::signal::install();
    let role = if me == server.map.coordinator() {
        "coordinator"
    } else {
        "peer"
    };
    eprintln!("dss serve: {} listening on {addr} ({role})", opts.peer);

    let mut signal_handled = false;
    while !server.done.load(Ordering::SeqCst) {
        if crate::signal::triggered() && !signal_handled {
            signal_handled = true;
            let srv = Arc::clone(&server);
            std::thread::spawn(move || srv.on_signal());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let srv = Arc::clone(&server);
                std::thread::spawn(move || srv.inbound(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("dss serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }

    // Kick every blocked reader so their threads unwind.
    for c in server.peer_conns.lock().unwrap().iter().flatten() {
        c.hangup();
    }
    for c in server.clients.lock().unwrap().values() {
        c.hangup();
    }
    eprintln!("dss serve: {} stopped", server.my_name);
    Ok(())
}

impl Server {
    fn is_coordinator(&self) -> bool {
        self.me == self.map.coordinator()
    }

    // ---- connection management -------------------------------------

    fn inbound(self: Arc<Self>, stream: TcpStream) {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = BufReader::new(read_half);
        let hello = match read_message(&mut reader) {
            Ok(Some(m)) => m,
            _ => return,
        };
        let Message::Hello {
            min_version,
            max_version,
            role,
            name,
        } = hello
        else {
            return;
        };
        let conn = match Conn::new(stream, name) {
            Ok(c) => Arc::new(c),
            Err(_) => return,
        };
        match negotiate(min_version, max_version, VERSION_MIN, VERSION_MAX) {
            Some(version) => {
                if conn
                    .send(&Message::HelloAck {
                        version,
                        peer: self.my_name.clone(),
                    })
                    .is_err()
                {
                    return;
                }
            }
            None => {
                let _ = conn.send(&Message::Fault {
                    context: "hello".into(),
                    message: format!(
                        "no mutual protocol version: you speak [{min_version}, {max_version}], \
                         this peer speaks [{VERSION_MIN}, {VERSION_MAX}]"
                    ),
                });
                return;
            }
        }
        reader.get_ref().set_read_timeout(None).ok();
        let ctx = match role {
            Role::Client => {
                let id = self.next_client.fetch_add(1, Ordering::SeqCst);
                self.clients.lock().unwrap().insert(id, Arc::clone(&conn));
                ConnCtx::Client(id)
            }
            Role::Peer => ConnCtx::Peer,
        };
        let srv = Arc::clone(&self);
        let c = Arc::clone(&conn);
        let _ = wire::read_loop(reader, move |msg| srv.handle(msg, &c, &ctx));
        if let ConnCtx::Client(id) = ctx {
            self.clients.lock().unwrap().remove(&id);
        }
    }

    /// The (lazily dialed) outbound connection to process `i`.
    fn conn_to(self: &Arc<Self>, i: usize) -> Result<Arc<Conn>, ServerError> {
        if let Some(c) = self.peer_conns.lock().unwrap()[i].clone() {
            return Ok(c);
        }
        let addr = self.map.addr(&self.spec, i);
        let (conn, reader) = wire::connect(&addr, Role::Peer, &self.my_name, ACK_TIMEOUT)?;
        let conn = Arc::new(conn);
        {
            let mut guard = self.peer_conns.lock().unwrap();
            if let Some(existing) = guard[i].clone() {
                // Lost a dial race; use the established connection.
                conn.hangup();
                return Ok(existing);
            }
            guard[i] = Some(Arc::clone(&conn));
        }
        let srv = Arc::clone(self);
        let c = Arc::clone(&conn);
        std::thread::spawn(move || {
            let _ = wire::read_loop(reader, move |msg| srv.handle(msg, &c, &ConnCtx::Peer));
        });
        Ok(conn)
    }

    /// Broadcasts to every process but this one, returning how many were
    /// reached (their acks are awaited by the caller).
    fn broadcast(self: &Arc<Self>, msg: &Message) -> usize {
        let mut reached = 0;
        for i in 0..self.map.process_count() {
            if i == self.me {
                continue;
            }
            match self.conn_to(i) {
                Ok(c) => match c.send(msg) {
                    Ok(()) => reached += 1,
                    Err(e) => eprintln!("dss serve: send to process {i} failed: {e}"),
                },
                Err(e) => eprintln!("dss serve: cannot reach process {i}: {e}"),
            }
        }
        reached
    }

    fn wait_acks(&self, seq: u64, n: usize) -> bool {
        let deadline = Instant::now() + ACK_TIMEOUT;
        let mut acks = self.acks.lock().unwrap();
        loop {
            if acks.get(&seq).copied().unwrap_or(0) >= n {
                acks.remove(&seq);
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.acks_cv.wait_timeout(acks, deadline - now).unwrap();
            acks = guard;
        }
    }

    // ---- message dispatch ------------------------------------------

    fn handle(self: &Arc<Self>, msg: Message, conn: &Arc<Conn>, ctx: &ConnCtx) -> bool {
        match msg {
            Message::Subscribe {
                id,
                at_peer,
                strategy,
                text,
            } => self.on_subscribe(conn, ctx, id, at_peer, strategy, text),
            Message::Unsubscribe { id } => self.on_unsubscribe(conn, id),
            Message::Deploy {
                seq,
                id,
                at_peer,
                strategy,
                text,
            } => {
                // Replay the coordinator's registration on this replica.
                let result = self.globe.lock().unwrap().register_query(
                    id.clone(),
                    &text,
                    &at_peer,
                    to_core_strategy(strategy),
                );
                if let Err(e) = result {
                    // Should be impossible: same base state, same planner.
                    eprintln!("dss serve: REPLICA DIVERGENCE applying deploy {seq} ({id}): {e}");
                }
                let _ = conn.send(&Message::Ack { seq });
            }
            Message::Undeploy { seq, id } => {
                if let Err(e) = self.globe.lock().unwrap().unregister_query(&id) {
                    eprintln!("dss serve: REPLICA DIVERGENCE applying undeploy {seq} ({id}): {e}");
                }
                let _ = conn.send(&Message::Ack { seq });
            }
            Message::Ack { seq } => {
                *self.acks.lock().unwrap().entry(seq).or_insert(0) += 1;
                self.acks_cv.notify_all();
            }
            Message::StartRun { run } => match ctx {
                ConnCtx::Client(_) => self.on_start_run(conn, ctx),
                // From the coordinator: build our share of the plane.
                ConnCtx::Peer => self.on_peer_start_run(conn, run),
            },
            Message::RunGo { run } => {
                let plane = self.plane.lock().unwrap().clone();
                if let Some(p) = plane.filter(|p| p.run == run) {
                    p.start_sources();
                }
            }
            Message::RunDone { run, .. } => {
                // Coordinator says the run is globally complete: tear down.
                let srv = Arc::clone(self);
                std::thread::spawn(move || srv.teardown_plane(run));
            }
            Message::StreamItemBatch {
                run,
                flow,
                hop,
                eos,
                items,
            } => {
                let plane = self.plane.lock().unwrap().clone();
                match plane {
                    Some(p) if p.run == run => {
                        self.advance(&p, flow as FlowId, hop as usize, items, eos)
                    }
                    Some(p) => p.note_stale(),
                    None => {}
                }
            }
            Message::Deliver {
                run,
                query,
                eos,
                items,
            } => self.deliver_local(run, query, items, eos),
            Message::MetricsPull => {
                let _ = conn.send(&Message::MetricsSnapshot {
                    json: dss_telemetry::snapshot_json(),
                });
            }
            Message::Shutdown => {
                if self.is_coordinator() {
                    self.coordinated_shutdown(Some(conn));
                } else {
                    // A directly-addressed peer drains and stops alone.
                    self.local_shutdown();
                    let _ = conn.send(&Message::Ack { seq: SHUTDOWN_SEQ });
                    self.done.store(true, Ordering::SeqCst);
                }
            }
            Message::Goodbye => return false,
            other => {
                let _ = conn.send(&Message::Fault {
                    context: "dispatch".into(),
                    message: format!("unexpected message {other:?}"),
                });
            }
        }
        true
    }

    // ---- control plane ---------------------------------------------

    fn on_subscribe(
        self: &Arc<Self>,
        conn: &Arc<Conn>,
        ctx: &ConnCtx,
        id: String,
        at_peer: String,
        strategy: dss_proto::WireStrategy,
        text: String,
    ) {
        let fault = |message: String| {
            let _ = conn.send(&Message::Fault {
                context: "subscribe".into(),
                message,
            });
        };
        let ConnCtx::Client(client_id) = *ctx else {
            return fault("subscribe must come from a client connection".into());
        };
        if !self.is_coordinator() {
            return fault(format!(
                "not the coordinator; dial {}",
                self.map.addr(&self.spec, self.map.coordinator())
            ));
        }
        if self.shutting_down.load(Ordering::SeqCst) {
            return fault("shutting down".into());
        }
        let ctl = self.control.lock().unwrap();
        if self.run.lock().unwrap().is_some() {
            return fault("a run is in progress; retry after it completes".into());
        }
        if self.subs.lock().unwrap().contains_key(&id) {
            return fault(format!("query id {id:?} is already subscribed"));
        }
        let (reg, plan_text) = {
            let mut globe = self.globe.lock().unwrap();
            match globe.register_query(id.clone(), &text, &at_peer, to_core_strategy(strategy)) {
                Ok(reg) => {
                    let plan_text = reg.plan.describe(globe.state());
                    (reg, plan_text)
                }
                Err(e) => return fault(e.to_string()),
            }
        };
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let reached = self.broadcast(&Message::Deploy {
            seq,
            id: id.clone(),
            at_peer,
            strategy,
            text,
        });
        drop(ctl);
        if !self.wait_acks(seq, reached) {
            eprintln!("dss serve: deploy {seq} not fully acked within {ACK_TIMEOUT:?}");
        }
        self.subs.lock().unwrap().insert(id.clone(), client_id);
        let _ = conn.send(&Message::SubscribeOk {
            id,
            delivery_flow: reg.delivery_flow as u64,
            reused: reg.reused_derived_stream,
            cost_bits: reg.plan.total_cost.to_bits(),
            plan: plan_text,
        });
    }

    fn on_unsubscribe(self: &Arc<Self>, conn: &Arc<Conn>, id: String) {
        let fault = |message: String| {
            let _ = conn.send(&Message::Fault {
                context: "unsubscribe".into(),
                message,
            });
        };
        if !self.is_coordinator() {
            return fault("not the coordinator".into());
        }
        let ctl = self.control.lock().unwrap();
        if self.run.lock().unwrap().is_some() {
            return fault("a run is in progress; retry after it completes".into());
        }
        if let Err(e) = self.globe.lock().unwrap().unregister_query(&id) {
            return fault(e.to_string());
        }
        self.subs.lock().unwrap().remove(&id);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let reached = self.broadcast(&Message::Undeploy {
            seq,
            id: id.clone(),
        });
        drop(ctl);
        if !self.wait_acks(seq, reached) {
            eprintln!("dss serve: undeploy {seq} not fully acked within {ACK_TIMEOUT:?}");
        }
        let _ = conn.send(&Message::UnsubscribeOk { id });
    }

    // ---- run lifecycle ---------------------------------------------

    fn forwarder(self: &Arc<Self>) -> Forwarder {
        let srv = Arc::clone(self);
        Arc::new(move |flow, hop, items, eos| {
            let plane = srv.plane.lock().unwrap().clone();
            if let Some(p) = plane {
                srv.advance(&p, flow, hop, items, eos);
            }
        })
    }

    fn on_start_run(self: &Arc<Self>, conn: &Arc<Conn>, ctx: &ConnCtx) {
        let fault = |message: String| {
            let _ = conn.send(&Message::Fault {
                context: "run".into(),
                message,
            });
        };
        if !self.is_coordinator() {
            return fault("not the coordinator".into());
        }
        if self.shutting_down.load(Ordering::SeqCst) {
            return fault("shutting down".into());
        }
        let ctl = self.control.lock().unwrap();
        if self.run.lock().unwrap().is_some() {
            return fault("a run is already in progress".into());
        }
        let run_id = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let (plane, pending) = {
            let globe = self.globe.lock().unwrap();
            let pending: BTreeSet<String> = globe
                .registered_queries()
                .map(|(q, _)| q.to_string())
                .collect();
            let plane = Plane::build(
                &globe,
                &self.map,
                self.me,
                run_id,
                self.mailbox_capacity,
                self.forwarder(),
            );
            (plane, pending)
        };
        *self.plane.lock().unwrap() = Some(plane);
        let requester = match ctx {
            ConnCtx::Client(id) => Some(*id),
            ConnCtx::Peer => None,
        };
        *self.run.lock().unwrap() = Some(ActiveRun {
            id: run_id,
            requester,
            pending,
            delivered: 0,
        });
        // Phase 1: every process instantiates its groups and acks.
        let reached = self.broadcast(&Message::StartRun { run: run_id });
        drop(ctl);
        if !self.wait_acks(run_id, reached) {
            eprintln!("dss serve: run {run_id} plane not fully acked; aborting run");
            let _ = conn.send(&Message::Fault {
                context: "run".into(),
                message: "fleet did not come up for the run".into(),
            });
            let srv = Arc::clone(self);
            std::thread::spawn(move || srv.teardown_plane(run_id));
            return;
        }
        // Phase 2: all planes exist — release the sources.
        self.broadcast(&Message::RunGo { run: run_id });
        let plane = self.plane.lock().unwrap().clone();
        if let Some(p) = plane.filter(|p| p.run == run_id) {
            p.start_sources();
        }
        // A run with zero subscriptions completes immediately.
        self.check_run_complete();
    }

    /// Phase 1 on a non-coordinator: instantiate this process's share of
    /// the plane for `run` and ack (the coordinator holds `RunGo` until
    /// every process has acked).
    fn on_peer_start_run(self: &Arc<Self>, conn: &Arc<Conn>, run: u64) {
        // Tear down any previous plane defensively (normally RunDone
        // already did).
        if let Some(p) = self.plane.lock().unwrap().take() {
            p.drain();
        }
        let plane = {
            let globe = self.globe.lock().unwrap();
            Plane::build(
                &globe,
                &self.map,
                self.me,
                run,
                self.mailbox_capacity,
                self.forwarder(),
            )
        };
        *self.plane.lock().unwrap() = Some(plane);
        let _ = conn.send(&Message::Ack { seq: run });
    }

    fn deliver_local(self: &Arc<Self>, run: u64, query: String, items: Vec<Node>, eos: bool) {
        if !items.is_empty() {
            dss_telemetry::counter_add(
                "runtime.delivered",
                || vec![("query", query.clone())],
                items.len() as u64,
            );
        }
        let mut guard = self.run.lock().unwrap();
        let Some(active) = guard.as_mut() else {
            return;
        };
        if active.id != run {
            return;
        }
        active.delivered += items.len() as u64;
        // Results go to the subscriber's connection; if it is gone (the
        // CLI subscribes and disconnects), the run requester gets them.
        let client = {
            let subscriber = self.subs.lock().unwrap().get(&query).copied();
            let clients = self.clients.lock().unwrap();
            subscriber
                .and_then(|id| clients.get(&id).cloned())
                .or_else(|| active.requester.and_then(|id| clients.get(&id).cloned()))
        };
        if let Some(c) = client {
            let _ = c.send(&Message::Deliver {
                run,
                query: query.clone(),
                eos,
                items,
            });
        }
        if eos {
            active.pending.remove(&query);
            if active.pending.is_empty() {
                let (id, requester, delivered) = (active.id, active.requester, active.delivered);
                drop(guard);
                self.finish_run(id, requester, delivered);
            }
        }
    }

    fn check_run_complete(self: &Arc<Self>) {
        let mut guard = self.run.lock().unwrap();
        if let Some(active) = guard.as_mut() {
            if active.pending.is_empty() {
                let (id, requester, delivered) = (active.id, active.requester, active.delivered);
                drop(guard);
                self.finish_run(id, requester, delivered);
            }
        }
    }

    /// Every query's delivery flow reached end-of-stream: notify the
    /// requester, tell the fleet to tear down, tear our share down.
    fn finish_run(self: &Arc<Self>, run: u64, requester: Option<u64>, delivered: u64) {
        if let Some(id) = requester {
            if let Some(c) = self.clients.lock().unwrap().get(&id).cloned() {
                let _ = c.send(&Message::RunDone { run, delivered });
            }
        }
        self.broadcast(&Message::RunDone { run, delivered });
        // Teardown joins the plane's workers — and this thread may *be*
        // one of them (local delivery chains run on worker threads).
        let srv = Arc::clone(self);
        std::thread::spawn(move || srv.teardown_plane(run));
    }

    fn teardown_plane(self: &Arc<Self>, run: u64) {
        let plane = self.plane.lock().unwrap().clone();
        if let Some(p) = plane.filter(|p| p.run == run) {
            p.drain();
            p.publish_mailbox_metrics(&self.topo);
            *self.plane.lock().unwrap() = None;
        }
        let mut guard = self.run.lock().unwrap();
        if guard.as_ref().is_some_and(|a| a.id == run) {
            *guard = None;
        }
        drop(guard);
        self.run_cv.notify_all();
    }

    // ---- data plane ------------------------------------------------

    /// A batch of `flow`'s output arriving at `route[hop]` (which this
    /// process owns): feed the taps there, then forward or deliver.
    fn advance(
        self: &Arc<Self>,
        plane: &Arc<Plane>,
        flow: FlowId,
        hop: usize,
        items: Vec<Node>,
        eos: bool,
    ) {
        if items.is_empty() && !eos {
            return;
        }
        let pf = &plane.flows[flow];
        let node = pf.route[hop];
        debug_assert_eq!(self.map.owner_of(node), self.me);
        plane.feed_taps(node, flow, &items, eos);
        if hop + 1 < pf.route.len() {
            let next_owner = self.map.owner_of(pf.route[hop + 1]);
            if next_owner == self.me {
                self.advance(plane, flow, hop + 1, items, eos);
            } else {
                let msg = Message::StreamItemBatch {
                    run: plane.run,
                    flow: flow as u64,
                    hop: (hop + 1) as u32,
                    eos,
                    items,
                };
                match self.conn_to(next_owner) {
                    Ok(c) => {
                        if let Err(e) = c.send(&msg) {
                            eprintln!("dss serve: batch forward failed: {e}");
                            plane.note_stale();
                        }
                    }
                    Err(e) => {
                        eprintln!("dss serve: no route to process {next_owner}: {e}");
                        plane.note_stale();
                    }
                }
            }
        } else if let Some(query) = &pf.delivery_for {
            if self.is_coordinator() {
                self.deliver_local(plane.run, query.clone(), items, eos);
            } else {
                let msg = Message::Deliver {
                    run: plane.run,
                    query: query.clone(),
                    eos,
                    items,
                };
                match self.conn_to(self.map.coordinator()) {
                    Ok(c) => {
                        if let Err(e) = c.send(&msg) {
                            eprintln!("dss serve: delivery relay failed: {e}");
                        }
                    }
                    Err(e) => eprintln!("dss serve: cannot reach coordinator: {e}"),
                }
            }
        }
    }

    // ---- shutdown --------------------------------------------------

    /// Client-requested fleet shutdown (coordinator): wait for the active
    /// run to drain, stop the fleet, flush metrics, ack, exit.
    fn coordinated_shutdown(self: &Arc<Self>, reply: Option<&Arc<Conn>>) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Drain: the in-flight run completes normally — nothing in a
        // mailbox is dropped.
        let deadline = Instant::now() + RUN_DRAIN_TIMEOUT;
        let mut guard = self.run.lock().unwrap();
        while guard.is_some() {
            let now = Instant::now();
            if now >= deadline {
                eprintln!("dss serve: shutdown proceeding with run still active (drain timeout)");
                break;
            }
            let (g, _) = self.run_cv.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
        drop(guard);
        let ctl = self.control.lock().unwrap();
        let reached = self.broadcast(&Message::Shutdown);
        drop(ctl);
        if !self.wait_acks(SHUTDOWN_SEQ, reached) {
            eprintln!("dss serve: fleet shutdown not fully acked within {ACK_TIMEOUT:?}");
        }
        self.local_shutdown();
        if let Some(conn) = reply {
            let _ = conn.send(&Message::Ack { seq: SHUTDOWN_SEQ });
        }
        self.done.store(true, Ordering::SeqCst);
    }

    /// Drains any local plane and flushes the final metrics snapshot.
    fn local_shutdown(&self) {
        let plane = self.plane.lock().unwrap().clone();
        if let Some(p) = plane {
            p.drain();
            p.publish_mailbox_metrics(&self.topo);
            *self.plane.lock().unwrap() = None;
        }
        if let Some(path) = &self.metrics_out {
            let json = dss_telemetry::snapshot_json();
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("dss serve: writing metrics snapshot {path:?} failed: {e}");
            }
        }
    }

    fn on_signal(self: &Arc<Self>) {
        eprintln!("dss serve: {} caught signal, shutting down", self.my_name);
        if self.is_coordinator() {
            self.coordinated_shutdown(None);
        } else {
            self.local_shutdown();
            self.done.store(true, Ordering::SeqCst);
        }
    }
}
