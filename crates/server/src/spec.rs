//! Deployment specification: which topology to serve, and the pure
//! function from (topology, port base) to the process/port map.
//!
//! Every process — servers and orchestrator alike — derives the same
//! [`NetMap`] from the same [`ServeSpec`], so nothing about placement ever
//! travels over the wire: the topology name alone determines which
//! super-peer process hosts which peer and on which port it listens.

use std::collections::BTreeMap;

use dss_core::StreamGlobe;
use dss_network::{NodeId, PeerKind, Topology};

/// Default first listen port; super-peer `i` (in [`Topology::super_peers`]
/// order) listens on `port_base + i`.
pub const DEFAULT_PORT_BASE: u16 = 7400;

/// Which network to deploy and where its processes listen.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Topology name: `example` (the Figure 1/2 network with the
    /// `photons` stream at P0) or `scenario1` (the paper's Scenario 1).
    pub topology: String,
    /// Interface the peers bind and dial (loopback by default).
    pub host: String,
    pub port_base: u16,
}

impl ServeSpec {
    /// Validates the topology name.
    pub fn new(topology: &str) -> Result<ServeSpec, String> {
        match topology {
            "example" | "scenario1" => Ok(ServeSpec {
                topology: topology.to_string(),
                host: "127.0.0.1".to_string(),
                port_base: DEFAULT_PORT_BASE,
            }),
            other => Err(format!(
                "unknown topology {other:?} (expected \"example\" or \"scenario1\")"
            )),
        }
    }

    /// Builds this process's replica of the deployed system. Every peer
    /// process starts from this identical deterministic base state and
    /// replays the coordinator's registration log on top, so planner
    /// decisions never need to be serialized — only replayed.
    pub fn build_globe(&self) -> StreamGlobe {
        match self.topology.as_str() {
            "example" => dss_rass::example_network(),
            "scenario1" => dss_rass::Scenario::scenario1(42).build_system(),
            other => unreachable!("ServeSpec::new admitted unknown topology {other:?}"),
        }
    }
}

/// The placement map: which super-peer process owns which peer.
///
/// One OS process per super-peer; a thin peer is hosted inside the process
/// of the super-peer it attaches to (thin peers are sources and
/// subscribers — their flows execute at, or next to, their super-peer).
/// Process `0` — the first super-peer — doubles as the *coordinator*: the
/// client gateway that serializes registrations and relays deliveries.
#[derive(Debug, Clone)]
pub struct NetMap {
    sps: Vec<NodeId>,
    index_of: BTreeMap<NodeId, usize>,
    owner: Vec<usize>,
}

impl NetMap {
    pub fn new(topo: &Topology) -> NetMap {
        let sps = topo.super_peers();
        assert!(
            !sps.is_empty(),
            "a deployment needs at least one super-peer"
        );
        let index_of: BTreeMap<NodeId, usize> =
            sps.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut owner = vec![usize::MAX; topo.peer_count()];
        for (i, &sp) in sps.iter().enumerate() {
            owner[sp] = i;
        }
        for (n, slot) in owner.iter_mut().enumerate() {
            if topo.peer(n).kind == PeerKind::ThinPeer {
                let sp = topo
                    .neighbors(n)
                    .find(|&m| topo.peer(m).kind == PeerKind::SuperPeer)
                    .unwrap_or_else(|| {
                        panic!("thin peer {} has no super-peer neighbor", topo.peer(n).name)
                    });
                *slot = index_of[&sp];
            }
        }
        NetMap {
            sps,
            index_of,
            owner,
        }
    }

    /// Number of server processes (= super-peers).
    pub fn process_count(&self) -> usize {
        self.sps.len()
    }

    /// The super-peer node served by process `i`.
    pub fn sp(&self, i: usize) -> NodeId {
        self.sps[i]
    }

    /// Index of the process hosting `node`'s flows and mailbox.
    pub fn owner_of(&self, node: NodeId) -> usize {
        self.owner[node]
    }

    /// The coordinator process (client gateway, registration serializer).
    pub fn coordinator(&self) -> usize {
        0
    }

    /// Process index of the super-peer named `name`, if any.
    pub fn index_of_name(&self, topo: &Topology, name: &str) -> Option<usize> {
        topo.node(name).and_then(|n| self.index_of.get(&n).copied())
    }

    /// Listen address of process `i`.
    pub fn addr(&self, spec: &ServeSpec, i: usize) -> String {
        format!("{}:{}", spec.host, spec.port_base + i as u16)
    }

    /// All peers (super + thin) hosted by process `i`.
    pub fn hosted_nodes(&self, i: usize) -> Vec<NodeId> {
        (0..self.owner.len())
            .filter(|&n| self.owner[n] == i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_network::example_topology;

    #[test]
    fn example_map_hosts_thin_peers_with_their_super_peer() {
        let topo = example_topology();
        let map = NetMap::new(&topo);
        assert_eq!(map.process_count(), 8);
        // P0 (photons source) attaches to SP4.
        let p0 = topo.expect_node("P0");
        let sp4 = topo.expect_node("SP4");
        assert_eq!(map.owner_of(p0), map.owner_of(sp4));
        // Every super-peer owns itself; every peer has an owner.
        for (i, &sp) in topo.super_peers().iter().enumerate() {
            assert_eq!(map.owner_of(sp), i);
            assert_eq!(map.sp(i), sp);
        }
        for n in 0..topo.peer_count() {
            assert!(map.owner_of(n) < map.process_count());
        }
        // The port map is dense from the base.
        let spec = ServeSpec::new("example").unwrap();
        assert_eq!(map.addr(&spec, 0), format!("127.0.0.1:{DEFAULT_PORT_BASE}"));
        assert_eq!(map.index_of_name(&topo, "SP5"), Some(5));
        assert_eq!(map.index_of_name(&topo, "P0"), None);
    }

    #[test]
    fn unknown_topology_rejected() {
        assert!(ServeSpec::new("figure-9").is_err());
    }
}
