//! Minimal SIGINT/SIGTERM latch, hand-rolled (no libc crate): the handler
//! only sets an atomic flag; the accept loop polls it and runs the same
//! drain-and-flush path a wire `Shutdown` takes.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Has SIGINT/SIGTERM arrived since [`install`]?
pub fn triggered() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: c_int) {
        // Only async-signal-safe work here: set the flag, nothing else.
        super::SIGNALED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            let handler = on_signal as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the handlers (idempotent).
pub fn install() {
    imp::install()
}
