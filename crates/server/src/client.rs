//! Client library for a deployed fleet: dial the coordinator, subscribe
//! queries, start a replay run, stream delivered results, pull telemetry.
//!
//! One reader thread funnels everything the server sends into a channel;
//! RPC methods pull from it, stashing interleaved data-plane events
//! (`Deliver`/`RunDone`) so they are never lost to a control reply race.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dss_proto::{Message, Role, WireStrategy};
use dss_xml::Node;

use crate::wire::{self, Conn};
use crate::ServerError;

/// Default patience for a single control-plane round trip.
pub const RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// A data-plane event observed by this client.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// A batch of `query`'s results (empty + `eos` marks end-of-stream).
    Deliver {
        run: u64,
        query: String,
        eos: bool,
        items: Vec<Node>,
    },
    /// The run completed; `delivered` counts items across all queries.
    RunDone { run: u64, delivered: u64 },
}

/// Reply to a successful `subscribe`.
#[derive(Debug, Clone)]
pub struct SubscribeReply {
    pub id: String,
    pub delivery_flow: u64,
    /// `true` if the plan reuses an already-deployed derived stream.
    pub reused: bool,
    pub cost: f64,
    /// Human-readable plan description (routes and operator placement).
    pub plan: String,
}

/// Results of one completed replay run, as this client saw them.
#[derive(Debug, Default)]
pub struct RunOutput {
    /// Delivered items per subscribed query, in delivery order.
    pub results: BTreeMap<String, Vec<Node>>,
    /// Fleet-wide delivered-item count (from `RunDone`).
    pub delivered: u64,
}

/// A client connection to the coordinator (or, for `metrics`, any peer).
pub struct Client {
    conn: Arc<Conn>,
    rx: mpsc::Receiver<Message>,
    pending: VecDeque<ClientEvent>,
    /// The remote's announced name (from its `HelloAck`).
    pub peer_name: String,
}

impl Client {
    /// Dials `addr` (retrying while the fleet boots) and shakes hands.
    pub fn connect(addr: &str, name: &str, timeout: Duration) -> Result<Client, ServerError> {
        let (conn, reader) = wire::connect(addr, Role::Client, name, timeout)?;
        let conn = Arc::new(conn);
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = wire::read_loop(reader, move |msg| tx.send(msg).is_ok());
        });
        Ok(Client {
            peer_name: conn.name.clone(),
            conn,
            rx,
            pending: VecDeque::new(),
        })
    }

    /// Next non-event message, stashing data-plane events encountered on
    /// the way.
    fn next_reply(&mut self, timeout: Duration) -> Result<Message, ServerError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| ServerError::Timeout("waiting for a reply".into()))?;
            match self.rx.recv_timeout(remaining) {
                Ok(Message::Deliver {
                    run,
                    query,
                    eos,
                    items,
                }) => self.pending.push_back(ClientEvent::Deliver {
                    run,
                    query,
                    eos,
                    items,
                }),
                Ok(Message::RunDone { run, delivered }) => self
                    .pending
                    .push_back(ClientEvent::RunDone { run, delivered }),
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ServerError::Timeout("waiting for a reply".into()))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ServerError::Handshake("connection closed".into()))
                }
            }
        }
    }

    /// Next data-plane event (stashed or fresh).
    pub fn next_event(&mut self, timeout: Duration) -> Result<ClientEvent, ServerError> {
        if let Some(e) = self.pending.pop_front() {
            return Ok(e);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(Message::Deliver {
                run,
                query,
                eos,
                items,
            }) => Ok(ClientEvent::Deliver {
                run,
                query,
                eos,
                items,
            }),
            Ok(Message::RunDone { run, delivered }) => Ok(ClientEvent::RunDone { run, delivered }),
            Ok(Message::Fault { context, message }) => Err(ServerError::Fault { context, message }),
            Ok(other) => Err(ServerError::Handshake(format!(
                "unexpected message while streaming: {other:?}"
            ))),
            Err(RecvTimeoutError::Timeout) => {
                Err(ServerError::Timeout("waiting for stream events".into()))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(ServerError::Handshake("connection closed".into()))
            }
        }
    }

    /// Registers `text` as query `id` subscribed at `at_peer`.
    pub fn subscribe(
        &mut self,
        id: &str,
        text: &str,
        at_peer: &str,
        strategy: WireStrategy,
    ) -> Result<SubscribeReply, ServerError> {
        self.conn.send(&Message::Subscribe {
            id: id.to_string(),
            at_peer: at_peer.to_string(),
            strategy,
            text: text.to_string(),
        })?;
        match self.next_reply(RPC_TIMEOUT)? {
            Message::SubscribeOk {
                id,
                delivery_flow,
                reused,
                cost_bits,
                plan,
            } => Ok(SubscribeReply {
                id,
                delivery_flow,
                reused,
                cost: f64::from_bits(cost_bits),
                plan,
            }),
            Message::Fault { context, message } => Err(ServerError::Fault { context, message }),
            other => Err(ServerError::Handshake(format!(
                "expected SubscribeOk, got {other:?}"
            ))),
        }
    }

    pub fn unsubscribe(&mut self, id: &str) -> Result<(), ServerError> {
        self.conn
            .send(&Message::Unsubscribe { id: id.to_string() })?;
        match self.next_reply(RPC_TIMEOUT)? {
            Message::UnsubscribeOk { .. } => Ok(()),
            Message::Fault { context, message } => Err(ServerError::Fault { context, message }),
            other => Err(ServerError::Handshake(format!(
                "expected UnsubscribeOk, got {other:?}"
            ))),
        }
    }

    /// Pulls the remote's current telemetry snapshot (JSON document).
    pub fn metrics(&mut self) -> Result<String, ServerError> {
        self.conn.send(&Message::MetricsPull)?;
        match self.next_reply(RPC_TIMEOUT)? {
            Message::MetricsSnapshot { json } => Ok(json),
            Message::Fault { context, message } => Err(ServerError::Fault { context, message }),
            other => Err(ServerError::Handshake(format!(
                "expected MetricsSnapshot, got {other:?}"
            ))),
        }
    }

    /// Asks the coordinator to start a replay run (fire-and-forget; the
    /// outcome arrives as `Deliver`/`RunDone` events).
    pub fn start_run(&mut self) -> Result<(), ServerError> {
        self.conn.send(&Message::StartRun { run: 0 })?;
        Ok(())
    }

    /// Starts a run and collects every delivery until `RunDone`.
    pub fn run_and_collect(&mut self, timeout: Duration) -> Result<RunOutput, ServerError> {
        self.start_run()?;
        let deadline = Instant::now() + timeout;
        let mut out = RunOutput::default();
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| ServerError::Timeout("waiting for the run to complete".into()))?;
            match self.next_event(remaining)? {
                ClientEvent::Deliver { query, items, .. } => {
                    out.results.entry(query).or_default().extend(items);
                }
                ClientEvent::RunDone { delivered, .. } => {
                    out.delivered = delivered;
                    return Ok(out);
                }
            }
        }
    }

    /// Collects deliveries until every query in `queries` has reported
    /// end-of-stream — for clients that did not request the run.
    pub fn wait_eos(
        &mut self,
        queries: &[&str],
        timeout: Duration,
    ) -> Result<BTreeMap<String, Vec<Node>>, ServerError> {
        let mut waiting: BTreeSet<String> = queries.iter().map(|q| q.to_string()).collect();
        let mut results: BTreeMap<String, Vec<Node>> = BTreeMap::new();
        let deadline = Instant::now() + timeout;
        while !waiting.is_empty() {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| ServerError::Timeout("waiting for end-of-stream".into()))?;
            if let ClientEvent::Deliver {
                query, eos, items, ..
            } = self.next_event(remaining)?
            {
                results.entry(query.clone()).or_default().extend(items);
                if eos {
                    waiting.remove(&query);
                }
            }
        }
        Ok(results)
    }

    /// Asks the coordinator to shut the whole fleet down cleanly; returns
    /// once it has acked (run drained, metrics flushed everywhere).
    pub fn shutdown_fleet(&mut self, timeout: Duration) -> Result<(), ServerError> {
        self.conn.send(&Message::Shutdown)?;
        match self.next_reply(timeout)? {
            Message::Ack { .. } => Ok(()),
            Message::Fault { context, message } => Err(ServerError::Fault { context, message }),
            other => Err(ServerError::Handshake(format!(
                "expected shutdown Ack, got {other:?}"
            ))),
        }
    }

    /// Polite disconnect.
    pub fn goodbye(self) {
        let _ = self.conn.send(&Message::Goodbye);
        self.conn.hangup();
    }
}
