//! Connection plumbing shared by server and client: a write-locked framed
//! sender plus a blocking read loop. One TCP connection per *directed*
//! peer pair; everything a process sends on a connection goes out in call
//! order (the writer mutex serializes frames), and the single reader
//! thread on the other end dispatches in arrival order — together that is
//! the per-flow FIFO the byte-exactness argument rests on.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dss_proto::{read_message, write_message, Message, ProtoError, Role, VERSION_MAX, VERSION_MIN};

use crate::ServerError;

/// A connected endpoint: shared, thread-safe framed writer. The read half
/// is owned by exactly one reader thread (see [`read_loop`]).
#[derive(Debug)]
pub struct Conn {
    /// Remote display name (from its Hello / HelloAck).
    pub name: String,
    writer: Mutex<BufWriter<TcpStream>>,
    stream: TcpStream,
}

impl Conn {
    pub fn new(stream: TcpStream, name: String) -> std::io::Result<Conn> {
        let w = stream.try_clone()?;
        Ok(Conn {
            name,
            writer: Mutex::new(BufWriter::new(w)),
            stream,
        })
    }

    /// Sends one framed message (serialized with concurrent senders).
    pub fn send(&self, msg: &Message) -> Result<(), ProtoError> {
        let mut w = self.writer.lock().unwrap();
        write_message(&mut *w, msg)
    }

    /// Forces the peer's reader out of its blocking read (used on exit).
    pub fn hangup(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Reads messages until close/error, handing each to `handle`; `handle`
/// returns `false` to stop. Returns the terminating error, if any. Takes
/// the `BufReader` (not the raw stream) so bytes buffered during the
/// handshake are never lost.
pub fn read_loop(
    mut r: BufReader<TcpStream>,
    mut handle: impl FnMut(Message) -> bool,
) -> Result<(), ProtoError> {
    loop {
        match read_message(&mut r)? {
            None => return Ok(()),
            Some(msg) => {
                if !handle(msg) {
                    return Ok(());
                }
            }
        }
    }
}

/// Dials `addr`, retrying until `timeout` (the fleet boots in parallel, so
/// early dials race the remote's bind), then performs the Hello handshake.
/// Returns the connection and the remote's negotiated name.
pub fn connect(
    addr: &str,
    role: Role,
    my_name: &str,
    timeout: Duration,
) -> Result<(Conn, BufReader<TcpStream>), ServerError> {
    let deadline = Instant::now() + timeout;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(ServerError::Timeout(format!("connecting to {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    stream.set_nodelay(true).ok();
    // Bound the handshake so a wedged remote can't hang us forever.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(ServerError::Io)?;
    let read_half = stream.try_clone().map_err(ServerError::Io)?;
    let conn = Conn::new(stream, String::new()).map_err(ServerError::Io)?;
    conn.send(&Message::Hello {
        min_version: VERSION_MIN,
        max_version: VERSION_MAX,
        role,
        name: my_name.to_string(),
    })
    .map_err(ServerError::Proto)?;
    let mut r = BufReader::new(read_half);
    let ack = read_message(&mut r).map_err(ServerError::Proto)?;
    let peer = match ack {
        Some(Message::HelloAck { version: _, peer }) => peer,
        Some(Message::Fault { context, message }) => {
            return Err(ServerError::Fault { context, message })
        }
        other => {
            return Err(ServerError::Handshake(format!(
                "expected HelloAck from {addr}, got {other:?}"
            )))
        }
    };
    r.get_ref()
        .set_read_timeout(None)
        .map_err(ServerError::Io)?;
    let conn = Conn { name: peer, ..conn };
    Ok((conn, r))
}
