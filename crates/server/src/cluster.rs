//! Loopback orchestrator: spawns the full topology — one `dss serve`
//! child process per super-peer — on localhost, for smoke tests and the
//! byte-exactness harness.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::spec::{NetMap, ServeSpec};
use crate::{Client, ServerError};

/// A fleet of local `dss serve` child processes (one per super-peer).
/// Dropping the cluster kills any children still running.
pub struct LocalCluster {
    children: Vec<(String, Child)>,
    coordinator_addr: String,
}

impl LocalCluster {
    /// Spawns one `<bin> serve <topology> --peer <name> ...` child per
    /// super-peer of `spec`'s topology. With `metrics_dir`, each child
    /// flushes its final telemetry snapshot to
    /// `<metrics_dir>/metrics-<name>.json` on clean shutdown.
    pub fn spawn(
        bin: &Path,
        spec: &ServeSpec,
        metrics_dir: Option<&Path>,
    ) -> Result<LocalCluster, ServerError> {
        let globe = spec.build_globe();
        let topo = globe.topology();
        let map = NetMap::new(topo);
        let mut children = Vec::new();
        for i in 0..map.process_count() {
            let name = topo.peer(map.sp(i)).name.clone();
            let mut cmd = Command::new(bin);
            cmd.arg("serve")
                .arg(&spec.topology)
                .arg("--peer")
                .arg(&name)
                .arg("--host")
                .arg(&spec.host)
                .arg("--port-base")
                .arg(spec.port_base.to_string())
                .stdin(Stdio::null());
            if let Some(dir) = metrics_dir {
                let out: PathBuf = dir.join(format!("metrics-{name}.json"));
                cmd.arg("--metrics-out").arg(out);
            }
            match cmd.spawn() {
                Ok(child) => children.push((name, child)),
                Err(e) => {
                    let mut failed = LocalCluster {
                        children,
                        coordinator_addr: String::new(),
                    };
                    failed.kill_all();
                    return Err(ServerError::Io(e));
                }
            }
        }
        Ok(LocalCluster {
            children,
            coordinator_addr: map.addr(spec, map.coordinator()),
        })
    }

    /// Address of the coordinator process (the client gateway).
    pub fn coordinator_addr(&self) -> &str {
        &self.coordinator_addr
    }

    /// Cleanly stops the fleet via the coordinator and reaps every child.
    pub fn shutdown(mut self, timeout: Duration) -> Result<(), ServerError> {
        let mut client = Client::connect(&self.coordinator_addr, "orchestrator", timeout)?;
        client.shutdown_fleet(timeout)?;
        client.goodbye();
        self.reap(timeout)?;
        self.children.clear();
        Ok(())
    }

    /// Waits for every child to exit on its own (the fleet was already
    /// stopped some other way, e.g. a client's `shutdown_fleet`).
    pub fn wait(mut self, timeout: Duration) -> Result<(), ServerError> {
        self.reap(timeout)?;
        self.children.clear();
        Ok(())
    }

    fn reap(&mut self, timeout: Duration) -> Result<(), ServerError> {
        let deadline = Instant::now() + timeout;
        for (name, child) in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            return Err(ServerError::Timeout(format!(
                                "waiting for peer process {name} to exit"
                            )));
                        }
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => return Err(ServerError::Io(e)),
                }
            }
        }
        Ok(())
    }

    fn kill_all(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.kill_all();
    }
}
