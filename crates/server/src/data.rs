//! The per-run data plane of one peer process.
//!
//! For each run, every process snapshots its replica's deployment and
//! instantiates, for each *hosted* node, the same sharing groups the batch
//! simulator forms — `(processing node, GroupKey)`, members in ascending
//! `FlowId` order, executed by one [`FlowDag`] per group. Each hosted node
//! gets one bounded [`SyncMailbox`] and one worker thread draining it.
//!
//! **Why the outputs are byte-exact.** The batch oracle processes each
//! group's full input in order, then flushes once. Here, each group's
//! input is a single upstream sequence (one source stream, or one parent
//! flow), delivered in order: a flow's outputs are produced by one worker
//! thread, forwarded along its route over per-connection FIFO links, and
//! appended to each consumer mailbox by a single reader thread. The
//! end-of-stream marker travels *behind* the last item of its flow, so
//! each DAG flushes exactly once, after exactly the oracle's input — same
//! items, same order, same flush point ⇒ same bytes per flow.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dss_core::StreamGlobe;
use dss_network::{FlowDag, FlowId, GroupKey, NodeId, SyncMailbox};
use dss_xml::Node;

use crate::spec::NetMap;

/// Mailbox origin-tag for a payload item.
pub const TAG_ITEM: u64 = 0;
/// Mailbox origin-tag for a group's end-of-stream marker.
pub const TAG_EOS: u64 = 1;

/// A flow's output advancing to `route[hop]`: feed the taps there, then
/// forward to the next hop or deliver. Implemented by the peer server
/// (which owns the connections); invoked from worker and reader threads.
pub type Forwarder = Arc<dyn Fn(FlowId, usize, Vec<Node>, bool) + Send + Sync>;

/// Deployment snapshot of one flow, fixed for the run's lifetime.
#[derive(Debug, Clone)]
pub struct PlaneFlow {
    pub route: Vec<NodeId>,
    /// `Some(query_id)` if this is the query's delivery flow.
    pub delivery_for: Option<String>,
}

struct SourceJob {
    group: usize,
    node: NodeId,
    items: Vec<Node>,
}

/// One run's executable state on one process.
pub struct Plane {
    pub run: u64,
    pub flows: Vec<PlaneFlow>,
    /// Hosted groups: `(node, key) -> index`; used to feed taps.
    group_at: BTreeMap<(NodeId, GroupKey), usize>,
    mailboxes: BTreeMap<NodeId, Arc<SyncMailbox>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    source_jobs: Mutex<Vec<SourceJob>>,
    /// Batches that arrived after teardown began (must all belong to
    /// side-branches that feed no delivery — see `finish_run`).
    pub stale: AtomicU64,
}

impl Plane {
    /// Builds this process's share of the data plane for `run`: the
    /// sharing groups of every node `map` assigns to process `me`, one
    /// mailbox + worker per hosted node. Sources don't replay until
    /// [`start_sources`](Self::start_sources) (the coordinator's `RunGo`),
    /// by which point every process has acked its plane — so no item can
    /// arrive anywhere before the receiving group exists.
    pub fn build(
        globe: &StreamGlobe,
        map: &NetMap,
        me: usize,
        run: u64,
        mailbox_capacity: usize,
        forward: Forwarder,
    ) -> Arc<Plane> {
        let deployment = globe.deployment();
        let delivery_of: BTreeMap<FlowId, String> = globe
            .registered_queries()
            .map(|(q, f)| (f, q.to_string()))
            .collect();
        let flows: Vec<PlaneFlow> = deployment
            .flows()
            .iter()
            .enumerate()
            .map(|(id, f)| PlaneFlow {
                route: f.route.clone(),
                delivery_for: delivery_of.get(&id).cloned(),
            })
            .collect();

        // The oracle's grouping, restricted to hosted nodes: members
        // ascend by FlowId (flows() is id-ordered), matching the
        // registration order `sim::run_shared` uses.
        let mut groups: BTreeMap<(NodeId, GroupKey), Vec<FlowId>> = BTreeMap::new();
        for (id, f) in deployment.flows().iter().enumerate() {
            if f.retired || map.owner_of(f.processing_node) != me {
                continue;
            }
            groups
                .entry((f.processing_node, GroupKey::of(&f.input)))
                .or_default()
                .push(id);
        }

        let mut group_at = BTreeMap::new();
        let mut per_node: BTreeMap<NodeId, Vec<(usize, FlowDag, Vec<FlowId>)>> = BTreeMap::new();
        let mut source_jobs = Vec::new();
        for (idx, ((node, key), members)) in groups.into_iter().enumerate() {
            let mut dag = FlowDag::new();
            for &id in &members {
                dag.register(id, &deployment.flow(id).ops);
            }
            if let GroupKey::Source(stream) = &key {
                source_jobs.push(SourceJob {
                    group: idx,
                    node,
                    items: globe
                        .source_items(stream)
                        .unwrap_or_else(|| panic!("group reads unknown source {stream:?}"))
                        .to_vec(),
                });
            }
            group_at.insert((node, key), idx);
            per_node.entry(node).or_default().push((idx, dag, members));
        }

        let mailboxes: BTreeMap<NodeId, Arc<SyncMailbox>> = per_node
            .keys()
            .map(|&n| (n, Arc::new(SyncMailbox::new(mailbox_capacity))))
            .collect();

        let plane = Arc::new(Plane {
            run,
            flows,
            group_at,
            mailboxes: mailboxes.clone(),
            workers: Mutex::new(Vec::new()),
            source_jobs: Mutex::new(source_jobs),
            stale: AtomicU64::new(0),
        });

        let mut workers = Vec::new();
        for (node, dags) in per_node {
            let mailbox = Arc::clone(&mailboxes[&node]);
            let forward = Arc::clone(&forward);
            let peer_name = globe.topology().peer(node).name.clone();
            workers.push(std::thread::spawn(move || {
                node_worker(peer_name, mailbox, dags, forward)
            }));
        }
        *plane.workers.lock().unwrap() = workers;
        plane
    }

    /// Spawns one replay thread per hosted source group: items in sample
    /// order, then the end-of-stream marker — the same input sequence and
    /// flush point as `StreamGlobe::run_simulation`.
    pub fn start_sources(&self) {
        let jobs = std::mem::take(&mut *self.source_jobs.lock().unwrap());
        let mut threads = self.workers.lock().unwrap();
        for job in jobs {
            let mailbox = Arc::clone(&self.mailboxes[&job.node]);
            threads.push(std::thread::spawn(move || {
                for item in job.items {
                    if !mailbox.push(job.group, TAG_ITEM, item) {
                        return; // closed mid-replay (shutdown)
                    }
                }
                mailbox.push(job.group, TAG_EOS, Node::empty("eos"));
            }));
        }
    }

    /// Feeds the tap group `(node, Tap(parent))`, if this process hosts
    /// one, with a batch of the parent flow's output passing `node`.
    /// Blocks when the group's mailbox is full — that stall propagates to
    /// the caller (a reader thread stops reading, a worker stops draining
    /// its own queue), which is exactly the backpressure chain.
    pub fn feed_taps(&self, node: NodeId, parent: FlowId, items: &[Node], eos: bool) {
        let Some(&g) = self.group_at.get(&(node, GroupKey::Tap(parent))) else {
            return;
        };
        let mailbox = &self.mailboxes[&node];
        for item in items {
            if !mailbox.push(g, TAG_ITEM, item.clone()) {
                self.stale.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if eos && !mailbox.push(g, TAG_EOS, Node::empty("eos")) {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn note_stale(&self) {
        self.stale.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes every mailbox and joins all workers and source threads.
    /// Items already enqueued are still processed ([`SyncMailbox::pop`]
    /// drains before reporting closure) — nothing accepted is lost.
    pub fn drain(&self) {
        for m in self.mailboxes.values() {
            m.close();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }

    /// Publishes end-of-run mailbox accounting through the same metric
    /// names the simulated runtime uses.
    pub fn publish_mailbox_metrics(&self, topo: &dss_network::Topology) {
        for (&node, m) in &self.mailboxes {
            let stats = m.stats();
            if stats.high_water > 0 {
                dss_telemetry::gauge_set(
                    "runtime.queue_high_water",
                    || vec![("peer", topo.peer(node).name.clone())],
                    stats.high_water as f64,
                );
            }
        }
        let stale = self.stale.load(Ordering::Relaxed);
        if stale > 0 {
            dss_telemetry::counter_add("server.stale_batches", Vec::new, stale);
        }
    }
}

/// One hosted node's worker: drains the node's mailbox, runs the touched
/// group's DAG, and forwards each member flow's outputs from route hop 0.
/// Outputs are grouped per flow in ascending id order; per-flow order is
/// the DAG's emission order — the only order the oracle pins.
fn node_worker(
    peer_name: String,
    mailbox: Arc<SyncMailbox>,
    mut dags: Vec<(usize, FlowDag, Vec<FlowId>)>,
    forward: Forwarder,
) {
    while let Some((group, tag, item)) = mailbox.pop() {
        // Same histogram the discrete-event runtime records at dispatch.
        dss_telemetry::histogram_record(
            "runtime.mailbox.depth",
            || vec![("peer", peer_name.clone())],
            mailbox.len() as f64,
        );
        let (_, dag, members) = dags
            .iter_mut()
            .find(|(g, _, _)| *g == group)
            .expect("mailbox entry addresses a hosted group");
        let mut outs: BTreeMap<FlowId, Vec<Node>> = BTreeMap::new();
        if tag == TAG_EOS {
            dag.flush_into(&mut |f, n| outs.entry(f).or_default().push(n.clone()));
            for (f, items) in outs {
                forward(f, 0, items, false);
            }
            // Every member flow's end-of-stream rides behind its last item.
            for &f in members.iter() {
                forward(f, 0, Vec::new(), true);
            }
        } else {
            dag.process_into(&item, &mut |f, n| {
                outs.entry(f).or_default().push(n.clone())
            });
            for (f, items) in outs {
                forward(f, 0, items, false);
            }
        }
    }
}
