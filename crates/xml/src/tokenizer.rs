//! Incremental, byte-level XML tokenizer.
//!
//! The tokenizer is push/pull hybrid: callers [`feed`](Tokenizer::feed) it
//! arbitrary byte chunks (e.g. as they arrive over a network connection in
//! the simulator) and repeatedly call [`next_event`](Tokenizer::next_event),
//! which returns `Ok(None)` whenever more input is required to complete the
//! next construct. This makes it usable on unbounded streams — the paper's
//! data streams are "possibly infinite".
//!
//! Supported constructs: start/end/self-closing tags with attributes, text
//! with entity references, CDATA sections, comments, processing
//! instructions, the XML declaration, and DOCTYPE (with internal subset).
//! Comments/PIs/declarations are consumed silently. Whitespace-only text is
//! dropped, matching the paper's element-only data model (no mixed content).

use crate::error::XmlError;
use crate::event::XmlEvent;
use crate::name::Symbol;
use crate::text;

/// Incremental XML tokenizer. See the module docs.
#[derive(Debug, Default)]
pub struct Tokenizer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
    /// Absolute stream offset of `buf[0]` (for error messages).
    base: usize,
    /// Synthesized end event for a self-closing tag, delivered next.
    pending: Option<XmlEvent>,
    eof: bool,
}

/// Outcome of scanning for one construct.
enum Scan {
    /// A complete event, plus the buffer length just past it.
    Event(XmlEvent, usize),
    /// A self-closing tag: start event, synthesized end event, consumed len.
    Pair(XmlEvent, XmlEvent, usize),
    /// A complete construct that produces no event (comment, PI, …).
    Skip(usize),
    /// Not enough buffered input to finish the construct.
    NeedMore,
}

impl Tokenizer {
    /// Creates an empty tokenizer.
    pub fn new() -> Tokenizer {
        Tokenizer::default()
    }

    /// Creates a tokenizer over a complete in-memory document.
    // Not the FromStr trait: construction is infallible and the name is
    // the natural dual of `feed`/`finish`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(input: &str) -> Tokenizer {
        let mut t = Tokenizer::new();
        t.feed(input.as_bytes());
        t.finish();
        t
    }

    /// Appends input bytes.
    ///
    /// # Panics
    /// Panics if called after [`finish`](Tokenizer::finish).
    pub fn feed(&mut self, bytes: &[u8]) {
        assert!(!self.eof, "feed after finish");
        if self.pos == self.buf.len() {
            // Steady-state fast path: the previous chunk was fully consumed,
            // so the buffer's capacity is reused with no memmove at all.
            self.base += self.pos;
            self.buf.clear();
            self.pos = 0;
        } else {
            self.compact();
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Signals end of input. Subsequent `next_event` calls drain the
    /// remaining complete constructs, then report `Ok(None)`; a dangling
    /// partial construct yields [`XmlError::UnexpectedEof`].
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// `true` once `finish` has been called and all input was consumed.
    pub fn is_done(&self) -> bool {
        self.eof
            && self.pending.is_none()
            && self.remaining().iter().all(|b| b.is_ascii_whitespace())
    }

    fn remaining(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Drops consumed bytes once they dominate the buffer, keeping memory
    /// bounded on infinite streams.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.base += self.pos;
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn abs(&self, rel: usize) -> usize {
        self.base + self.pos + rel
    }

    fn syntax(&self, rel: usize, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            message: message.into(),
            offset: self.abs(rel),
        }
    }

    /// Returns the next event; `Ok(None)` means "need more input" before
    /// [`finish`], and "cleanly exhausted" after it.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        if let Some(ev) = self.pending.take() {
            return Ok(Some(ev));
        }
        loop {
            match self.scan()? {
                Scan::Event(ev, end) => {
                    self.pos += end;
                    return Ok(Some(ev));
                }
                Scan::Pair(start, end_ev, end) => {
                    self.pos += end;
                    self.pending = Some(end_ev);
                    return Ok(Some(start));
                }
                Scan::Skip(end) => {
                    self.pos += end;
                }
                Scan::NeedMore => {
                    if !self.eof {
                        return Ok(None);
                    }
                    let rem = self.remaining();
                    if rem.iter().all(|b| b.is_ascii_whitespace()) {
                        self.pos = self.buf.len();
                        return Ok(None);
                    }
                    if !rem.contains(&b'<') {
                        // Trailing text at EOF (callers decide whether it is
                        // legal — the reader treats it as trailing content).
                        let raw = std::str::from_utf8(rem)
                            .map_err(|_| self.syntax(0, "invalid UTF-8 in text"))?;
                        let t = text::unescape_text(raw.trim())?;
                        self.pos = self.buf.len();
                        return Ok(Some(XmlEvent::Text(t)));
                    }
                    return Err(XmlError::UnexpectedEof);
                }
            }
        }
    }

    /// Scans one construct at the current position without consuming it.
    fn scan(&self) -> Result<Scan, XmlError> {
        let rem = self.remaining();
        if rem.is_empty() {
            return Ok(Scan::NeedMore);
        }
        if rem[0] == b'<' {
            if rem.len() < 2 {
                return Ok(Scan::NeedMore);
            }
            match rem[1] {
                b'/' => self.scan_end_tag(rem),
                b'?' => Ok(self.scan_until(rem, 2, b"?>")),
                b'!' => self.scan_bang(rem),
                _ => self.scan_start_tag(rem),
            }
        } else {
            self.scan_text(rem)
        }
    }

    /// Text up to the next `<`. Whitespace-only runs are skipped.
    fn scan_text(&self, rem: &[u8]) -> Result<Scan, XmlError> {
        let Some(end) = rem.iter().position(|&b| b == b'<') else {
            return Ok(Scan::NeedMore);
        };
        let raw = std::str::from_utf8(&rem[..end])
            .map_err(|_| self.syntax(0, "invalid UTF-8 in text"))?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            Ok(Scan::Skip(end))
        } else {
            Ok(Scan::Event(
                XmlEvent::Text(text::unescape_text(trimmed)?),
                end,
            ))
        }
    }

    /// `<!--…-->`, `<![CDATA[…]]>`, or `<!DOCTYPE …>` (with internal subset).
    fn scan_bang(&self, rem: &[u8]) -> Result<Scan, XmlError> {
        const CDATA: &[u8] = b"<![CDATA[";
        if rem.len() < 4 && (b"<!--".starts_with(rem) || CDATA.starts_with(rem)) {
            return Ok(Scan::NeedMore);
        }
        if rem.starts_with(b"<!--") {
            return Ok(self.scan_until(rem, 4, b"-->"));
        }
        if rem.starts_with(CDATA) || (rem.len() < CDATA.len() && CDATA.starts_with(rem)) {
            if rem.len() < CDATA.len() {
                return Ok(Scan::NeedMore);
            }
            let Some(close) = find(&rem[CDATA.len()..], b"]]>") else {
                return Ok(Scan::NeedMore);
            };
            let raw = std::str::from_utf8(&rem[CDATA.len()..CDATA.len() + close])
                .map_err(|_| self.syntax(CDATA.len(), "invalid UTF-8 in CDATA"))?;
            let consumed = CDATA.len() + close + 3;
            if raw.trim().is_empty() {
                return Ok(Scan::Skip(consumed));
            }
            return Ok(Scan::Event(XmlEvent::Text(raw.to_string()), consumed));
        }
        // DOCTYPE (or any other <!…>): skip to the matching '>', honouring a
        // bracketed internal subset.
        let mut depth = 0usize;
        for (i, &b) in rem.iter().enumerate().skip(2) {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(Scan::Skip(i + 1)),
                _ => {}
            }
        }
        Ok(Scan::NeedMore)
    }

    /// Generic "skip to closing delimiter" used for comments and PIs.
    fn scan_until(&self, rem: &[u8], from: usize, close: &[u8]) -> Scan {
        if rem.len() <= from {
            return Scan::NeedMore;
        }
        match find(&rem[from..], close) {
            Some(i) => Scan::Skip(from + i + close.len()),
            None => Scan::NeedMore,
        }
    }

    fn scan_end_tag(&self, rem: &[u8]) -> Result<Scan, XmlError> {
        let Some(gt) = rem.iter().position(|&b| b == b'>') else {
            return Ok(Scan::NeedMore);
        };
        let inner = std::str::from_utf8(&rem[2..gt])
            .map_err(|_| self.syntax(2, "invalid UTF-8 in end tag"))?;
        let name = inner.trim();
        text::validate_name(name)?;
        Ok(Scan::Event(
            XmlEvent::EndElement {
                name: Symbol::intern(name),
            },
            gt + 1,
        ))
    }

    fn scan_start_tag(&self, rem: &[u8]) -> Result<Scan, XmlError> {
        // The whole tag must be buffered: find '>' outside quotes.
        let mut quote: Option<u8> = None;
        let mut gt = None;
        for (i, &b) in rem.iter().enumerate().skip(1) {
            match (quote, b) {
                (Some(q), _) if b == q => quote = None,
                (Some(_), _) => {}
                (None, b'"') | (None, b'\'') => quote = Some(b),
                (None, b'>') => {
                    gt = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(gt) = gt else {
            return Ok(Scan::NeedMore);
        };
        let self_closing = gt >= 2 && rem[gt - 1] == b'/';
        let body_end = if self_closing { gt - 1 } else { gt };
        let body = std::str::from_utf8(&rem[1..body_end])
            .map_err(|_| self.syntax(1, "invalid UTF-8 in start tag"))?;
        let (name, attributes) = self.parse_tag_body(body)?;
        let start = XmlEvent::StartElement { name, attributes };
        if self_closing {
            Ok(Scan::Pair(start, XmlEvent::EndElement { name }, gt + 1))
        } else {
            Ok(Scan::Event(start, gt + 1))
        }
    }

    /// Parses `name attr="v" …` (the inside of a start tag).
    fn parse_tag_body(&self, body: &str) -> Result<(Symbol, Vec<(Symbol, String)>), XmlError> {
        let name_end = body.find(char::is_whitespace).unwrap_or(body.len());
        let name = &body[..name_end];
        text::validate_name(name)?;
        let mut attributes = Vec::new();
        let mut s = body[name_end..].trim_start();
        while !s.is_empty() {
            let eq = s
                .find('=')
                .ok_or_else(|| self.syntax(0, "attribute without value"))?;
            let attr_name = s[..eq].trim();
            text::validate_name(attr_name)?;
            let after = s[eq + 1..].trim_start();
            let quote = after
                .chars()
                .next()
                .filter(|&c| c == '"' || c == '\'')
                .ok_or_else(|| self.syntax(0, "unquoted attribute value"))?;
            let after = &after[1..];
            let close = after
                .find(quote)
                .ok_or_else(|| self.syntax(0, "unterminated attribute value"))?;
            attributes.push((
                Symbol::intern(attr_name),
                text::unescape_text(&after[..close])?,
            ));
            s = after[close + 1..].trim_start();
        }
        Ok((Symbol::intern(name), attributes))
    }
}

/// Finds `needle` in `haystack`, returning the start index.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events(input: &str) -> Vec<XmlEvent> {
        let mut t = Tokenizer::from_str(input);
        let mut out = Vec::new();
        while let Some(ev) = t.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn simple_element() {
        assert_eq!(
            all_events("<ra>120.5</ra>"),
            vec![
                XmlEvent::start("ra"),
                XmlEvent::text("120.5"),
                XmlEvent::end("ra")
            ]
        );
    }

    #[test]
    fn nested_photon_structure() {
        let events = all_events("<photon><coord><cel><ra>120.5</ra></cel></coord></photon>");
        assert_eq!(events.len(), 9);
        assert_eq!(events[0], XmlEvent::start("photon"));
        assert_eq!(events[8], XmlEvent::end("photon"));
    }

    #[test]
    fn whitespace_between_tags_is_dropped() {
        let events = all_events("<a>\n  <b>1</b>\n  <c>2</c>\n</a>");
        assert_eq!(
            events,
            vec![
                XmlEvent::start("a"),
                XmlEvent::start("b"),
                XmlEvent::text("1"),
                XmlEvent::end("b"),
                XmlEvent::start("c"),
                XmlEvent::text("2"),
                XmlEvent::end("c"),
                XmlEvent::end("a"),
            ]
        );
    }

    #[test]
    fn self_closing_expands_to_pair() {
        assert_eq!(
            all_events("<t/>"),
            vec![XmlEvent::start("t"), XmlEvent::end("t")]
        );
        assert_eq!(
            all_events("<a><b/><c/></a>"),
            vec![
                XmlEvent::start("a"),
                XmlEvent::start("b"),
                XmlEvent::end("b"),
                XmlEvent::start("c"),
                XmlEvent::end("c"),
                XmlEvent::end("a"),
            ]
        );
    }

    #[test]
    fn attributes_are_parsed() {
        let events = all_events(r#"<p id="7" kind='x y'>v</p>"#);
        assert_eq!(
            events[0],
            XmlEvent::StartElement {
                name: "p".into(),
                attributes: vec![("id".into(), "7".into()), ("kind".into(), "x y".into())],
            }
        );
    }

    #[test]
    fn attribute_value_may_contain_gt() {
        let events = all_events(r#"<p expr="a > b">v</p>"#);
        assert_eq!(
            events[0],
            XmlEvent::StartElement {
                name: "p".into(),
                attributes: vec![("expr".into(), "a > b".into())],
            }
        );
    }

    #[test]
    fn entities_in_text() {
        assert_eq!(
            all_events("<t>a &lt; b &amp; c</t>")[1],
            XmlEvent::text("a < b & c")
        );
    }

    #[test]
    fn comments_pis_doctype_skipped() {
        let events = all_events(
            "<?xml version=\"1.0\"?><!DOCTYPE photons [<!ELEMENT x (y)>]>\
             <!-- survey --><t>1</t><!-- end -->",
        );
        assert_eq!(
            events,
            vec![
                XmlEvent::start("t"),
                XmlEvent::text("1"),
                XmlEvent::end("t")
            ]
        );
    }

    #[test]
    fn cdata_becomes_text() {
        assert_eq!(
            all_events("<t><![CDATA[a <raw> & b]]></t>")[1],
            XmlEvent::text("a <raw> & b")
        );
    }

    #[test]
    fn incremental_feeding_across_construct_boundaries() {
        let doc = "<photons><photon><en>1.3</en></photon></photons>";
        // Feed a single byte at a time; events must come out identically.
        let mut t = Tokenizer::new();
        let mut events = Vec::new();
        for b in doc.bytes() {
            t.feed(&[b]);
            while let Some(ev) = t.next_event().unwrap() {
                events.push(ev);
            }
        }
        t.finish();
        while let Some(ev) = t.next_event().unwrap() {
            events.push(ev);
        }
        assert_eq!(events, all_events(doc));
        assert!(t.is_done());
    }

    #[test]
    fn need_more_before_finish() {
        let mut t = Tokenizer::new();
        t.feed(b"<photon><en>1.");
        assert_eq!(t.next_event().unwrap(), Some(XmlEvent::start("photon")));
        assert_eq!(t.next_event().unwrap(), Some(XmlEvent::start("en")));
        assert_eq!(t.next_event().unwrap(), None); // text not terminated yet
        t.feed(b"3</en>");
        assert_eq!(t.next_event().unwrap(), Some(XmlEvent::text("1.3")));
        assert_eq!(t.next_event().unwrap(), Some(XmlEvent::end("en")));
    }

    #[test]
    fn truncated_tag_at_eof_errors() {
        let mut t = Tokenizer::new();
        t.feed(b"<photon><en");
        t.finish();
        assert_eq!(t.next_event().unwrap(), Some(XmlEvent::start("photon")));
        assert_eq!(t.next_event(), Err(XmlError::UnexpectedEof));
    }

    #[test]
    fn bad_names_are_rejected() {
        let mut t = Tokenizer::from_str("<1bad>x</1bad>");
        assert!(matches!(t.next_event(), Err(XmlError::InvalidName { .. })));
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let mut t = Tokenizer::from_str("<t>&nope;</t>");
        t.next_event().unwrap(); // <t>
        assert!(matches!(
            t.next_event(),
            Err(XmlError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn long_stream_compacts_buffer() {
        let mut t = Tokenizer::new();
        let item = "<photon><en>1.3</en></photon>";
        let mut n = 0;
        for _ in 0..2000 {
            t.feed(item.as_bytes());
            while let Some(_ev) = t.next_event().unwrap() {
                n += 1;
            }
        }
        assert_eq!(n, 2000 * 5);
        // The buffer must not have grown to hold the whole stream.
        assert!(
            t.buf.len() < 8 * item.len() + 8192,
            "buffer grew to {}",
            t.buf.len()
        );
    }

    #[test]
    fn constructs_split_across_feeds() {
        // Comments, CDATA, and DOCTYPE split at awkward byte positions.
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE s [<!ELEMENT x (y)>]>\
                   <s><!-- com--ment --><i><![CDATA[a <b> c]]></i></s>";
        let whole = {
            let mut t = Tokenizer::from_str(doc);
            let mut out = Vec::new();
            while let Some(ev) = t.next_event().unwrap() {
                out.push(ev);
            }
            out
        };
        for chunk in [1usize, 2, 3, 5, 7] {
            let mut t = Tokenizer::new();
            let mut out = Vec::new();
            for piece in doc.as_bytes().chunks(chunk) {
                t.feed(piece);
                while let Some(ev) = t.next_event().unwrap() {
                    out.push(ev);
                }
            }
            t.finish();
            while let Some(ev) = t.next_event().unwrap() {
                out.push(ev);
            }
            assert_eq!(out, whole, "chunk size {chunk}");
        }
        assert_eq!(whole[2], XmlEvent::text("a <b> c"));
    }

    #[test]
    fn multibyte_utf8_split_across_feeds() {
        let doc = "<s><t>αβγ☃</t></s>";
        let mut t = Tokenizer::new();
        let mut out = Vec::new();
        for piece in doc.as_bytes().chunks(1) {
            t.feed(piece);
            while let Some(ev) = t.next_event().unwrap() {
                out.push(ev);
            }
        }
        t.finish();
        while let Some(ev) = t.next_event().unwrap() {
            out.push(ev);
        }
        assert_eq!(out[2], XmlEvent::text("αβγ☃"));
    }

    #[test]
    fn empty_input_is_done() {
        let mut t = Tokenizer::from_str("   \n ");
        assert_eq!(t.next_event().unwrap(), None);
        assert!(t.is_done());
    }

    /// A document exercising every construct the tokenizer knows: prolog,
    /// DOCTYPE with internal subset, comments (including `--` inside),
    /// attributes with both quote styles and `>` in values, self-closing
    /// tags, entities, CDATA, and multibyte UTF-8 — so that any split
    /// position lands inside something interesting.
    fn adversarial_doc() -> String {
        let mut doc = String::from(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\
             <!DOCTYPE stream [<!ELEMENT photon (en)>]>\
             <stream source='rosat &amp; chandra'>",
        );
        for i in 0..40 {
            doc.push_str(&format!(
                "<!-- item {i} --><photon id=\"p{i}\" expr=\"a > b\">\
                 <tag/><en>1.{i}</en><note>&lt;α☃β&gt; &amp; more</note>\
                 <raw><![CDATA[<not> & a tag]]></raw></photon>",
            ));
        }
        doc.push_str("</stream>");
        doc
    }

    fn collect_all(t: &mut Tokenizer) -> Vec<XmlEvent> {
        let mut out = Vec::new();
        while let Some(ev) = t.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn adversarial_one_byte_chunks() {
        let doc = adversarial_doc();
        let whole = all_events(&doc);
        let mut t = Tokenizer::new();
        let mut out = Vec::new();
        for b in doc.bytes() {
            t.feed(&[b]);
            out.extend(collect_all(&mut t));
        }
        t.finish();
        out.extend(collect_all(&mut t));
        assert_eq!(out, whole);
        assert!(t.is_done());
    }

    #[test]
    fn adversarial_random_chunks() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let doc = adversarial_doc();
        let whole = all_events(&doc);
        assert!(!whole.is_empty());
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tokenizer::new();
            let mut out = Vec::new();
            let bytes = doc.as_bytes();
            let mut pos = 0;
            while pos < bytes.len() {
                // Heavily favor tiny chunks so splits land mid-construct.
                let n = if rng.gen_bool(0.7) {
                    rng.gen_range(1usize..4)
                } else {
                    rng.gen_range(4usize..64)
                };
                let end = (pos + n).min(bytes.len());
                t.feed(&bytes[pos..end]);
                pos = end;
                out.extend(collect_all(&mut t));
            }
            t.finish();
            out.extend(collect_all(&mut t));
            assert_eq!(out, whole, "seed {seed}");
            assert!(t.is_done(), "seed {seed}");
        }
    }

    #[test]
    fn entities_and_self_closing_straddle_chunks() {
        // Split exactly inside `&amp;`, inside `<t/>`, and inside `&lt;`.
        let doc = "<s><t/>a &amp; b<u>&lt;x&gt;</u></s>";
        let whole = all_events(doc);
        for split in 1..doc.len() {
            let (a, b) = doc.as_bytes().split_at(split);
            let mut t = Tokenizer::new();
            let mut out = Vec::new();
            t.feed(a);
            out.extend(collect_all(&mut t));
            t.feed(b);
            t.finish();
            out.extend(collect_all(&mut t));
            assert_eq!(out, whole, "split at byte {split}");
        }
    }
}
