//! Interned element names.
//!
//! Every element/attribute name in the engine is a [`Symbol`]: a `u32` index
//! into a process-wide [`NameTable`]. Stream items repeat a tiny vocabulary
//! of names (`photon`, `coord`, `ra`, …) millions of times, so interning
//! turns per-node `String` allocation + byte-wise comparison into a copy of
//! four bytes and an integer compare on the hot path.
//!
//! Interned strings are leaked to obtain `&'static str` resolution without
//! lifetime plumbing. The leak is bounded by the number of *distinct* names
//! ever seen (element vocabularies are small and schema-bound), not by
//! stream length.

use std::collections::HashMap;
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned name: cheap to copy, O(1) to compare and hash.
///
/// Equality is consistent with string equality: two symbols are equal iff
/// they intern the same name. Ordering is *lexicographic* over the resolved
/// names (not interning order), so `BTreeMap<Path, _>` keys sort the way
/// string paths would.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// The shared intern table mapping names to [`Symbol`]s.
///
/// A process has exactly one (behind [`NameTable::global`]); it is only ever
/// appended to.
#[derive(Debug, Default)]
pub struct NameTable {
    ids: HashMap<&'static str, Symbol>,
    names: Vec<&'static str>,
}

/// Lock-free resolve table shadowing [`NameTable::names`].
///
/// [`Symbol::as_str`] sits on the serialization hot path (two to three calls
/// per node), so resolution must not take the interner's `RwLock`. Names are
/// published into an append-only chunked array: chunk `c` holds
/// `2^(CHUNK0_BITS + c)` slots, chunks are allocated lazily, and a slot is
/// written exactly once — under the interner's write lock, *before* the
/// symbol value escapes `insert` — then released with a `Release` store.
/// Readers need only two `Acquire` loads and never block writers.
const CHUNK0_BITS: u32 = 6;
/// Chunk 26 ends at slot index `u32::MAX`, covering every possible symbol.
const NUM_CHUNKS: usize = 27;

/// A slot holds a pointer to a leaked `&'static str` cell (the str itself is
/// a fat pointer, so it cannot live in one atomic directly).
type Slot = AtomicPtr<&'static str>;

static RESOLVE_CHUNKS: [AtomicPtr<Slot>; NUM_CHUNKS] =
    [const { AtomicPtr::new(ptr::null_mut()) }; NUM_CHUNKS];

/// Maps a symbol index to its (chunk, offset) position.
fn locate(index: u32) -> (usize, usize) {
    let k = u64::from(index) + (1u64 << CHUNK0_BITS);
    let chunk = (k.ilog2() - CHUNK0_BITS) as usize;
    let offset = (k - (1u64 << (chunk as u32 + CHUNK0_BITS))) as usize;
    (chunk, offset)
}

/// Publishes `name` for lock-free resolution. Caller must hold the interner
/// write lock (single writer ⇒ chunk allocation cannot race).
fn publish(sym: Symbol, name: &'static str) {
    let (chunk_idx, offset) = locate(sym.0);
    let mut chunk = RESOLVE_CHUNKS[chunk_idx].load(Ordering::Acquire);
    if chunk.is_null() {
        let cap = 1usize << (CHUNK0_BITS as usize + chunk_idx);
        let fresh: Box<[Slot]> = (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        chunk = Box::leak(fresh).as_mut_ptr();
        RESOLVE_CHUNKS[chunk_idx].store(chunk, Ordering::Release);
    }
    let cell: &'static mut &'static str = Box::leak(Box::new(name));
    // SAFETY: `offset` is within the chunk's capacity by construction of
    // `locate`, and the chunk allocation above is leaked (never freed).
    unsafe { (*chunk.add(offset)).store(cell, Ordering::Release) };
}

/// Lock-free resolve. Returns `None` only if the slot has not been published
/// (callers fall back to the locked table, which cannot miss for a symbol
/// that was handed out by `insert`).
fn resolve_fast(sym: Symbol) -> Option<&'static str> {
    let (chunk_idx, offset) = locate(sym.0);
    let chunk = RESOLVE_CHUNKS[chunk_idx].load(Ordering::Acquire);
    if chunk.is_null() {
        return None;
    }
    // SAFETY: non-null chunks are leaked allocations of the full capacity
    // for `chunk_idx`, and `locate` keeps `offset` within that capacity.
    let cell = unsafe { (*chunk.add(offset)).load(Ordering::Acquire) };
    if cell.is_null() {
        return None;
    }
    // SAFETY: non-null cells are leaked `&'static str` boxes, written once.
    Some(unsafe { *cell })
}

impl NameTable {
    fn global() -> &'static RwLock<NameTable> {
        static TABLE: OnceLock<RwLock<NameTable>> = OnceLock::new();
        TABLE.get_or_init(|| RwLock::new(NameTable::default()))
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        self.names[sym.0 as usize]
    }

    fn lookup(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    fn insert(&mut self, name: &str) -> Symbol {
        if let Some(sym) = self.lookup(name) {
            return sym;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        self.names.push(leaked);
        self.ids.insert(leaked, sym);
        publish(sym, leaked);
        sym
    }

    /// Number of distinct names interned so far (diagnostics).
    pub fn len() -> usize {
        NameTable::global()
            .read()
            .expect("name table poisoned")
            .names
            .len()
    }
}

impl Symbol {
    /// Interns `name`, returning its symbol (inserting it if new).
    pub fn intern(name: &str) -> Symbol {
        let table = NameTable::global();
        if let Some(sym) = table.read().expect("name table poisoned").lookup(name) {
            return sym;
        }
        table.write().expect("name table poisoned").insert(name)
    }

    /// Looks up `name` without interning. `None` means no node anywhere can
    /// carry this name — used by lookups like [`crate::tree::Node::child`]
    /// so probing for absent names does not grow the table.
    pub fn get(name: &str) -> Option<Symbol> {
        NameTable::global()
            .read()
            .expect("name table poisoned")
            .lookup(name)
    }

    /// Resolves the symbol to its name. Lock-free: two `Acquire` loads on
    /// the fast path, falling back to the locked table only if the slot is
    /// not yet visible to this thread.
    pub fn as_str(self) -> &'static str {
        resolve_fast(self).unwrap_or_else(|| {
            NameTable::global()
                .read()
                .expect("name table poisoned")
                .resolve(self)
        })
    }

    /// The raw table index (diagnostics / serialization).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<&String> for Symbol {
    fn from(name: &String) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("photon");
        let b = Symbol::intern("photon");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "photon");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        assert_ne!(Symbol::intern("ra"), Symbol::intern("dec"));
    }

    #[test]
    fn get_does_not_intern() {
        let before = NameTable::len();
        assert_eq!(Symbol::get("definitely-not-a-name-7193"), None);
        assert_eq!(NameTable::len(), before);
        let sym = Symbol::intern("en");
        assert_eq!(Symbol::get("en"), Some(sym));
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern out of alphabetical order on purpose.
        let z = Symbol::intern("zzz-order-test");
        let a = Symbol::intern("aaa-order-test");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn compares_with_str() {
        let s = Symbol::intern("coord");
        assert_eq!(s, *"coord");
        assert_eq!(s, "coord");
        assert_ne!(s, "cel");
    }

    #[test]
    fn resolve_survives_chunk_boundaries() {
        // Intern enough distinct names to spill past the first resolve
        // chunk (64 slots) into later, lazily-allocated ones, and check
        // every one still resolves lock-free to the right string.
        let names: Vec<String> = (0..300).map(|i| format!("chunk-test-{i}")).collect();
        let syms: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(sym.as_str(), name);
            assert_eq!(resolve_fast(*sym), Some(sym.as_str()));
        }
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("phc");
        assert_eq!(s.to_string(), "phc");
        assert_eq!(format!("{s:?}"), "Symbol(\"phc\")");
    }
}
