//! Parse events produced by the tokenizer / pull parser.

use crate::name::Symbol;

/// A single low-level XML event.
///
/// Element and attribute names are interned [`Symbol`]s — the tokenizer
/// interns once per tag and every later comparison is an integer compare.
/// Attributes are carried on `StartElement` events as name/value pairs; the
/// tree layer converts them into child elements, following the paper's
/// element-only data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" …>` — also emitted for self-closing tags, immediately
    /// followed by a matching `EndElement`.
    StartElement {
        name: Symbol,
        attributes: Vec<(Symbol, String)>,
    },
    /// `</name>`.
    EndElement { name: Symbol },
    /// Character data between tags, entity-resolved. Whitespace-only text is
    /// *not* emitted (the paper's data model has no mixed content).
    Text(String),
}

impl XmlEvent {
    /// Convenience constructor for an attribute-less start tag.
    pub fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: Symbol::intern(name),
            attributes: Vec::new(),
        }
    }

    /// Convenience constructor for an end tag.
    pub fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement {
            name: Symbol::intern(name),
        }
    }

    /// Convenience constructor for a text event.
    pub fn text(t: &str) -> XmlEvent {
        XmlEvent::Text(t.to_string())
    }

    /// The element name, if this is a start or end event.
    pub fn name(&self) -> Option<&str> {
        self.symbol().map(Symbol::as_str)
    }

    /// The interned element name, if this is a start or end event.
    pub fn symbol(&self) -> Option<Symbol> {
        match self {
            XmlEvent::StartElement { name, .. } | XmlEvent::EndElement { name } => Some(*name),
            XmlEvent::Text(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_name() {
        assert_eq!(XmlEvent::start("photon").name(), Some("photon"));
        assert_eq!(XmlEvent::end("photon").name(), Some("photon"));
        assert_eq!(XmlEvent::text("1.3").name(), None);
    }

    #[test]
    fn start_with_attributes_compares_structurally() {
        let a = XmlEvent::StartElement {
            name: "p".into(),
            attributes: vec![("id".into(), "1".into())],
        };
        let b = XmlEvent::StartElement {
            name: "p".into(),
            attributes: vec![("id".into(), "1".into())],
        };
        assert_eq!(a, b);
        assert_ne!(a, XmlEvent::start("p"));
    }
}
