//! DTD-like tree schemas for stream items.
//!
//! The paper's streams carry items complying to a DTD (the photon tree in
//! Section 1). We model the element structure as a tree of names. A schema
//! serves three purposes here:
//!
//! 1. validating generated/parsed items,
//! 2. enumerating the leaf paths available for projection and predicates,
//! 3. anchoring the per-element statistics of the cost model (occurrence and
//!    average size of each element, Section 3.2).

use crate::error::XmlError;
use crate::path::Path;
use crate::text;
use crate::tree::Node;

/// One element in a schema tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaNode {
    name: String,
    children: Vec<SchemaNode>,
}

impl SchemaNode {
    /// A leaf schema element.
    pub fn leaf(name: impl Into<String>) -> SchemaNode {
        SchemaNode {
            name: name.into(),
            children: Vec::new(),
        }
    }

    /// An inner schema element.
    pub fn elem(name: impl Into<String>, children: Vec<SchemaNode>) -> SchemaNode {
        SchemaNode {
            name: name.into(),
            children,
        }
    }

    /// Element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Child schema elements.
    pub fn children(&self) -> &[SchemaNode] {
        &self.children
    }

    fn child(&self, name: &str) -> Option<&SchemaNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// Schema for the items of one data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    item: SchemaNode,
}

impl Schema {
    /// Wraps an item schema tree, validating all names.
    pub fn new(item: SchemaNode) -> Result<Schema, XmlError> {
        fn validate(n: &SchemaNode) -> Result<(), XmlError> {
            text::validate_name(&n.name)?;
            for c in &n.children {
                validate(c)?;
            }
            Ok(())
        }
        validate(&item)?;
        Ok(Schema { item })
    }

    /// The item's root schema node (e.g. `photon`).
    pub fn item(&self) -> &SchemaNode {
        &self.item
    }

    /// The item element name.
    pub fn item_name(&self) -> &str {
        &self.item.name
    }

    /// Schema node at `path` (relative to the item root).
    pub fn node_at(&self, path: &Path) -> Option<&SchemaNode> {
        let mut cur = &self.item;
        for step in path.steps() {
            cur = cur.child(step.as_str())?;
        }
        Some(cur)
    }

    /// `true` if `path` denotes an element of the schema.
    pub fn contains_path(&self, path: &Path) -> bool {
        self.node_at(path).is_some()
    }

    /// All paths to leaf elements, relative to the item root, in document
    /// order.
    pub fn leaf_paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        fn walk(n: &SchemaNode, prefix: &Path, out: &mut Vec<Path>) {
            if n.children.is_empty() {
                out.push(prefix.clone());
                return;
            }
            for c in &n.children {
                let next = prefix.child(&c.name).expect("validated names");
                walk(c, &next, out);
            }
        }
        walk(&self.item, &Path::this(), &mut out);
        out
    }

    /// All element paths (inner and leaf), relative to the item root,
    /// excluding the empty path of the item root itself.
    pub fn all_paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        fn walk(n: &SchemaNode, prefix: &Path, out: &mut Vec<Path>) {
            for c in &n.children {
                let next = prefix.child(&c.name).expect("validated names");
                out.push(next.clone());
                walk(c, &next, out);
            }
        }
        walk(&self.item, &Path::this(), &mut out);
        out
    }

    /// Validates that `node` is a *projection* of this schema: its name is
    /// the item name and every element it contains appears at the matching
    /// position in the schema. Missing elements are allowed — projection
    /// operators legitimately remove subtrees.
    pub fn validate_projection(&self, node: &Node) -> Result<(), XmlError> {
        fn check(schema: &SchemaNode, node: &Node) -> Result<(), XmlError> {
            if schema.name != node.name() {
                return Err(XmlError::SchemaViolation {
                    message: format!(
                        "expected element <{}>, found <{}>",
                        schema.name,
                        node.name()
                    ),
                });
            }
            for child in node.children() {
                match schema.child(child.name()) {
                    Some(s) => check(s, child)?,
                    None => {
                        return Err(XmlError::SchemaViolation {
                            message: format!(
                                "element <{}> not allowed inside <{}>",
                                child.name(),
                                schema.name
                            ),
                        })
                    }
                }
            }
            Ok(())
        }
        check(&self.item, node)
    }

    /// Validates that `node` contains the *complete* schema structure (used
    /// for unprojected source streams).
    pub fn validate_complete(&self, node: &Node) -> Result<(), XmlError> {
        self.validate_projection(node)?;
        fn check(schema: &SchemaNode, node: &Node) -> Result<(), XmlError> {
            for sc in &schema.children {
                match node.child(&sc.name) {
                    Some(c) => check(sc, c)?,
                    None => {
                        return Err(XmlError::SchemaViolation {
                            message: format!(
                                "required element <{}> missing inside <{}>",
                                sc.name,
                                node.name()
                            ),
                        })
                    }
                }
            }
            Ok(())
        }
        check(&self.item, node)
    }
}

/// The photon schema from Section 1 of the paper:
///
/// ```text
/// photon
/// ├── phc
/// ├── coord
/// │   ├── cel ── ra, dec
/// │   └── det ── dx, dy
/// ├── en
/// └── det_time
/// ```
pub fn photon_schema() -> Schema {
    Schema::new(SchemaNode::elem(
        "photon",
        vec![
            SchemaNode::leaf("phc"),
            SchemaNode::elem(
                "coord",
                vec![
                    SchemaNode::elem("cel", vec![SchemaNode::leaf("ra"), SchemaNode::leaf("dec")]),
                    SchemaNode::elem("det", vec![SchemaNode::leaf("dx"), SchemaNode::leaf("dy")]),
                ],
            ),
            SchemaNode::leaf("en"),
            SchemaNode::leaf("det_time"),
        ],
    ))
    .expect("photon schema names are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn photon_schema_paths() {
        let s = photon_schema();
        assert_eq!(s.item_name(), "photon");
        let leaves = s.leaf_paths();
        assert_eq!(
            leaves,
            vec![
                p("phc"),
                p("coord/cel/ra"),
                p("coord/cel/dec"),
                p("coord/det/dx"),
                p("coord/det/dy"),
                p("en"),
                p("det_time"),
            ]
        );
        assert_eq!(s.all_paths().len(), 10); // 7 leaves + phc? no: 7 leaves + coord, cel, det
    }

    #[test]
    fn contains_path() {
        let s = photon_schema();
        assert!(s.contains_path(&p("coord/cel/ra")));
        assert!(s.contains_path(&p("coord")));
        assert!(s.contains_path(&Path::this()));
        assert!(!s.contains_path(&p("coord/ra")));
        assert!(!s.contains_path(&p("energy")));
    }

    #[test]
    fn validates_complete_photon() {
        let s = photon_schema();
        let photon = Node::parse(
            "<photon><phc>5</phc><coord><cel><ra>1</ra><dec>2</dec></cel>\
             <det><dx>3</dx><dy>4</dy></det></coord><en>1.3</en><det_time>9</det_time></photon>",
        )
        .unwrap();
        s.validate_complete(&photon).unwrap();
        s.validate_projection(&photon).unwrap();
    }

    #[test]
    fn projection_allows_missing_elements() {
        let s = photon_schema();
        let projected =
            Node::parse("<photon><coord><cel><ra>1</ra></cel></coord><en>1.3</en></photon>")
                .unwrap();
        s.validate_projection(&projected).unwrap();
        assert!(s.validate_complete(&projected).is_err());
    }

    #[test]
    fn rejects_foreign_elements() {
        let s = photon_schema();
        let bad = Node::parse("<photon><energy>1</energy></photon>").unwrap();
        assert!(matches!(
            s.validate_projection(&bad),
            Err(XmlError::SchemaViolation { .. })
        ));
    }

    #[test]
    fn rejects_misplaced_elements() {
        let s = photon_schema();
        // `ra` directly under photon instead of under coord/cel.
        let bad = Node::parse("<photon><ra>1</ra></photon>").unwrap();
        assert!(s.validate_projection(&bad).is_err());
    }

    #[test]
    fn rejects_wrong_root() {
        let s = photon_schema();
        let bad = Node::parse("<proton><en>1</en></proton>").unwrap();
        assert!(s.validate_projection(&bad).is_err());
    }

    #[test]
    fn schema_rejects_invalid_names() {
        assert!(Schema::new(SchemaNode::leaf("1bad")).is_err());
        assert!(Schema::new(SchemaNode::elem("ok", vec![SchemaNode::leaf("also ok")])).is_err());
    }

    #[test]
    fn node_at_navigates() {
        let s = photon_schema();
        assert_eq!(s.node_at(&p("coord/cel")).unwrap().children().len(), 2);
        assert!(s.node_at(&p("nope")).is_none());
    }
}
