//! Streaming XML substrate for the data-stream-sharing reproduction.
//!
//! The paper ("Data Stream Sharing", Kuntschke & Kemper, EDBT 2006) operates
//! on streams of XML data items such as the `photon` elements of the ROSAT
//! All-Sky Survey. Section 2 of the paper restricts the data model to
//! *elements only* ("attributes in XML data can always be converted into
//! corresponding elements, we restrict ourselves to dealing with elements").
//!
//! This crate provides everything the rest of the system needs to work with
//! such data:
//!
//! * a byte-level, incremental [`tokenizer`] producing [`event::XmlEvent`]s,
//! * a well-formedness-checking pull parser ([`reader::XmlReader`]) with a
//!   *stream mode* for possibly infinite streams (`<photons> item item …`),
//! * an element-only tree model ([`tree::Node`]) where attributes found in
//!   the input are converted into child elements,
//! * child-axis-only path expressions π ([`path::Path`]) as used throughout
//!   the paper,
//! * a serializer ([`writer`]) whose byte counts feed the cost model,
//! * a DTD-like schema description ([`schema::Schema`]) used for statistics
//!   and validation, and
//! * a fixed-point [`decimal::Decimal`] type, because the paper's predicate
//!   constants are "integer values or decimal values with a finite number of
//!   decimal places" — binary floats would break predicate-graph reasoning.

pub mod decimal;
pub mod error;
pub mod event;
pub mod name;
pub mod path;
pub mod reader;
pub mod schema;
pub mod text;
pub mod tokenizer;
pub mod tree;
pub mod writer;

pub use decimal::Decimal;
pub use error::XmlError;
pub use event::XmlEvent;
pub use name::{NameTable, Symbol};
pub use path::Path;
pub use reader::XmlReader;
pub use schema::Schema;
pub use tokenizer::Tokenizer;
pub use tree::Node;
