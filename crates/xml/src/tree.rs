//! Element-only XML tree model.
//!
//! Following Section 2 of the paper, the data model consists purely of
//! elements: a node has a name and either text content (a leaf value such as
//! a photon's `ra`) or child elements. Attributes encountered during parsing
//! are converted into leading child elements ("attributes in XML data can
//! always be converted into corresponding elements").

use crate::decimal::Decimal;
use crate::error::XmlError;
use crate::event::XmlEvent;
use crate::name::Symbol;

/// Maximum element nesting depth accepted by the parsers. Bounds both the
/// build recursion and the eventual `Drop` recursion, so untrusted deeply
/// nested documents error out instead of overflowing the stack.
pub const MAX_DEPTH: usize = 512;

/// An XML element: a name plus text and/or children. In the paper's
/// element-only data model an element has either a text value (a leaf) or
/// child elements; both are populated only for elements whose attributes
/// were converted into leading children, or for constructed results mixing
/// a label with copied subtrees. Text always renders before the children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Node {
    name: Symbol,
    text: Option<String>,
    children: Vec<Node>,
}

impl Node {
    /// An empty element `<name/>`.
    pub fn empty(name: impl Into<Symbol>) -> Node {
        Node {
            name: name.into(),
            text: None,
            children: Vec::new(),
        }
    }

    /// A leaf element with text content.
    pub fn leaf(name: impl Into<Symbol>, text: impl Into<String>) -> Node {
        Node {
            name: name.into(),
            text: Some(text.into()),
            children: Vec::new(),
        }
    }

    /// A leaf element holding a decimal value.
    pub fn decimal_leaf(name: impl Into<Symbol>, value: Decimal) -> Node {
        Node::leaf(name, value.to_string())
    }

    /// An inner element with children.
    pub fn elem(name: impl Into<Symbol>, children: Vec<Node>) -> Node {
        Node {
            name: name.into(),
            text: None,
            children,
        }
    }

    /// Element name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// Interned element name. Comparing symbols is an integer compare —
    /// prefer this over [`Node::name`] anywhere hot.
    pub fn symbol(&self) -> Symbol {
        self.name
    }

    /// Text content, if this is a non-empty leaf.
    pub fn text(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// Child elements.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Mutable access to children (used by the restructuring operator).
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Appends a child. Existing text content is kept (it renders before
    /// the children) — needed so attribute-derived children and a text
    /// value can coexist on one element.
    pub fn push_child(&mut self, child: Node) {
        self.children.push(child);
    }

    /// Sets the text content (rendered before any children).
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.text = Some(text.into());
    }

    /// Appends to the text content in place (concatenating split text runs
    /// without rebuilding the node).
    pub fn append_text(&mut self, more: &str) {
        match &mut self.text {
            Some(t) => t.push_str(more),
            None => self.text = Some(more.to_string()),
        }
    }

    /// First child with the given name. Uses a non-interning lookup, so
    /// probing for names that exist nowhere does not grow the name table.
    pub fn child(&self, name: &str) -> Option<&Node> {
        let sym = Symbol::get(name)?;
        self.children.iter().find(|c| c.name == sym)
    }

    /// First child with the given interned name.
    pub fn child_sym(&self, name: Symbol) -> Option<&Node> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        let sym = Symbol::get(name);
        self.children.iter().filter(move |c| Some(c.name) == sym)
    }

    /// `true` if the node has neither text nor children.
    pub fn is_empty(&self) -> bool {
        self.text.is_none() && self.children.is_empty()
    }

    /// Leaf text parsed as a decimal.
    pub fn decimal_value(&self) -> Result<Decimal, XmlError> {
        match &self.text {
            Some(t) => t.parse(),
            None => Err(XmlError::ValueParse {
                value: format!("<{}>", self.name),
                wanted: "decimal",
            }),
        }
    }

    /// Total number of elements in the subtree (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self.children.iter().map(Node::element_count).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }

    /// Builds a tree from a stream of events that must describe exactly one
    /// element (the next start tag through its matching end tag).
    ///
    /// `events` is any fallible event source; `None` mid-element is an
    /// [`XmlError::UnexpectedEof`].
    pub fn from_events<F>(next: &mut F) -> Result<Node, XmlError>
    where
        F: FnMut() -> Result<Option<XmlEvent>, XmlError>,
    {
        let first = next()?.ok_or(XmlError::UnexpectedEof)?;
        let (name, attributes) = match first {
            XmlEvent::StartElement { name, attributes } => (name, attributes),
            other => {
                return Err(XmlError::Syntax {
                    message: format!("expected start tag, found {other:?}"),
                    offset: 0,
                })
            }
        };
        Node::from_events_after_start(name, attributes, next)
    }

    /// Continues building a tree whose start tag (with `name` and
    /// `attributes`) has already been consumed. Iterative (explicit stack)
    /// with a [`MAX_DEPTH`] cap, so untrusted nesting cannot overflow the
    /// call stack.
    pub fn from_events_after_start<F>(
        name: Symbol,
        attributes: Vec<(Symbol, String)>,
        next: &mut F,
    ) -> Result<Node, XmlError>
    where
        F: FnMut() -> Result<Option<XmlEvent>, XmlError>,
    {
        // Per frame: the node under construction plus its pending
        // attribute-derived children (prepended at completion so a text
        // value arriving first is not mistaken for mixed content).
        let mut stack: Vec<(Node, Vec<Node>)> = Vec::new();
        let attr_children = |attrs: Vec<(Symbol, String)>| {
            attrs.into_iter().map(|(k, v)| Node::leaf(k, v)).collect()
        };
        let mut current = Node::empty(name);
        let mut current_attrs: Vec<Node> = attr_children(attributes);
        loop {
            match next()?.ok_or(XmlError::UnexpectedEof)? {
                XmlEvent::StartElement { name, attributes } => {
                    if stack.len() + 1 >= MAX_DEPTH {
                        return Err(XmlError::Syntax {
                            message: format!("element nesting deeper than {MAX_DEPTH}"),
                            offset: 0,
                        });
                    }
                    stack.push((current, current_attrs));
                    current = Node::empty(name);
                    current_attrs = attr_children(attributes);
                }
                XmlEvent::EndElement { name } => {
                    if name != current.name {
                        return Err(XmlError::MismatchedTag {
                            expected: current.name.as_str().to_string(),
                            found: name.as_str().to_string(),
                        });
                    }
                    // Attach attribute-derived children in front.
                    if !current_attrs.is_empty() {
                        current_attrs.append(&mut current.children);
                        current.children = current_attrs;
                    }
                    match stack.pop() {
                        Some((mut parent, parent_attrs)) => {
                            parent.push_child(current);
                            current = parent;
                            current_attrs = parent_attrs;
                        }
                        None => return Ok(current),
                    }
                }
                XmlEvent::Text(t) => {
                    if current.children.is_empty() {
                        // Concatenate split text runs (e.g. around a CDATA).
                        match &mut current.text {
                            Some(existing) => existing.push_str(&t),
                            None => current.text = Some(t),
                        }
                    }
                    // Text after child elements would be mixed content;
                    // dropped by the element-only model.
                }
            }
        }
    }

    /// Parses a complete document string into its root element.
    pub fn parse(input: &str) -> Result<Node, XmlError> {
        let mut tok = crate::tokenizer::Tokenizer::from_str(input);
        let node = Node::from_events(&mut || tok.next_event())?;
        match tok.next_event()? {
            None => Ok(node),
            Some(_) => Err(XmlError::TrailingContent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's photon item (Section 1 DTD), used across the test suite.
    pub fn sample_photon() -> Node {
        Node::elem(
            "photon",
            vec![
                Node::leaf("phc", "57"),
                Node::elem(
                    "coord",
                    vec![
                        Node::elem(
                            "cel",
                            vec![Node::leaf("ra", "130.7"), Node::leaf("dec", "-46.2")],
                        ),
                        Node::elem("det", vec![Node::leaf("dx", "12"), Node::leaf("dy", "34")]),
                    ],
                ),
                Node::leaf("en", "1.4"),
                Node::leaf("det_time", "1017.5"),
            ],
        )
    }

    #[test]
    fn build_and_navigate() {
        let p = sample_photon();
        assert_eq!(p.name(), "photon");
        assert_eq!(p.children().len(), 4);
        assert_eq!(p.child("en").unwrap().text(), Some("1.4"));
        assert_eq!(
            p.child("coord")
                .unwrap()
                .child("cel")
                .unwrap()
                .child("ra")
                .unwrap()
                .text(),
            Some("130.7")
        );
        assert!(p.child("missing").is_none());
    }

    #[test]
    fn decimal_values() {
        let p = sample_photon();
        assert_eq!(
            p.child("en").unwrap().decimal_value().unwrap(),
            "1.4".parse::<Decimal>().unwrap()
        );
        assert!(p.child("coord").unwrap().decimal_value().is_err());
    }

    #[test]
    fn counts_and_depth() {
        let p = sample_photon();
        assert_eq!(p.element_count(), 11);
        assert_eq!(p.depth(), 4); // photon/coord/cel/ra
        assert_eq!(Node::empty("x").element_count(), 1);
        assert_eq!(Node::empty("x").depth(), 1);
    }

    #[test]
    fn parse_round_trip() {
        let doc = "<photon><phc>57</phc><coord><cel><ra>130.7</ra><dec>-46.2</dec></cel>\
                   <det><dx>12</dx><dy>34</dy></det></coord><en>1.4</en>\
                   <det_time>1017.5</det_time></photon>";
        assert_eq!(Node::parse(doc).unwrap(), sample_photon());
    }

    #[test]
    fn attributes_become_children() {
        let n = Node::parse(r#"<photon id="9"><en>1.0</en></photon>"#).unwrap();
        assert_eq!(n.children()[0], Node::leaf("id", "9"));
        assert_eq!(n.children()[1].name(), "en");
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(matches!(
            Node::parse("<a><b></a></b>"),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn trailing_content_errors() {
        assert!(matches!(
            Node::parse("<a/><b/>"),
            Err(XmlError::TrailingContent)
        ));
    }

    #[test]
    fn truncated_document_errors() {
        assert_eq!(Node::parse("<a><b>"), Err(XmlError::UnexpectedEof));
    }

    #[test]
    fn push_child_keeps_text() {
        // Text renders before children (attribute-derived children and a
        // text value can coexist).
        let mut n = Node::leaf("x", "old");
        n.push_child(Node::leaf("y", "1"));
        assert_eq!(n.text(), Some("old"));
        assert_eq!(n.children().len(), 1);
        assert_eq!(crate::writer::node_to_string(&n), "<x>old<y>1</y></x>");
    }

    #[test]
    fn attributes_coexist_with_text() {
        // The text of an attributed element must survive attribute
        // conversion (attributes become leading children).
        let n = Node::parse(r#"<en unit="keV">1.4</en>"#).unwrap();
        assert_eq!(n.text(), Some("1.4"));
        assert_eq!(n.children()[0], Node::leaf("unit", "keV"));
        // And the serialized form parses back identically.
        assert_eq!(Node::parse(&crate::writer::node_to_string(&n)).unwrap(), n);
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let mut doc = String::new();
        for i in 0..(MAX_DEPTH + 10) {
            doc.push_str(&format!("<n{i}>"));
        }
        for i in (0..(MAX_DEPTH + 10)).rev() {
            doc.push_str(&format!("</n{i}>"));
        }
        let err = Node::parse(&doc).unwrap_err();
        assert!(matches!(err, XmlError::Syntax { .. }), "got {err:?}");
        // A document just under the limit parses fine.
        let mut ok_doc = String::new();
        for i in 0..(MAX_DEPTH - 1) {
            ok_doc.push_str(&format!("<n{i}>"));
        }
        for i in (0..(MAX_DEPTH - 1)).rev() {
            ok_doc.push_str(&format!("</n{i}>"));
        }
        assert!(Node::parse(&ok_doc).is_ok());
    }

    #[test]
    fn children_named_filters() {
        let n = Node::elem(
            "w",
            vec![
                Node::leaf("v", "1"),
                Node::leaf("u", "2"),
                Node::leaf("v", "3"),
            ],
        );
        let vs: Vec<_> = n.children_named("v").filter_map(|c| c.text()).collect();
        assert_eq!(vs, vec!["1", "3"]);
    }

    #[test]
    fn empty_element_round_trip() {
        assert_eq!(Node::parse("<photons/>").unwrap(), Node::empty("photons"));
        assert!(Node::parse("<photons></photons>").unwrap().is_empty());
    }
}
