//! Pull parser with well-formedness checking, plus a *stream reader* for
//! possibly-infinite streams of XML items.
//!
//! In the paper, a data stream such as `photons` is a single long-lived XML
//! document: a stream root element (`<photons>`) whose children — the
//! *stream items* (`<photon>…</photon>`) — keep arriving indefinitely.
//! [`StreamReader`] exposes exactly that abstraction: feed bytes, pop
//! complete item subtrees.

use crate::error::XmlError;
use crate::event::XmlEvent;
use crate::name::Symbol;
use crate::tokenizer::Tokenizer;
use crate::tree::Node;

/// Event reader enforcing well-formedness (balanced tags, single root).
#[derive(Debug)]
pub struct XmlReader {
    tok: Tokenizer,
    stack: Vec<Symbol>,
    seen_root: bool,
}

impl XmlReader {
    /// Wraps a tokenizer.
    pub fn new(tok: Tokenizer) -> XmlReader {
        XmlReader {
            tok,
            stack: Vec::new(),
            seen_root: false,
        }
    }

    /// Reader over a complete in-memory document.
    // Not the FromStr trait: construction is infallible and the name is
    // the natural dual of `feed`/`finish`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(input: &str) -> XmlReader {
        XmlReader::new(Tokenizer::from_str(input))
    }

    /// Appends input bytes (before [`finish`](XmlReader::finish)).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.tok.feed(bytes);
    }

    /// Signals end of input.
    pub fn finish(&mut self) {
        self.tok.finish();
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Next event, with well-formedness checks applied.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        let Some(ev) = self.tok.next_event()? else {
            if self.tok.is_done() && !self.stack.is_empty() {
                return Err(XmlError::UnexpectedEof);
            }
            return Ok(None);
        };
        match &ev {
            XmlEvent::StartElement { name, .. } => {
                if self.stack.is_empty() {
                    if self.seen_root {
                        return Err(XmlError::TrailingContent);
                    }
                    self.seen_root = true;
                }
                self.stack.push(*name);
            }
            XmlEvent::EndElement { name } => match self.stack.pop() {
                Some(open) if open == *name => {}
                Some(open) => {
                    return Err(XmlError::MismatchedTag {
                        expected: open.as_str().to_string(),
                        found: name.as_str().to_string(),
                    })
                }
                None => {
                    return Err(XmlError::UnexpectedEndTag {
                        name: name.as_str().to_string(),
                    })
                }
            },
            XmlEvent::Text(_) => {
                if self.stack.is_empty() {
                    return Err(XmlError::TrailingContent);
                }
            }
        }
        Ok(Some(ev))
    }

    /// Reads the complete document into its root element tree.
    pub fn read_document(mut self) -> Result<Node, XmlError> {
        let node = Node::from_events(&mut || self.next_event())?;
        match self.next_event()? {
            None => Ok(node),
            Some(_) => Err(XmlError::TrailingContent),
        }
    }
}

/// Incremental reader for a stream document: a root element whose children
/// are the stream items.
///
/// ```
/// use dss_xml::reader::StreamReader;
///
/// let mut r = StreamReader::new();
/// r.feed(b"<photons><photon><en>1.3</en></photon><photon>");
/// assert_eq!(r.root_name(), Some("photons"));
/// let item = r.next_item().unwrap().unwrap();
/// assert_eq!(item.name(), "photon");
/// assert!(r.next_item().unwrap().is_none()); // second item incomplete
/// ```
#[derive(Debug)]
pub struct StreamReader {
    tok: Tokenizer,
    root: Option<Symbol>,
    /// Item parse state carried across calls when the tokenizer ran dry
    /// mid-item.
    partial: Option<Partial>,
    /// Error discovered by `root_name` look-ahead, surfaced by the next
    /// `next_item` call instead of being swallowed.
    deferred: Option<XmlError>,
    /// Set once the root end tag was consumed.
    closed: bool,
    items_read: u64,
}

impl StreamReader {
    /// Creates an empty stream reader.
    pub fn new() -> StreamReader {
        StreamReader {
            tok: Tokenizer::new(),
            root: None,
            partial: None,
            deferred: None,
            closed: false,
            items_read: 0,
        }
    }

    /// Appends input bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.tok.feed(bytes);
    }

    /// Signals end of input (finite streams / tests).
    pub fn finish(&mut self) {
        self.tok.finish();
    }

    /// The stream root element name, once its start tag has been read.
    pub fn root_name(&mut self) -> Option<&str> {
        if self.root.is_none() && self.deferred.is_none() {
            // Try to read the root start tag; malformed prefixes are not
            // swallowed — they surface from the next `next_item` call.
            match self.tok.next_event() {
                Ok(Some(XmlEvent::StartElement { name, .. })) => self.root = Some(name),
                Ok(Some(other)) => {
                    self.deferred = Some(XmlError::Syntax {
                        message: format!("expected stream root, found {other:?}"),
                        offset: 0,
                    });
                }
                Ok(None) => {}
                Err(e) => self.deferred = Some(e),
            }
        }
        self.root.map(Symbol::as_str)
    }

    /// Number of complete items returned so far.
    pub fn items_read(&self) -> u64 {
        self.items_read
    }

    /// `true` once the stream's root element has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Returns the next complete stream item, or `Ok(None)` if more input is
    /// needed (or the stream has ended).
    pub fn next_item(&mut self) -> Result<Option<Node>, XmlError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        if self.closed {
            return Ok(None);
        }
        if let Some(partial) = self.partial.take() {
            match self.resume_item(partial.stack, partial.current, partial.current_attrs)? {
                Some(item) => {
                    self.items_read += 1;
                    return Ok(Some(item));
                }
                None => return Ok(None),
            }
        }
        if self.root.is_none() {
            match self.tok.next_event()? {
                Some(XmlEvent::StartElement { name, .. }) => self.root = Some(name),
                Some(other) => {
                    return Err(XmlError::Syntax {
                        message: format!("expected stream root, found {other:?}"),
                        offset: 0,
                    })
                }
                None => return Ok(None),
            }
        }
        // We are at depth 1 (inside the root). The next start tag opens an
        // item; buffer events until that item's subtree is complete. If the
        // tokenizer runs dry mid-item, stash the partial state.
        //
        // To keep this simple and allocation-friendly we rely on the
        // tokenizer's internal buffering: we only *consume* events once the
        // full item is available. That requires look-ahead, which the
        // tokenizer does not provide — so instead we buffer the partial
        // item's events locally across calls.
        loop {
            let Some(ev) = self.tok.next_event()? else {
                return Ok(None);
            };
            match ev {
                XmlEvent::StartElement { name, attributes } => {
                    match self.read_item_rest(name, attributes)? {
                        Some(item) => {
                            self.items_read += 1;
                            return Ok(Some(item));
                        }
                        None => return Ok(None),
                    }
                }
                XmlEvent::EndElement { name } => {
                    if Some(name) == self.root {
                        self.closed = true;
                        return Ok(None);
                    }
                    return Err(XmlError::UnexpectedEndTag {
                        name: name.as_str().to_string(),
                    });
                }
                XmlEvent::Text(_) => {
                    // Loose text between items: tolerated and skipped.
                }
            }
        }
    }

    /// Reads the rest of one item subtree whose start tag was consumed.
    ///
    /// Unlike `Node::from_events_after_start` this copes with the tokenizer
    /// running dry mid-item: progress is stashed in `self.partial` and
    /// resumed by the next `next_item` call.
    fn read_item_rest(
        &mut self,
        name: Symbol,
        attributes: Vec<(Symbol, String)>,
    ) -> Result<Option<Node>, XmlError> {
        let current = Node::empty(name);
        let attrs = attributes
            .into_iter()
            .map(|(k, v)| Node::leaf(k, v))
            .collect();
        self.resume_item(Vec::new(), current, attrs)
    }

    /// Continues parsing an item from saved state. Returns `Ok(None)` (and
    /// re-stashes state) if the tokenizer runs dry. Attribute-derived
    /// children are held aside per frame and prepended at element
    /// completion, so a text value on an attributed element is kept.
    fn resume_item(
        &mut self,
        mut stack: Vec<(Node, Vec<Node>)>,
        mut current: Node,
        mut current_attrs: Vec<Node>,
    ) -> Result<Option<Node>, XmlError> {
        loop {
            match self.tok.next_event()? {
                None => {
                    // Ran dry mid-item: remember progress for the next call.
                    self.partial = Some(Partial {
                        stack,
                        current,
                        current_attrs,
                    });
                    return Ok(None);
                }
                Some(XmlEvent::StartElement { name, attributes }) => {
                    if stack.len() + 2 >= crate::tree::MAX_DEPTH {
                        return Err(XmlError::Syntax {
                            message: format!(
                                "element nesting deeper than {}",
                                crate::tree::MAX_DEPTH
                            ),
                            offset: 0,
                        });
                    }
                    let attrs = attributes
                        .into_iter()
                        .map(|(k, v)| Node::leaf(k, v))
                        .collect();
                    stack.push((
                        std::mem::replace(&mut current, Node::empty(name)),
                        std::mem::replace(&mut current_attrs, attrs),
                    ));
                }
                Some(XmlEvent::EndElement { name }) => {
                    if name != current.symbol() {
                        return Err(XmlError::MismatchedTag {
                            expected: current.name().to_string(),
                            found: name.as_str().to_string(),
                        });
                    }
                    if !current_attrs.is_empty() {
                        current_attrs.append(current.children_mut());
                        *current.children_mut() = std::mem::take(&mut current_attrs);
                    }
                    match stack.pop() {
                        Some((mut parent, parent_attrs)) => {
                            parent.push_child(current);
                            current = parent;
                            current_attrs = parent_attrs;
                        }
                        None => return Ok(Some(current)),
                    }
                }
                Some(XmlEvent::Text(t)) => {
                    // Mixed content after child elements is dropped by the
                    // element-only model; split text runs are concatenated
                    // in place.
                    if current.children().is_empty() {
                        current.append_text(&t);
                    }
                }
            }
        }
    }
}

/// Partially-parsed item state carried across `next_item` calls.
#[derive(Debug)]
struct Partial {
    stack: Vec<(Node, Vec<Node>)>,
    current: Node,
    current_attrs: Vec<Node>,
}

impl Default for StreamReader {
    fn default() -> Self {
        StreamReader::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_checks_balance() {
        let mut r = XmlReader::from_str("<a><b>1</b></a>");
        let mut n = 0;
        while r.next_event().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn reader_rejects_mismatch() {
        let mut r = XmlReader::from_str("<a></b>");
        r.next_event().unwrap();
        assert!(matches!(
            r.next_event(),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn reader_rejects_second_root() {
        let mut r = XmlReader::from_str("<a/><b/>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert_eq!(r.next_event(), Err(XmlError::TrailingContent));
    }

    #[test]
    fn reader_rejects_stray_end() {
        let mut r = XmlReader::from_str("</a>");
        assert!(matches!(
            r.next_event(),
            Err(XmlError::UnexpectedEndTag { .. })
        ));
    }

    #[test]
    fn reader_detects_eof_inside_element() {
        let mut r = XmlReader::from_str("<a><b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert_eq!(r.next_event(), Err(XmlError::UnexpectedEof));
    }

    #[test]
    fn read_document_builds_tree() {
        let n = XmlReader::from_str("<a><b>1</b><c/></a>")
            .read_document()
            .unwrap();
        assert_eq!(n.name(), "a");
        assert_eq!(n.children().len(), 2);
    }

    #[test]
    fn stream_reader_yields_items() {
        let mut r = StreamReader::new();
        r.feed(b"<photons><photon><en>1.3</en></photon><photon><en>2.5</en></photon>");
        assert_eq!(r.root_name(), Some("photons"));
        let a = r.next_item().unwrap().unwrap();
        let b = r.next_item().unwrap().unwrap();
        assert_eq!(a.child("en").unwrap().text(), Some("1.3"));
        assert_eq!(b.child("en").unwrap().text(), Some("2.5"));
        assert!(r.next_item().unwrap().is_none());
        assert_eq!(r.items_read(), 2);
        assert!(!r.is_closed());
    }

    #[test]
    fn stream_reader_handles_chunked_mid_item_input() {
        let mut r = StreamReader::new();
        r.feed(b"<photons><photon><coord><cel><ra>12");
        assert!(r.next_item().unwrap().is_none());
        r.feed(b"0.5</ra></cel>");
        assert!(r.next_item().unwrap().is_none());
        r.feed(b"</coord></photon>");
        let item = r.next_item().unwrap().unwrap();
        assert_eq!(
            item.child("coord")
                .unwrap()
                .child("cel")
                .unwrap()
                .child("ra")
                .unwrap()
                .text(),
            Some("120.5")
        );
    }

    #[test]
    fn stream_reader_byte_at_a_time() {
        let doc = "<s><i><v>1</v></i><i><v>2</v></i><i><v>3</v></i></s>";
        let mut r = StreamReader::new();
        let mut items = Vec::new();
        for b in doc.bytes() {
            r.feed(&[b]);
            while let Some(item) = r.next_item().unwrap() {
                items.push(item);
            }
        }
        assert_eq!(items.len(), 3);
        assert!(r.is_closed());
        let vals: Vec<_> = items
            .iter()
            .map(|i| i.child("v").unwrap().text().unwrap().to_string())
            .collect();
        assert_eq!(vals, vec!["1", "2", "3"]);
    }

    #[test]
    fn stream_reader_detects_close() {
        let mut r = StreamReader::new();
        r.feed(b"<photons><photon><en>1</en></photon></photons>");
        r.finish();
        assert!(r.next_item().unwrap().is_some());
        assert!(r.next_item().unwrap().is_none());
        assert!(r.is_closed());
        // After close, further calls keep returning None.
        assert!(r.next_item().unwrap().is_none());
    }

    #[test]
    fn stream_reader_deeply_nested_items() {
        let mut r = StreamReader::new();
        r.feed(b"<s><i><a><b><c>x</c></b></a></i></s>");
        let item = r.next_item().unwrap().unwrap();
        assert_eq!(item.depth(), 4);
    }

    #[test]
    fn stream_reader_skips_inter_item_comments() {
        let mut r = StreamReader::new();
        r.feed(b"<s><!-- hello --><i><v>1</v></i><!-- bye --></s>");
        assert!(r.next_item().unwrap().is_some());
        assert!(r.next_item().unwrap().is_none());
        assert!(r.is_closed());
    }

    #[test]
    fn root_name_defers_errors_to_next_item() {
        // Junk before the root: root_name must not silently consume it.
        let mut r = StreamReader::new();
        r.feed(b"junk</x><photons><photon><v>1</v></photon></photons>");
        assert_eq!(r.root_name(), None);
        assert!(
            r.next_item().is_err(),
            "the malformed prefix must surface as an error"
        );

        // A hard tokenizer error likewise surfaces instead of spinning.
        let mut r = StreamReader::new();
        r.feed(b"<1bad>");
        assert_eq!(r.root_name(), None);
        assert!(r.next_item().is_err());
    }

    #[test]
    fn stream_reader_keeps_text_of_attributed_items() {
        let mut r = StreamReader::new();
        r.feed(br#"<s><v unit="keV">1.4</v></s>"#);
        let item = r.next_item().unwrap().unwrap();
        assert_eq!(item.text(), Some("1.4"));
        assert_eq!(item.children()[0], Node::leaf("unit", "keV"));
    }

    #[test]
    fn stream_reader_bounds_item_depth() {
        let mut doc = String::from("<s>");
        for _ in 0..crate::tree::MAX_DEPTH + 5 {
            doc.push_str("<d>");
        }
        let mut r = StreamReader::new();
        r.feed(doc.as_bytes());
        assert!(matches!(r.next_item(), Err(XmlError::Syntax { .. })));
    }

    #[test]
    fn stream_reader_rejects_mismatched_item() {
        let mut r = StreamReader::new();
        r.feed(b"<s><i><v>1</w></i></s>");
        assert!(matches!(r.next_item(), Err(XmlError::MismatchedTag { .. })));
    }
}
