//! Error type shared by the XML substrate.

use std::fmt;

/// Errors raised while tokenizing, parsing, or otherwise processing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The tokenizer met a byte sequence that cannot start or continue a
    /// well-formed construct. Carries a human-readable description and the
    /// byte offset at which the problem was detected.
    Syntax { message: String, offset: usize },
    /// An end tag did not match the innermost open start tag.
    MismatchedTag { expected: String, found: String },
    /// An end tag appeared with no element open.
    UnexpectedEndTag { name: String },
    /// The input ended in the middle of a construct.
    UnexpectedEof,
    /// Document content appeared after the root element was closed.
    TrailingContent,
    /// A name (element or attribute) is not a valid XML name.
    InvalidName { name: String },
    /// An entity reference could not be resolved.
    UnknownEntity { entity: String },
    /// A text value could not be interpreted as the requested type.
    ValueParse { value: String, wanted: &'static str },
    /// A path expression was syntactically invalid.
    InvalidPath { path: String, message: String },
    /// A document node did not conform to the schema it was validated against.
    SchemaViolation { message: String },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { message, offset } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched end tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlError::UnexpectedEndTag { name } => {
                write!(f, "end tag </{name}> with no open element")
            }
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::TrailingContent => write!(f, "content after document root"),
            XmlError::InvalidName { name } => write!(f, "invalid XML name: {name:?}"),
            XmlError::UnknownEntity { entity } => write!(f, "unknown entity: &{entity};"),
            XmlError::ValueParse { value, wanted } => {
                write!(f, "cannot parse {value:?} as {wanted}")
            }
            XmlError::InvalidPath { path, message } => {
                write!(f, "invalid path {path:?}: {message}")
            }
            XmlError::SchemaViolation { message } => write!(f, "schema violation: {message}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(XmlError, &str)> = vec![
            (
                XmlError::Syntax {
                    message: "bad".into(),
                    offset: 7,
                },
                "XML syntax error at byte 7: bad",
            ),
            (
                XmlError::MismatchedTag {
                    expected: "a".into(),
                    found: "b".into(),
                },
                "mismatched end tag: expected </a>, found </b>",
            ),
            (
                XmlError::UnexpectedEndTag { name: "x".into() },
                "end tag </x> with no open element",
            ),
            (XmlError::UnexpectedEof, "unexpected end of input"),
            (XmlError::TrailingContent, "content after document root"),
            (
                XmlError::UnknownEntity {
                    entity: "nbsp".into(),
                },
                "unknown entity: &nbsp;",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::UnexpectedEof, XmlError::UnexpectedEof);
        assert_ne!(
            XmlError::UnexpectedEof,
            XmlError::Syntax {
                message: String::new(),
                offset: 0
            }
        );
    }
}
