//! Text handling: XML name validation, escaping, and entity resolution.

use crate::error::XmlError;

/// Returns `true` if `c` may start an XML name.
///
/// We implement the ASCII subset of the XML 1.0 name grammar plus a blanket
/// acceptance of non-ASCII characters; the data streams in the paper's domain
/// (astrophysics element names such as `det_time`) are ASCII.
pub fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || !c.is_ascii()
}

/// Returns `true` if `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Validates a complete XML name.
pub fn validate_name(name: &str) -> Result<(), XmlError> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => {}
        _ => {
            return Err(XmlError::InvalidName {
                name: name.to_string(),
            })
        }
    }
    if chars.all(is_name_char) {
        Ok(())
    } else {
        Err(XmlError::InvalidName {
            name: name.to_string(),
        })
    }
}

/// Escapes text content for inclusion between tags.
///
/// Only `&`, `<`, and `>` need escaping in content; quotes are left intact
/// to keep serialized streams compact (they matter for the byte-size-based
/// cost model only insofar as both sides of a comparison use the same
/// serializer, which they do).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// Escapes text content, appending to `out` to avoid intermediate allocations
/// on the serializer hot path.
pub fn escape_text_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Number of bytes `s` occupies once escaped, without allocating.
pub fn escaped_len(s: &str) -> usize {
    s.chars()
        .map(|c| match c {
            '&' => 5,
            '<' | '>' => 4,
            _ => c.len_utf8(),
        })
        .sum()
}

/// Resolves a single entity body (the part between `&` and `;`).
pub fn resolve_entity(entity: &str) -> Result<char, XmlError> {
    match entity {
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "amp" => Ok('&'),
        "quot" => Ok('"'),
        "apos" => Ok('\''),
        _ => {
            if let Some(rest) = entity
                .strip_prefix("#x")
                .or_else(|| entity.strip_prefix("#X"))
            {
                u32::from_str_radix(rest, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError::UnknownEntity {
                        entity: entity.to_string(),
                    })
            } else if let Some(rest) = entity.strip_prefix('#') {
                rest.parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError::UnknownEntity {
                        entity: entity.to_string(),
                    })
            } else {
                Err(XmlError::UnknownEntity {
                    entity: entity.to_string(),
                })
            }
        }
    }
}

/// Unescapes text content, resolving the predefined and numeric entities.
pub fn unescape_text(s: &str) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest.find(';').ok_or(XmlError::UnexpectedEof)?;
        out.push(resolve_entity(&rest[..end])?);
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation_accepts_paper_names() {
        for name in [
            "photon", "det_time", "coord", "cel", "ra", "dec", "phc", "en", "avg_en",
        ] {
            assert!(validate_name(name).is_ok(), "{name} should be valid");
        }
    }

    #[test]
    fn name_validation_rejects_bad_names() {
        for name in ["", "1abc", "-x", ".y", "a b", "<tag>"] {
            assert!(validate_name(name).is_err(), "{name:?} should be invalid");
        }
    }

    #[test]
    fn names_may_contain_digits_after_first_char() {
        assert!(validate_name("rxj0852").is_ok());
        assert!(validate_name("a-b.c_d").is_ok());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "a < b && c > d";
        let escaped = escape_text(raw);
        assert_eq!(escaped, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape_text(&escaped).unwrap(), raw);
    }

    #[test]
    fn escaped_len_matches_escape() {
        for s in ["", "plain", "a<b", "&&&", "1.25", "ünïcode <&>"] {
            assert_eq!(escaped_len(s), escape_text(s).len(), "for {s:?}");
        }
    }

    #[test]
    fn numeric_entities_resolve() {
        assert_eq!(resolve_entity("#65").unwrap(), 'A');
        assert_eq!(resolve_entity("#x41").unwrap(), 'A');
        assert_eq!(resolve_entity("#x2603").unwrap(), '☃');
    }

    #[test]
    fn unknown_entities_error() {
        assert!(matches!(
            resolve_entity("nbsp"),
            Err(XmlError::UnknownEntity { .. })
        ));
        assert!(matches!(
            resolve_entity("#xzz"),
            Err(XmlError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn unescape_handles_mixed_content() {
        assert_eq!(unescape_text("x &amp; y &#33;").unwrap(), "x & y !");
        assert_eq!(unescape_text("no entities").unwrap(), "no entities");
    }

    #[test]
    fn unescape_detects_unterminated_entity() {
        assert_eq!(unescape_text("oops &amp"), Err(XmlError::UnexpectedEof));
    }
}
